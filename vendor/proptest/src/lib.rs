//! Offline vendored stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: [`strategy::Strategy`] with `prop_map`/`prop_flat_map`,
//! numeric range strategies, tuple strategies, [`collection::vec`],
//! [`bool::ANY`], and the [`proptest!`]/[`prop_assert!`] macros driven
//! by a deterministic runner ([`test_runner::TestRng`] is seeded from
//! the test name, so failures reproduce on every run). Shrinking is not
//! implemented — a failing case reports the case index instead of a
//! minimized input.

// Lets this crate's own tests (and macro expansions inside them) use
// `proptest::...` paths exactly as downstream crates do.
extern crate self as proptest;

/// Deterministic case runner: config, RNG and failure type.
pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// xorshift64* generator, seeded from the test name and case index
    /// so every run of the suite sees the same inputs.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of a named test.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            seed ^= case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng { state: seed | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value from the deterministic RNG.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    // Uses [0, 1); the closed upper bound is approached
                    // but never produced, which the tolerance-based
                    // assertions in this workspace accept.
                    self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform true/false.
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A half-open length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The names tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ..) { body }` item becomes a `fn`
/// that draws `cases` random inputs and runs the body; `prop_assert!`
/// failures abort with the case index so the run can be reproduced.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = $cfg:expr;
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        u64::from(case),
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest '{}' case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?} == {:?}`",
            lhs,
            rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -5i32..7, f in 0.0f64..1.0, n in 1usize..4) {
            prop_assert!((-5..7).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn combinators_compose(
            v in proptest::collection::vec((0u32..4).prop_map(|x| x * 2), 2..6),
            flag in proptest::bool::ANY,
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x % 2 == 0));
            prop_assert!((flag as u8) <= 1);
        }
    }
}
