//! Offline vendored stand-in for `criterion`.
//!
//! Provides the `bench_function`/`iter`/`black_box` surface plus the
//! `criterion_group!`/`criterion_main!` macros. Instead of criterion's
//! statistical sampling it times a small fixed number of iterations and
//! prints median per-iteration wall time — enough to compare orders of
//! magnitude and, crucially, cheap enough that `cargo test` running a
//! `harness = false` bench target finishes quickly.

use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing harness handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples_ns: Vec<u128>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `f`, recording one sample per batch of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.samples_ns.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() / u128::from(self.iters_per_sample));
        }
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    samples: usize,
    iters_per_sample: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: 7,
            iters_per_sample: 3,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its median time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples_ns: Vec::with_capacity(self.samples),
            iters_per_sample: self.iters_per_sample,
        };
        f(&mut b);
        b.samples_ns.sort_unstable();
        let median = b
            .samples_ns
            .get(b.samples_ns.len() / 2)
            .copied()
            .unwrap_or(0);
        println!(
            "bench {name:<32} {median:>12} ns/iter ({} samples)",
            b.samples_ns.len()
        );
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = super::Criterion::default();
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0);
    }
}
