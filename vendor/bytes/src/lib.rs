//! Offline vendored stand-in for the `bytes` crate.
//!
//! Implements the subset this workspace uses: an immutable, cheaply
//! cloneable [`Bytes`] buffer, a growable [`BytesMut`] builder, and the
//! little-endian cursor methods of [`Buf`]/[`BufMut`]. The in-memory
//! representation is a plain `Arc<Vec<u8>>` slice — no vtable tricks —
//! which is all the codec and persistence layers need.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps an owned byte vector.
    pub fn from_vec(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-slice sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the contents into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source (little-endian accessors).
///
/// Implemented for `&[u8]`, which the workspace's decoders consume by
/// advancing the slice in place, and for [`Bytes`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads and consumes `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain; decoders are expected to
    /// check [`Buf::remaining`] first, as the upstream crate does.
    fn take_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_bytes(2).try_into().expect("2 bytes"))
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(self.len() >= n, "buffer underrun: {} < {n}", self.len());
        let (head, tail) = self.split_at(n);
        *self = tail;
        head.to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(self.len() >= n, "buffer underrun: {} < {n}", self.len());
        let head = self.as_slice()[..n].to_vec();
        self.start += n;
        head
    }
}

/// Write cursor appending little-endian values.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(7);
        buf.put_u64_le(42);
        buf.put_f64_le(1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 22);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u16_le(), 7);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_f64_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn slicing_shares_allocation() {
        let b = Bytes::from_vec((0u8..32).collect());
        let s = b.slice(4..12);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], 4);
        let s2 = s.slice(0..s.len() / 2);
        assert_eq!(s2.as_slice(), &[4, 5, 6, 7]);
    }
}
