//! Offline vendored stand-in for `serde_derive`.
//!
//! The workspace's `serde` stub defines `Serialize`/`Deserialize` as
//! empty marker traits (nothing in this repository serializes through a
//! serde `Serializer`), so the derives only need to emit trivial
//! `impl` blocks. The parser below handles the shapes this codebase
//! uses: structs and enums, optionally generic with plain (bound-free or
//! inline-bounded) type and lifetime parameters. `where` clauses and
//! parameter defaults beyond `= <ty>` are out of scope.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Serialize", false)
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Deserialize", true)
}

fn derive_marker(input: TokenStream, trait_name: &str, with_de_lifetime: bool) -> TokenStream {
    let (name, params) = parse_item(input);
    let decls: Vec<String> = params.iter().map(|p| p.decl.clone()).collect();
    let args: Vec<String> = params.iter().map(|p| p.arg.clone()).collect();

    let mut impl_params = Vec::new();
    if with_de_lifetime {
        impl_params.push("'de".to_string());
    }
    impl_params.extend(decls);
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let trait_path = if with_de_lifetime {
        format!("::serde::{trait_name}<'de>")
    } else {
        format!("::serde::{trait_name}")
    };
    let type_args = if args.is_empty() {
        String::new()
    } else {
        format!("<{}>", args.join(", "))
    };

    format!("impl{impl_generics} {trait_path} for {name}{type_args} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// One generic parameter: its declaration text (with inline bounds,
/// defaults stripped) and the argument text naming it.
struct Param {
    decl: String,
    arg: String,
}

/// Extracts the item name and generic parameters from a derive input.
fn parse_item(input: TokenStream) -> (String, Vec<Param>) {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // Outer/inner attributes: `#[...]` / `#![...]`.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Punct(bang)) = iter.peek() {
                    if bang.as_char() == '!' {
                        iter.next();
                    }
                }
                iter.next(); // the bracket group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id)
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("expected item name after `{id}`, got {other:?}"),
                };
                let params = match iter.peek() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        iter.next();
                        parse_generics(&mut iter)
                    }
                    _ => Vec::new(),
                };
                return (name, params);
            }
            _ => {}
        }
    }
    panic!("derive input contains no struct/enum/union");
}

/// Parses `...>` after the opening `<`, splitting top-level commas.
fn parse_generics(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Vec<Param> {
    let mut depth = 1usize;
    let mut current: Vec<TokenTree> = Vec::new();
    let mut params = Vec::new();
    for tt in iter.by_ref() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                if !current.is_empty() {
                    params.push(param_of(std::mem::take(&mut current)));
                }
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        params.push(param_of(current));
    }
    params
}

/// Builds a [`Param`] from one parameter's tokens.
fn param_of(tokens: Vec<TokenTree>) -> Param {
    // Strip a default (`= ...`) at top level.
    let mut depth = 0usize;
    let mut kept: Vec<TokenTree> = Vec::new();
    for tt in tokens {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == '=' && depth == 0 => break,
            _ => {}
        }
        kept.push(tt);
    }
    let decl = kept.iter().cloned().collect::<TokenStream>().to_string();
    let arg = match kept.first() {
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => match kept.get(1) {
            Some(TokenTree::Ident(id)) => format!("'{id}"),
            other => panic!("malformed lifetime parameter: {other:?}"),
        },
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => match kept.get(1) {
            Some(TokenTree::Ident(n)) => n.to_string(),
            other => panic!("malformed const parameter: {other:?}"),
        },
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("malformed generic parameter: {other:?}"),
    };
    Param { decl, arg }
}
