//! Offline vendored stand-in for `crossbeam`.
//!
//! Provides the two facilities this workspace uses:
//!
//! * [`thread::scope`] — scoped threads with the crossbeam calling
//!   convention (the spawn closure receives the scope), implemented on
//!   `std::thread::scope` (stable since Rust 1.63).
//! * [`deque`] — work-stealing deques (`Worker`/`Stealer`/`Injector`)
//!   backed by mutex-guarded queues. The lock-free performance of the
//!   real crate is not reproduced; the *scheduling semantics* (LIFO
//!   owner pops, FIFO steals) are, which is what the pre-render farm
//!   and `par_map_ws` rely on.

/// Scoped threads (crossbeam-utils subset).
pub mod thread {
    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns.
    ///
    /// Unlike upstream crossbeam (which returns `Err` when a child
    /// panicked), a child panic propagates as a panic from this call —
    /// equivalent for callers that `.expect(..)` the result, as this
    /// workspace does.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Work-stealing deques (crossbeam-deque subset).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// Contention; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// The owner side of a work-stealing deque.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        lifo: bool,
    }

    impl<T> Worker<T> {
        /// A FIFO deque (owner pops oldest first).
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                lifo: false,
            }
        }

        /// A LIFO deque (owner pops newest first).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                lifo: true,
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque lock").push_back(task);
        }

        /// Pops a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.queue.lock().expect("deque lock");
            if self.lifo {
                q.pop_back()
            } else {
                q.pop_front()
            }
        }

        /// Whether the deque is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque lock").is_empty()
        }

        /// A stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// The thief side of a work-stealing deque; steals FIFO.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque lock").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// A shared injector queue (global FIFO).
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector lock").push_back(task);
        }

        /// Attempts to steal the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector lock").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the injector is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector lock").is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|s| {
            for (slot, &v) in out.iter_mut().zip(&data) {
                s.spawn(move |_| *slot = v * 10);
            }
        })
        .expect("no panics");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn deque_steal_order_is_fifo() {
        let w = super::deque::Worker::new_fifo();
        let st = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(st.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(st.steal().success(), None);
    }
}
