//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (lock acquisition never returns a `Result`). Poisoning is resolved by
//! unwrapping: a panic while holding a lock aborts the test run either
//! way, which matches how this workspace uses locks (short critical
//! sections around frame-store shards).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
