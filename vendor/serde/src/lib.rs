//! Offline vendored stand-in for `serde`.
//!
//! This workspace builds in air-gapped environments with no crates-io
//! mirror, so external dependencies are vendored as minimal stubs under
//! `vendor/` (see DESIGN.md). The repo uses serde purely as derive
//! decoration — nothing serializes through a serde `Serializer` — so the
//! traits here are empty markers and the derive macros emit trivial
//! impls. Swapping back to upstream serde is a one-line change in the
//! workspace `Cargo.toml`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Namespace mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}
