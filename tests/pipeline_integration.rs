//! Cross-crate pipeline integration: the functional data path (scene →
//! render → encode → transfer-size → decode → merge → SSIM) and the
//! offline preprocessing path (cutoff → calibration → cache → prefetch).

use coterie_codec::{Encoder, Quality};
use coterie_core::cutoff::{CutoffConfig, CutoffMap};
use coterie_core::{
    CacheConfig, CacheQuery, DistThreshCalibrator, FrameCache, FrameMeta, FrameSource, Prefetcher,
};
use coterie_device::DeviceProfile;
use coterie_frame::{ssim, ssim_with, SsimOptions};
use coterie_net::SharedLink;
use coterie_render::{merge, FovOptions, Panorama, RenderFilter, RenderOptions, Renderer};
use coterie_sim::RenderServer;
use coterie_world::{GameId, GameSpec, TraceSet, Vec2};

#[test]
fn full_frame_path_preserves_quality() {
    // Render far BE on the "server", encode, ship it over the link,
    // decode on the "phone", merge with locally rendered near BE, crop to
    // the headset FoV — and the result still matches ground truth.
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(5);
    let device = DeviceProfile::pixel2();
    let config = CutoffConfig::for_spec(&spec);
    let cutoffs = CutoffMap::compute(&scene, &device, &config, 5);
    let renderer = Renderer::new(RenderOptions::fast());
    let encoder = Encoder::new(Quality::CRF25);
    let mut link = SharedLink::wifi_80211ac(1);

    let pos = scene.bounds().center();
    let (_, radius, _) = cutoffs.lookup_params(pos);
    let eye = scene.eye(pos);

    let far = renderer.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff: radius });
    let encoded = encoder.encode(&far.frame);
    let transfer = link.transfer(0.0, encoded.size_bytes() as u64);
    assert!(transfer.completed_at_ms > 0.0);
    let decoded = encoder.decode(&encoded).expect("decodes");
    let far_layer = Panorama {
        mask: vec![1; decoded.pixel_count()],
        frame: decoded,
    };

    let near = renderer.render_panorama(&scene, eye, RenderFilter::NearOnly { cutoff: radius });
    let merged = merge(&near, &far_layer);

    let truth = renderer.render_panorama(&scene, eye, RenderFilter::All);
    let pano_quality = ssim(&merged, &truth.frame);
    assert!(pano_quality > 0.93, "panorama SSIM {pano_quality:.3}");

    // FoV crops of the merged panorama remain faithful at any yaw.
    let fov = FovOptions::default();
    for yaw in [0.0, 1.3, -2.2] {
        let view = fov.crop(&merged, yaw, 0.0);
        let view_truth = fov.crop(&truth.frame, yaw, 0.0);
        let s = ssim_with(&view, &view_truth, &SsimOptions::fast());
        assert!(s > 0.9, "FoV SSIM {s:.3} at yaw {yaw}");
    }
}

#[test]
fn render_time_of_near_be_meets_constraint1_along_traces() {
    // The promise of the adaptive cutoff: everywhere a player actually
    // goes, FI + near BE fits the frame budget.
    let spec = GameSpec::for_game(GameId::Cts);
    let scene = spec.build_scene(6);
    let device = DeviceProfile::pixel2();
    let config = CutoffConfig::for_spec(&spec);
    let cutoffs = CutoffMap::compute(&scene, &device, &config, 6);
    let traces = TraceSet::generate(&scene, &spec, 2, 40.0, 0.2, 6);
    let mut violations = 0;
    let mut total = 0;
    for trace in traces.traces() {
        for p in trace.points() {
            let (_, radius, _) = cutoffs.lookup_params(p.position);
            let tris = scene.triangles_within(p.position, radius);
            if device.render_ms(tris) + spec.fi_render_ms > config.frame_budget_ms {
                violations += 1;
            }
            total += 1;
        }
    }
    assert!(
        (violations as f64) < (total as f64) * 0.02,
        "{violations}/{total} trace points violate Constraint 1"
    );
}

#[test]
fn calibration_tightens_cache_behaviour() {
    // SSIM calibration produces per-leaf thresholds the cache actually
    // uses; reuse within the threshold keeps far frames similar.
    let spec = GameSpec::for_game(GameId::Bowling);
    let scene = spec.build_scene(2);
    let device = DeviceProfile::pixel2();
    let config = CutoffConfig::for_spec(&spec);
    let mut cutoffs = CutoffMap::compute(&scene, &device, &config, 2);
    let renderer = Renderer::new(RenderOptions::fast());
    let mut calibrator = DistThreshCalibrator::new(renderer.clone());
    calibrator.ssim_threshold = 0.97;
    calibrator.k_samples = 2;
    calibrator.search_steps = 4;
    let center = scene.bounds().center();
    calibrator.calibrate_path(&scene, &mut cutoffs, [center], 2);
    let (_, radius, dist_thresh) = cutoffs.lookup_params(center);
    assert!(dist_thresh > 0.0);

    // Frames within the calibrated threshold are similar *when the cache
    // would actually reuse them* — i.e. for same-near-set pairs
    // (criterion 3 rejects the rest before SSIM ever matters).
    let spacing = scene.grid().spacing();
    let mut checked = 0;
    for k in 1..=24 {
        let angle = k as f64 * 0.785;
        // Probe a few grid steps out, never beyond the threshold.
        let hops = [8.0, 4.0, 2.0][(k - 1) / 8];
        let d = (spacing * hops).min(dist_thresh);
        let partner = center + Vec2::new(angle.cos(), angle.sin()) * d;
        if !scene.bounds().contains(partner)
            || scene.near_set_hash(partner, radius) != scene.near_set_hash(center, radius)
        {
            continue;
        }
        let a = renderer.render_panorama(
            &scene,
            scene.eye(center),
            RenderFilter::FarOnly { cutoff: radius },
        );
        let b = renderer.render_panorama(
            &scene,
            scene.eye(partner),
            RenderFilter::FarOnly { cutoff: radius },
        );
        let s = ssim_with(&a.frame, &b.frame, &SsimOptions::fast());
        assert!(
            s > 0.85,
            "reusable pair at angle {angle:.2} gave SSIM {s:.3}"
        );
        checked += 1;
    }
    // At least one reusable pair must exist somewhere inside the radius;
    // otherwise the near-set criterion gates all reuse here and the
    // threshold is vacuous (but safe).
    assert!(
        checked >= 1,
        "no same-near-set pair found within dist_thresh"
    );
}

#[test]
fn prefetcher_keeps_cache_ahead_of_movement() {
    // Walking a straight line with prefetching: after warm-up, the frame
    // for each newly reached grid point is already resident.
    let spec = GameSpec::for_game(GameId::Soccer);
    let scene = spec.build_scene(4);
    let device = DeviceProfile::pixel2();
    let cutoffs = CutoffMap::compute(&scene, &device, &CutoffConfig::for_spec(&spec), 4);
    let mut cache: FrameCache<()> = FrameCache::new(CacheConfig::default());
    let prefetcher = Prefetcher::default();
    let dir = Vec2::new(1.0, 0.2).normalized();
    let start = Vec2::new(20.0, 60.0);
    let mut demand_misses = 0;
    let mut requests = 0;
    for step in 0..600 {
        let pos = start + dir * (step as f64 * 0.04);
        let gp = scene.grid().snap(pos);
        let (leaf, radius, dist_thresh) = cutoffs.lookup_params(pos);
        let near_hash = scene.near_set_hash(pos, radius);
        let query = CacheQuery {
            grid: gp,
            pos,
            leaf,
            near_hash,
            dist_thresh,
        };
        requests += 1;
        if !cache.peek(&query) && step > 60 {
            demand_misses += 1;
        }
        // The prefetcher fills upcoming frames before they are needed.
        let plan = prefetcher.plan(scene.grid(), pos, dir, dist_thresh);
        for target in prefetcher.misses(&plan, &scene, &cutoffs, &cache) {
            let tpos = scene.grid().position(target);
            let (tleaf, tradius, _) = cutoffs.lookup_params(tpos);
            cache.insert(
                FrameMeta {
                    grid: target,
                    pos: tpos,
                    leaf: tleaf,
                    near_hash: scene.near_set_hash(tpos, tradius),
                },
                FrameSource::SelfPrefetch,
                (),
                250_000,
                pos,
            );
        }
    }
    assert!(
        (demand_misses as f64) < (requests as f64) * 0.25,
        "prefetcher left {demand_misses}/{requests} demand misses"
    );
}

#[test]
fn server_frames_flow_through_shared_link_with_contention() {
    // Four clients fetching Multi-Furion-sized frames congest the link;
    // the same clients fetching far-BE frames at Coterie's hit ratio fit.
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(8);
    let server = RenderServer::new(&scene, Renderer::new(RenderOptions::fast()));
    let pos = scene.bounds().center();
    let whole = server.whole_be(pos).transfer_bytes;
    let far = server.far_be(pos, 8.0).transfer_bytes;

    let mut congested = SharedLink::wifi_80211ac(4);
    let mut last_mf: f64 = 0.0;
    for tick in 0..60u64 {
        let now = tick as f64 * 16.7;
        for _ in 0..4 {
            last_mf = last_mf.max(congested.transfer(now, whole).latency_ms(now));
        }
    }
    let mut relaxed = SharedLink::wifi_80211ac(4);
    let mut last_ct: f64 = 0.0;
    for tick in 0..60u64 {
        let now = tick as f64 * 16.7;
        // Hit ratio ~80%: only one in five ticks fetches, per player.
        if tick % 5 == 0 {
            for _ in 0..4 {
                last_ct = last_ct.max(relaxed.transfer(now, far).latency_ms(now));
            }
        }
    }
    assert!(
        last_mf > 16.7,
        "4-player whole-BE prefetch should blow the frame budget ({last_mf:.1} ms)"
    );
    assert!(
        last_ct < last_mf,
        "cached far-BE prefetch must be lighter: {last_ct:.1} vs {last_mf:.1} ms"
    );
}

#[test]
fn delta_coding_validates_size_asymmetry() {
    // The RenderServer charges far-BE frames a lower H.264-equivalence
    // factor than whole-BE frames because far content barely moves
    // between adjacent grid points. Verify that claim with the actual
    // P-frame codec: inter-frame savings for far layers must exceed
    // those for whole layers.
    use coterie_codec::DeltaEncoder;
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(9);
    let cutoffs = CutoffMap::compute(
        &scene,
        &DeviceProfile::pixel2(),
        &CutoffConfig::for_spec(&spec),
        9,
    );
    let renderer = Renderer::new(RenderOptions::fast());
    let intra = Encoder::new(Quality::CRF25);
    let delta = DeltaEncoder::new(Quality::CRF25);

    let mut whole_saving = 0.0;
    let mut far_saving = 0.0;
    let mut samples = 0;
    for i in 0..6 {
        let pos = Vec2::new(30.0 + i as f64 * 22.0, 40.0 + i as f64 * 12.0);
        let step = Vec2::new(0.08, 0.0); // ~2-3 grid points of movement
        let (_, radius, _) = cutoffs.lookup_params(pos);
        let whole_a = renderer.render_panorama(&scene, scene.eye(pos), RenderFilter::All);
        let whole_b = renderer.render_panorama(&scene, scene.eye(pos + step), RenderFilter::All);
        let far_a = renderer.render_panorama(
            &scene,
            scene.eye(pos),
            RenderFilter::FarOnly { cutoff: radius },
        );
        let far_b = renderer.render_panorama(
            &scene,
            scene.eye(pos + step),
            RenderFilter::FarOnly { cutoff: radius },
        );
        let ratio = |frame: &coterie_frame::LumaFrame, reference: &coterie_frame::LumaFrame| {
            let i_bytes = intra.encode(frame).size_bytes() as f64;
            let p_bytes = delta.encode(frame, reference).size_bytes() as f64;
            p_bytes / i_bytes
        };
        whole_saving += ratio(&whole_b.frame, &whole_a.frame);
        far_saving += ratio(&far_b.frame, &far_a.frame);
        samples += 1;
    }
    let whole_ratio = whole_saving / samples as f64;
    let far_ratio = far_saving / samples as f64;
    assert!(
        far_ratio < whole_ratio,
        "far-BE P-frames ({far_ratio:.2} of intra) must compress better than \
         whole-BE P-frames ({whole_ratio:.2} of intra)"
    );
}
