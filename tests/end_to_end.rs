//! End-to-end integration tests spanning every crate in the workspace:
//! world generation → rendering → codec → cutoff → cache → network →
//! session simulation.
//!
//! These tests check the *paper's headline claims* hold in the full
//! pipeline, not just in unit-tested parts.

use coterie_sim::{Session, SessionConfig, SystemKind};
use coterie_world::GameId;

fn run(game: GameId, system: SystemKind, players: usize) -> coterie_sim::SessionReport {
    Session::new(
        SessionConfig::new(game, system, players)
            .with_duration_s(30.0)
            .with_seed(21),
    )
    .run()
}

#[test]
fn headline_coterie_supports_4_players_at_60fps() {
    // §7.2 / Figure 11: "Coterie with cache comfortably maintains 60 FPS
    // for 4 players."
    for game in GameId::TESTBED {
        let report = run(game, SystemKind::coterie(), 4);
        for (i, p) in report.players.iter().enumerate() {
            assert!(
                p.avg_fps > 55.0,
                "{game}: player {i} at {:.0} FPS under 4-player Coterie",
                p.avg_fps
            );
        }
    }
}

#[test]
fn headline_multifurion_cannot_support_4_players() {
    // §3 / Figure 11: Multi-Furion degrades toward ~24 FPS at 4 players.
    let report = run(GameId::VikingVillage, SystemKind::multi_furion(), 4);
    let m = report.aggregate();
    assert!(
        m.avg_fps < 50.0,
        "Multi-Furion at 4 players should fall well below 60 FPS, got {:.0}",
        m.avg_fps
    );
}

#[test]
fn headline_network_reduction_order_of_magnitude() {
    // Abstract: "reduces per-player network requirement by 10.6X-25.7X".
    // We assert the order of magnitude on the strongest-caching game.
    let mf = run(GameId::Cts, SystemKind::multi_furion(), 1).aggregate();
    let ct = run(GameId::Cts, SystemKind::coterie(), 1).aggregate();
    let reduction = mf.be_mbps / ct.be_mbps.max(1e-9);
    assert!(
        reduction > 8.0,
        "per-player network reduction {reduction:.1}x below the paper's regime"
    );
}

#[test]
fn headline_responsiveness_under_16_7ms() {
    // Table 7: Coterie responsiveness 15.6-15.9 ms.
    let report = run(GameId::RacingMountain, SystemKind::coterie(), 2);
    let m = report.aggregate();
    assert!(
        m.responsiveness_ms < 16.7,
        "Coterie responsiveness {:.1} ms misses the motion-to-photon budget",
        m.responsiveness_ms
    );
}

#[test]
fn headline_resource_usage_is_sustainable() {
    // §7.3: under 40% CPU / 65% GPU; temperature below the 52 C limit;
    // ~4 W draw.
    let report = Session::new(
        SessionConfig::new(GameId::VikingVillage, SystemKind::coterie(), 4)
            .with_duration_s(240.0)
            .with_seed(21),
    )
    .run();
    let m = report.aggregate();
    assert!(m.cpu_load < 0.45, "CPU load {:.2}", m.cpu_load);
    assert!(m.gpu_load < 0.70, "GPU load {:.2}", m.gpu_load);
    assert!(
        report.resources.peak_temperature_c() < coterie_device::thermal::PIXEL2_THERMAL_LIMIT_C,
        "SoC reached {:.1} C",
        report.resources.peak_temperature_c()
    );
    let watts = report.resources.mean_power_w();
    assert!((2.5..5.5).contains(&watts), "power draw {watts:.1} W");
}

#[test]
fn fps_ordering_matches_figure_11() {
    // Coterie+cache >= Coterie w/o cache >= Multi-Furion at 3 players.
    let game = GameId::VikingVillage;
    let coterie = run(game, SystemKind::Coterie { cache: true }, 3).aggregate();
    let no_cache = run(game, SystemKind::Coterie { cache: false }, 3).aggregate();
    let furion = run(game, SystemKind::multi_furion(), 3).aggregate();
    assert!(
        coterie.avg_fps >= no_cache.avg_fps - 1.0,
        "cache must not hurt FPS: {:.0} vs {:.0}",
        coterie.avg_fps,
        no_cache.avg_fps
    );
    assert!(
        no_cache.avg_fps >= furion.avg_fps - 1.0,
        "smaller far-BE frames must not scale worse than whole-BE: {:.0} vs {:.0}",
        no_cache.avg_fps,
        furion.avg_fps
    );
}

#[test]
fn sessions_are_deterministic() {
    let a = run(GameId::Pool, SystemKind::coterie(), 2);
    let b = run(GameId::Pool, SystemKind::coterie(), 2);
    assert_eq!(a, b, "same seed must reproduce the identical report");
}

#[test]
fn different_seeds_differ() {
    let a = Session::new(
        SessionConfig::new(GameId::Fps, SystemKind::coterie(), 1)
            .with_duration_s(20.0)
            .with_seed(1),
    )
    .run();
    let b = Session::new(
        SessionConfig::new(GameId::Fps, SystemKind::coterie(), 1)
            .with_duration_s(20.0)
            .with_seed(2),
    )
    .run();
    assert_ne!(a, b, "different seeds should explore different sessions");
}

#[test]
fn every_game_runs_every_system() {
    // Smoke: no panics and sane outputs across the whole matrix.
    for game in GameId::ALL {
        for system in [
            SystemKind::Mobile,
            SystemKind::ThinClient,
            SystemKind::multi_furion(),
            SystemKind::coterie(),
        ] {
            let report = Session::new(
                SessionConfig::new(game, system, 2)
                    .with_duration_s(8.0)
                    .with_seed(3),
            )
            .run();
            let m = report.aggregate();
            assert!(
                m.avg_fps > 1.0 && m.avg_fps <= 60.0,
                "{game}/{}",
                system.label()
            );
            assert!(m.inter_frame_ms >= 16.0, "{game}/{}", system.label());
            assert!((0.0..=1.0).contains(&m.cpu_load));
            assert!((0.0..=1.0).contains(&m.gpu_load));
        }
    }
}
