//! The sharded cross-session frame store.
//!
//! Far-BE frames depend only on world geometry — the grid point, the
//! leaf region and the near-BE object set (the paper's three lookup
//! criteria, §5.3) — never on which session requested them. A fleet
//! host can therefore keep one server-side store per game and satisfy
//! misses from *any* room out of frames rendered for *any other* room,
//! multiplying the effective cache population by the number of
//! concurrent sessions.
//!
//! The store shards by `(game, leaf region)`: lookups only ever match
//! within one leaf (criterion 2), so a shard holds everything a lookup
//! can see and shards never need to cooperate on reads. Each shard is a
//! [`FrameCache`] in the session-free [`CacheVersion::FLEET`]
//! configuration behind a `parking_lot` mutex. A single global byte
//! budget spans all shards; eviction runs one *global* LRU by stamping
//! every shard from one atomic clock and always evicting from the
//! shard holding the globally oldest entry.

use coterie_core::{
    CacheConfig, CacheQuery, CacheVersion, EvictionPolicy, FrameCache, FrameMeta, FrameSource,
};
use coterie_world::GameId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Store configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Global payload budget across all shards, bytes.
    pub capacity_bytes: u64,
    /// Number of mutex-guarded shards (lock striping width).
    pub shards: usize,
}

impl Default for StoreConfig {
    /// 256 MB over 16 shards — enough for a small fleet without
    /// swamping a test machine.
    fn default() -> Self {
        StoreConfig {
            capacity_bytes: 256 * 1024 * 1024,
            shards: 16,
        }
    }
}

/// Aggregate store counters (monotonic over the store's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found a qualifying frame.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Frames inserted.
    pub insertions: u64,
    /// Duplicate insertions skipped (a frame for the same position,
    /// leaf and near set was already present).
    pub duplicates: u64,
    /// Frames evicted by the global LRU.
    pub evictions: u64,
}

impl StoreStats {
    /// Hit ratio in `[0, 1]` (0 before any lookup).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One lock-striped shard: the leaf caches of every `(game, leaf)`
/// pair that hashes to this stripe.
#[derive(Debug, Default)]
struct Shard {
    caches: HashMap<(GameId, u32), FrameCache<()>>,
}

/// A server-side frame store shared by every room of the fleet.
///
/// Thread-safe (atomics + per-shard mutexes). Determinism note: the
/// store itself is deterministic for a fixed *sequence* of operations;
/// fleet runs that need byte-identical reports must serialize their
/// store mutations (the [`crate::Fleet`] epoch loop visits rooms in id
/// order for exactly this reason).
#[derive(Debug)]
pub struct SharedFrameStore {
    config: StoreConfig,
    shards: Vec<Mutex<Shard>>,
    /// Global logical clock; every operation takes a unique ticket so
    /// `last_access` stamps are totally ordered across shards.
    clock: AtomicU64,
    /// Global payload bytes across shards.
    bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    duplicates: AtomicU64,
    evictions: AtomicU64,
}

impl SharedFrameStore {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero or the capacity is zero.
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.shards > 0, "store needs at least one shard");
        assert!(config.capacity_bytes > 0, "store capacity must be positive");
        SharedFrameStore {
            config,
            shards: (0..config.shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            clock: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Total cached payload bytes across shards.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of cached frames across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().caches.values().map(FrameCache::len).sum::<usize>())
            .sum()
    }

    /// Whether no shard holds any frame.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// FNV-1a over the shard key, so `(game, leaf)` pairs spread evenly
    /// across stripes.
    fn shard_index(&self, game: GameId, leaf: u32) -> usize {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in (game as u32)
            .to_le_bytes()
            .into_iter()
            .chain(leaf.to_le_bytes())
        {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.shards.len() as u64) as usize
    }

    fn fresh_ticket(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a frame for `query` among every frame any session of
    /// `game` has contributed. Applies the paper's three criteria with
    /// the closest qualifying frame winning; a hit refreshes the
    /// frame's global recency.
    pub fn lookup(&self, game: GameId, query: &CacheQuery) -> bool {
        let ticket = self.fresh_ticket();
        let mut shard = self.shards[self.shard_index(game, query.leaf.0)].lock();
        let hit = match shard.caches.get_mut(&(game, query.leaf.0)) {
            Some(cache) => {
                cache.advance_clock(ticket);
                cache.lookup(query).is_some()
            }
            None => false,
        };
        drop(shard);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Inserts a rendered frame contributed by any session of `game`.
    /// Duplicates (a frame already covering the exact position, leaf
    /// and near set) are skipped so speculative backfill cannot bloat
    /// the store. Returns whether the frame was actually admitted.
    pub fn insert(&self, game: GameId, meta: FrameMeta, size_bytes: u64) -> bool {
        let ticket = self.fresh_ticket();
        let mut shard = self.shards[self.shard_index(game, meta.leaf.0)].lock();
        let cache = shard.caches.entry((game, meta.leaf.0)).or_insert_with(|| {
            FrameCache::new(CacheConfig {
                capacity_bytes: u64::MAX, // budget is enforced globally
                policy: EvictionPolicy::Lru,
                version: CacheVersion::FLEET,
            })
        });
        let dup_probe = CacheQuery {
            grid: meta.grid,
            pos: meta.pos,
            leaf: meta.leaf,
            near_hash: meta.near_hash,
            dist_thresh: 0.0,
        };
        if cache.peek(&dup_probe) {
            drop(shard);
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        cache.advance_clock(ticket);
        cache.insert(meta, FrameSource::Fleet, (), size_bytes, meta.pos);
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(size_bytes, Ordering::Relaxed);
        self.enforce_budget();
        true
    }

    /// Evicts globally-oldest frames until the byte budget holds.
    fn enforce_budget(&self) {
        while self.bytes.load(Ordering::Relaxed) > self.config.capacity_bytes {
            // Pass 1: find the shard+cache holding the globally oldest
            // entry. Stamps are unique (one ticket per operation), so
            // the minimum is attained by exactly one cache and the scan
            // order cannot affect the outcome.
            let mut victim: Option<(usize, (GameId, u32), u64)> = None;
            for (si, shard) in self.shards.iter().enumerate() {
                let shard = shard.lock();
                for (key, cache) in &shard.caches {
                    if let Some(oldest) = cache.oldest_access() {
                        if victim.map(|(_, _, v)| oldest < v).unwrap_or(true) {
                            victim = Some((si, *key, oldest));
                        }
                    }
                }
            }
            let Some((si, key, _)) = victim else {
                break; // budget exceeded but nothing left to evict
            };
            // Pass 2: evict from that cache. Under concurrent use
            // another thread may have emptied it between passes; the
            // outer loop simply rescans then.
            let mut shard = self.shards[si].lock();
            if let Some(cache) = shard.caches.get_mut(&key) {
                if let Some(freed) = cache.evict_lru() {
                    self.bytes.fetch_sub(freed, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_world::{GridPoint, LeafId, Vec2};

    fn meta(ix: i32, iz: i32, leaf: u32, hash: u64) -> FrameMeta {
        FrameMeta {
            grid: GridPoint::new(ix, iz),
            pos: Vec2::new(ix as f64 * 0.1, iz as f64 * 0.1),
            leaf: LeafId(leaf),
            near_hash: hash,
        }
    }

    fn query(m: &FrameMeta, dist_thresh: f64) -> CacheQuery {
        CacheQuery {
            grid: m.grid,
            pos: m.pos,
            leaf: m.leaf,
            near_hash: m.near_hash,
            dist_thresh,
        }
    }

    #[test]
    fn cross_session_frames_hit_without_session_id() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let m = meta(10, 10, 3, 7);
        // "Session A" contributes; "session B" asks for a nearby point.
        assert!(store.insert(GameId::VikingVillage, m, 500_000));
        let near = meta(11, 10, 3, 7);
        assert!(store.lookup(GameId::VikingVillage, &query(&near, 0.5)));
        assert_eq!(store.stats().hits, 1);
        assert!((store.stats().hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn games_are_isolated() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let m = meta(10, 10, 3, 7);
        store.insert(GameId::VikingVillage, m, 100);
        assert!(
            !store.lookup(GameId::Fps, &query(&m, 5.0)),
            "a frame from one game must never serve another"
        );
    }

    #[test]
    fn three_criteria_still_apply() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let m = meta(10, 10, 3, 7);
        store.insert(GameId::VikingVillage, m, 100);
        // Wrong leaf.
        let mut q = query(&m, 5.0);
        q.leaf = LeafId(4);
        assert!(!store.lookup(GameId::VikingVillage, &q));
        // Wrong near set.
        let mut q = query(&m, 5.0);
        q.near_hash = 8;
        assert!(!store.lookup(GameId::VikingVillage, &q));
        // Too far.
        let far = meta(80, 10, 3, 7);
        assert!(!store.lookup(GameId::VikingVillage, &query(&far, 0.5)));
    }

    #[test]
    fn duplicates_are_skipped() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let m = meta(10, 10, 3, 7);
        assert!(store.insert(GameId::VikingVillage, m, 100));
        assert!(!store.insert(GameId::VikingVillage, m, 100));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().duplicates, 1);
        assert_eq!(store.bytes(), 100);
    }

    #[test]
    fn budget_evicts_globally_oldest_across_shards() {
        // Three frames of 100 B in *different leaves* (hence different
        // shards) under a 250 B budget: the first-inserted frame is the
        // globally oldest and must be the one evicted.
        let store = SharedFrameStore::new(StoreConfig {
            capacity_bytes: 250,
            shards: 4,
        });
        let a = meta(10, 10, 1, 7);
        let b = meta(10, 10, 2, 7);
        let c = meta(10, 10, 3, 7);
        store.insert(GameId::VikingVillage, a, 100);
        store.insert(GameId::VikingVillage, b, 100);
        store.insert(GameId::VikingVillage, c, 100);
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 1);
        assert!(store.bytes() <= 250);
        assert!(
            !store.lookup(GameId::VikingVillage, &query(&a, 0.5)),
            "oldest evicted"
        );
        assert!(store.lookup(GameId::VikingVillage, &query(&b, 0.5)));
        assert!(store.lookup(GameId::VikingVillage, &query(&c, 0.5)));
    }

    #[test]
    fn hits_refresh_global_recency() {
        let store = SharedFrameStore::new(StoreConfig {
            capacity_bytes: 250,
            shards: 4,
        });
        let a = meta(10, 10, 1, 7);
        let b = meta(10, 10, 2, 7);
        store.insert(GameId::VikingVillage, a, 100);
        store.insert(GameId::VikingVillage, b, 100);
        // Touch a: b becomes globally oldest.
        assert!(store.lookup(GameId::VikingVillage, &query(&a, 0.5)));
        let c = meta(10, 10, 3, 7);
        store.insert(GameId::VikingVillage, c, 100);
        assert!(
            store.lookup(GameId::VikingVillage, &query(&a, 0.5)),
            "refreshed frame kept"
        );
        assert!(
            !store.lookup(GameId::VikingVillage, &query(&b, 0.5)),
            "stale frame evicted"
        );
    }

    #[test]
    fn concurrent_access_is_safe() {
        // Smoke test: hammer the store from several threads. Results
        // are not asserted deterministic here (the fleet serializes for
        // that) — only that counters and budget stay coherent.
        let store = std::sync::Arc::new(SharedFrameStore::new(StoreConfig {
            capacity_bytes: 10_000,
            shards: 4,
        }));
        std::thread::scope(|scope| {
            for t in 0..4i32 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..200i32 {
                        let m = meta(i, t, (i % 5) as u32, 7);
                        store.insert(GameId::Fps, m, 100);
                        store.lookup(GameId::Fps, &query(&m, 0.5));
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.hits + stats.misses, 800);
        assert!(store.bytes() <= 10_000);
        assert!(stats.insertions > 0);
    }
}
