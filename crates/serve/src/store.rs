//! The cross-session frame store behind the [`FrameStore`] backend API.
//!
//! Far-BE frames depend only on world geometry — the grid point, the
//! leaf region and the near-BE object set (the paper's three lookup
//! criteria, §5.3) — never on which session requested them. A fleet
//! host can therefore keep one server-side store per game and satisfy
//! misses from *any* room out of frames rendered for *any other* room,
//! multiplying the effective cache population by the number of
//! concurrent sessions.
//!
//! Consumers (rooms, the pre-render farm, the socket serving plane)
//! program against the [`FrameStore`] trait, so the backend is
//! swappable at construction time:
//!
//! - [`LocalStore`] — one in-process store (this module), the original
//!   `SharedFrameStore` behaviour byte for byte.
//! - [`crate::ShardedStore`] — a fleet-wide store partitioned across
//!   worker processes by consistent hashing (see [`crate::shard`]).
//!
//! The local store stripes by `(game, leaf region)`: lookups only ever
//! match within one leaf (criterion 2), so a stripe holds everything a
//! lookup can see and stripes never need to cooperate on reads. Each
//! stripe is a [`FrameCache`] in the session-free [`CacheVersion::FLEET`]
//! configuration behind a `parking_lot` mutex. A single global byte
//! budget spans all stripes; eviction runs one *global* LRU by stamping
//! every stripe from one atomic clock and always evicting from the
//! stripe holding the globally oldest entry.

use crate::farm::render_cost_ms;
use coterie_core::{
    CacheConfig, CacheQuery, CacheVersion, EvictionPolicy, FrameCache, FrameMeta, FrameSource,
};
use coterie_world::GameId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How the store treats a speculative insert that would overflow the
/// byte budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Admission {
    /// Admit everything; the global LRU evicts the oldest frame
    /// (the original fleet behaviour, and the `--predictor none`
    /// byte-identity baseline).
    #[default]
    Lru,
    /// Score the candidate's `predicted-reuse × render cost` against
    /// the value of the globally-oldest frame (the one an over-budget
    /// insert would evict): speculation not worth the eviction is
    /// refused. Demand-rendered frames are always admitted.
    CostAware,
}

/// Store configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Global payload budget across all stripes, bytes.
    pub capacity_bytes: u64,
    /// Number of mutex-guarded stripes (lock striping width).
    pub shards: usize,
    /// Over-budget admission policy for speculative inserts.
    pub admission: Admission,
}

impl Default for StoreConfig {
    /// 256 MB over 16 stripes — enough for a small fleet without
    /// swamping a test machine.
    fn default() -> Self {
        StoreConfig {
            capacity_bytes: 256 * 1024 * 1024,
            shards: 16,
            admission: Admission::Lru,
        }
    }
}

/// Aggregate store counters (monotonic over the store's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found a qualifying frame in an owned partition.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Frames inserted.
    pub insertions: u64,
    /// Duplicate insertions skipped (a frame for the same position,
    /// leaf and near set was already present at the same size).
    pub duplicates: u64,
    /// Re-inserts that replaced an existing frame with a
    /// different-sized payload (the old size is debited before the new
    /// one is credited, so the byte budget cannot drift).
    pub replacements: u64,
    /// Frames evicted by the global LRU.
    pub evictions: u64,
    /// Speculatively rendered frames admitted (pre-render farm
    /// backfill, as opposed to demand-rendered misses).
    pub spec_rendered: u64,
    /// Distinct speculative frames that served at least one hit.
    pub spec_used: u64,
    /// Lookups whose winning frame was speculative.
    pub spec_hits: u64,
    /// Speculative inserts refused by cost-aware admission.
    pub spec_rejected: u64,
    /// Operations routed to a remote-owned partition (sharded backend;
    /// always 0 for a [`LocalStore`]).
    pub forwards: u64,
    /// Lookups served out of a worker's local hot-replica cache instead
    /// of the remote owner (sharded backend; always 0 locally).
    pub replica_hits: u64,
    /// Hot entries copied into a replica cache by the epoch exchange
    /// (sharded backend; always 0 locally).
    pub replica_inserts: u64,
}

impl StoreStats {
    /// Hit ratio in `[0, 1]` (0 before any lookup). Replica hits are
    /// genuine store hits — the frame was served without a render —
    /// so they count toward the numerator and the traffic total.
    ///
    /// Computed in `f64` so zero-traffic partitions yield 0 (never
    /// NaN) and astronomically large counters cannot overflow the
    /// integer sum.
    pub fn hit_ratio(&self) -> f64 {
        let served = self.hits as f64 + self.replica_hits as f64;
        let total = served + self.misses as f64;
        if total == 0.0 {
            0.0
        } else {
            served / total
        }
    }

    /// Speculation precision in `[0, 1]`: the fraction of
    /// speculatively rendered frames that were ever used (0 before any
    /// speculative render). Low precision means the farm burned GPU
    /// time on frames nobody walked into.
    /// Clamped to `[0, 1]` so degenerate counter combinations (e.g.
    /// partially saturated merges) still report a sane ratio.
    pub fn spec_precision(&self) -> f64 {
        if self.spec_rendered == 0 {
            0.0
        } else {
            (self.spec_used as f64 / self.spec_rendered as f64).min(1.0)
        }
    }

    /// Speculation recall in `[0, 1]`: of the lookups that could not
    /// be served by a demand-rendered frame (speculative hits plus
    /// outright misses), the fraction speculation saved. High recall
    /// means the farm is pre-rendering the frames rooms actually
    /// stall on.
    ///
    /// The candidate sum is computed in `f64`, so partitions with
    /// degenerate (near-`u64::MAX`) counters still yield a finite,
    /// bounded ratio instead of an overflow panic.
    pub fn spec_recall(&self) -> f64 {
        let candidates = self.spec_hits as f64 + self.misses as f64;
        if candidates == 0.0 {
            0.0
        } else {
            self.spec_hits as f64 / candidates
        }
    }

    /// Element-wise sum, for fleets aggregating per-partition stores.
    ///
    /// Uses saturating addition, which keeps the fold associative and
    /// commutative for *any* operand values (`min(Σ, u64::MAX)` is
    /// independent of grouping) — sharded fleets merge stats from many
    /// partitions in whatever order the exchange visits them, and the
    /// result must not depend on that order.
    pub fn merged(self, other: StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits.saturating_add(other.hits),
            misses: self.misses.saturating_add(other.misses),
            insertions: self.insertions.saturating_add(other.insertions),
            duplicates: self.duplicates.saturating_add(other.duplicates),
            replacements: self.replacements.saturating_add(other.replacements),
            evictions: self.evictions.saturating_add(other.evictions),
            spec_rendered: self.spec_rendered.saturating_add(other.spec_rendered),
            spec_used: self.spec_used.saturating_add(other.spec_used),
            spec_hits: self.spec_hits.saturating_add(other.spec_hits),
            spec_rejected: self.spec_rejected.saturating_add(other.spec_rejected),
            forwards: self.forwards.saturating_add(other.forwards),
            replica_hits: self.replica_hits.saturating_add(other.replica_hits),
            replica_inserts: self.replica_inserts.saturating_add(other.replica_inserts),
        }
    }
}

/// The backend API every frame-store consumer programs against.
///
/// `Room`, the pre-render farm and the socket serving plane take
/// `&dyn FrameStore` / `Arc<dyn FrameStore>`, so the backend is chosen
/// once at construction (`--store local|sharded`) and nothing else in
/// the pipeline knows which one it got. All methods take `&self` —
/// backends are internally synchronized — and `Send + Sync` is a
/// supertrait so trait objects cross worker threads.
pub trait FrameStore: Send + Sync {
    /// Looks up a frame for `query` among every frame any session of
    /// `game` has contributed, applying the paper's three criteria
    /// with the closest qualifying frame winning. A hit refreshes the
    /// frame's global recency.
    fn lookup(&self, game: GameId, query: &CacheQuery) -> bool;

    /// Inserts a demand-rendered frame contributed by any session of
    /// `game`. Returns whether the frame was admitted (duplicates are
    /// skipped).
    fn insert(&self, game: GameId, meta: FrameMeta, size_bytes: u64) -> bool;

    /// Inserts a frame rendered speculatively by the pre-render farm;
    /// `reuse_score` is the predictor's reuse estimate, scored against
    /// the eviction victim under cost-aware admission.
    fn insert_speculative(
        &self,
        game: GameId,
        meta: FrameMeta,
        size_bytes: u64,
        reuse_score: f64,
    ) -> bool;

    /// Aggregate counters.
    fn stats(&self) -> StoreStats;

    /// The over-budget admission policy for speculative inserts.
    fn admission(&self) -> Admission;

    /// The global byte budget.
    fn capacity_bytes(&self) -> u64;

    /// Total cached payload bytes.
    fn bytes(&self) -> u64;

    /// Number of cached frames.
    fn len(&self) -> usize;

    /// Whether the store holds no frame.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-frame store bookkeeping carried as the cache payload: how the
/// frame came to exist and what keeping it is worth.
#[derive(Debug, Clone, Copy)]
struct FrameTag {
    /// Rendered by the speculative farm (vs a demand miss).
    speculative: bool,
    /// A lookup has hit this frame at least once.
    used: bool,
    /// Admission value: predicted reuse × simulated render cost.
    value: f64,
}

/// One lock-striped stripe: the leaf caches of every `(game, leaf)`
/// pair that hashes to it.
#[derive(Debug, Default)]
struct Stripe {
    caches: HashMap<(GameId, u32), FrameCache<FrameTag>>,
}

/// A recent insert, recorded for the sharded backend's epoch-batched
/// hot-entry adverts.
#[derive(Debug, Clone, Copy)]
pub struct RecentInsert {
    /// Game the frame belongs to.
    pub game: GameId,
    /// Frame identity (grid point, position, leaf, near-set hash).
    pub meta: FrameMeta,
    /// Payload size, bytes.
    pub bytes: u64,
    /// Global-clock stamp of the insert.
    pub stamp: u64,
    /// Admission value carried by the frame's tag.
    pub value: f64,
}

/// Upper bound on buffered [`RecentInsert`]s between advert drains, so
/// an owner that is never drained cannot grow without bound.
const RECENT_CAP: usize = 1024;

/// The in-process [`FrameStore`] backend: one store shared by every
/// room of the fleet (or one partition of the sharded fabric).
///
/// Thread-safe (atomics + per-stripe mutexes). Determinism note: the
/// store itself is deterministic for a fixed *sequence* of operations;
/// fleet runs that need byte-identical reports must serialize their
/// store mutations (the [`crate::Fleet`] epoch loop visits rooms in id
/// order for exactly this reason).
#[derive(Debug)]
pub struct LocalStore {
    config: StoreConfig,
    stripes: Vec<Mutex<Stripe>>,
    /// Global logical clock; every operation takes a unique ticket so
    /// `last_access` stamps are totally ordered across stripes. Shared
    /// (`Arc`) so the sharded fabric can stamp all its partitions from
    /// one clock and keep cross-partition LRU coherent.
    clock: Arc<AtomicU64>,
    /// Live byte budget. Starts at `config.capacity_bytes`; the sharded
    /// fabric's anti-entropy pass may rebalance it between partitions.
    capacity: AtomicU64,
    /// Global payload bytes across stripes.
    bytes: AtomicU64,
    /// When set, inserts are also buffered as [`RecentInsert`]s for
    /// the sharded backend's epoch adverts (off by default: the local
    /// backend never pays for bookkeeping it does not use).
    advertise: AtomicBool,
    recent: Mutex<Vec<RecentInsert>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    duplicates: AtomicU64,
    replacements: AtomicU64,
    evictions: AtomicU64,
    spec_rendered: AtomicU64,
    spec_used: AtomicU64,
    spec_hits: AtomicU64,
    spec_rejected: AtomicU64,
}

/// The pre-trait name of [`LocalStore`], kept as an alias so existing
/// call sites and docs keep compiling unchanged.
pub type SharedFrameStore = LocalStore;

impl LocalStore {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero or the capacity is zero.
    pub fn new(config: StoreConfig) -> Self {
        LocalStore::new_with_clock(config, Arc::new(AtomicU64::new(0)))
    }

    /// [`LocalStore::new`] with an externally shared global clock: the
    /// sharded fabric hands every partition the same `Arc` so access
    /// stamps are totally ordered *across* partitions and the
    /// fleet-wide LRU stays coherent.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`LocalStore::new`].
    pub fn new_with_clock(config: StoreConfig, clock: Arc<AtomicU64>) -> Self {
        assert!(config.shards > 0, "store needs at least one stripe");
        assert!(config.capacity_bytes > 0, "store capacity must be positive");
        LocalStore {
            config,
            stripes: (0..config.shards)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            clock,
            capacity: AtomicU64::new(config.capacity_bytes),
            bytes: AtomicU64::new(0),
            advertise: AtomicBool::new(false),
            recent: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            replacements: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            spec_rendered: AtomicU64::new(0),
            spec_used: AtomicU64::new(0),
            spec_hits: AtomicU64::new(0),
            spec_rejected: AtomicU64::new(0),
        }
    }

    /// The construction-time configuration (the *live* budget may have
    /// been rebalanced since; see [`LocalStore::capacity_bytes`]).
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Total cached payload bytes across stripes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The live byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Rebalances the live byte budget (sharded anti-entropy). Shrinking
    /// below current occupancy only takes effect at the caller's next
    /// eviction sweep — the store never evicts inside this call.
    pub fn set_capacity_bytes(&self, capacity_bytes: u64) {
        self.capacity
            .store(capacity_bytes.max(1), Ordering::Relaxed);
    }

    /// Number of cached frames across stripes.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().caches.values().map(FrameCache::len).sum::<usize>())
            .sum()
    }

    /// Whether no stripe holds any frame.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            replacements: self.replacements.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            spec_rendered: self.spec_rendered.load(Ordering::Relaxed),
            spec_used: self.spec_used.load(Ordering::Relaxed),
            spec_hits: self.spec_hits.load(Ordering::Relaxed),
            spec_rejected: self.spec_rejected.load(Ordering::Relaxed),
            forwards: 0,
            replica_hits: 0,
            replica_inserts: 0,
        }
    }

    /// Turns on [`RecentInsert`] buffering (sharded fabric only).
    pub fn set_advertise(&self, on: bool) {
        self.advertise.store(on, Ordering::Relaxed);
    }

    /// Drains the buffered recent inserts (newest last). Empty unless
    /// advertising was enabled via [`LocalStore::set_advertise`].
    pub fn drain_recent(&self) -> Vec<RecentInsert> {
        std::mem::take(&mut *self.recent.lock())
    }

    /// FNV-1a over the stripe key, so `(game, leaf)` pairs spread
    /// evenly across stripes.
    fn stripe_index(&self, game: GameId, leaf: u32) -> usize {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in (game as u32)
            .to_le_bytes()
            .into_iter()
            .chain(leaf.to_le_bytes())
        {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.stripes.len() as u64) as usize
    }

    fn fresh_ticket(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a frame for `query` among every frame any session of
    /// `game` has contributed. Applies the paper's three criteria with
    /// the closest qualifying frame winning; a hit refreshes the
    /// frame's global recency.
    pub fn lookup(&self, game: GameId, query: &CacheQuery) -> bool {
        let ticket = self.fresh_ticket();
        let mut stripe = self.stripes[self.stripe_index(game, query.leaf.0)].lock();
        let mut spec_hit = false;
        let mut first_use = false;
        let hit = match stripe.caches.get_mut(&(game, query.leaf.0)) {
            Some(cache) => {
                cache.advance_clock(ticket);
                match cache.lookup_mut(query) {
                    Some(tag) => {
                        if tag.speculative {
                            spec_hit = true;
                            first_use = !tag.used;
                        }
                        tag.used = true;
                        true
                    }
                    None => false,
                }
            }
            None => false,
        };
        drop(stripe);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if spec_hit {
                self.spec_hits.fetch_add(1, Ordering::Relaxed);
            }
            if first_use {
                self.spec_used.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Inserts a demand-rendered frame contributed by any session of
    /// `game`. Duplicates (a frame already covering the exact position,
    /// leaf and near set at the same size) are skipped so backfill
    /// cannot bloat the store. Returns whether the frame was admitted.
    pub fn insert(&self, game: GameId, meta: FrameMeta, size_bytes: u64) -> bool {
        self.insert_tagged(
            game,
            meta,
            size_bytes,
            FrameTag {
                speculative: false,
                used: false,
                value: 0.0,
            },
        )
    }

    /// Inserts a frame rendered speculatively by the pre-render farm.
    /// `reuse_score` is the predictor's estimate of how soon/often the
    /// frame will be requested; the admission value is that score
    /// weighted by the simulated render cost of the payload, so
    /// cost-aware admission keeps expensive frames it expects to reuse
    /// and refuses cheap long-shots over a full budget.
    pub fn insert_speculative(
        &self,
        game: GameId,
        meta: FrameMeta,
        size_bytes: u64,
        reuse_score: f64,
    ) -> bool {
        let value = reuse_score * render_cost_ms(size_bytes);
        if self.config.admission == Admission::CostAware
            && self.bytes.load(Ordering::Relaxed) + size_bytes > self.capacity_bytes()
        {
            // Admitting would evict the globally-oldest frame; only do
            // it if this candidate is worth more than that victim.
            let victim_value = self.oldest_value();
            if victim_value.map(|v| v >= value).unwrap_or(false) {
                self.spec_rejected.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        let admitted = self.insert_tagged(
            game,
            meta,
            size_bytes,
            FrameTag {
                speculative: true,
                used: false,
                value,
            },
        );
        if admitted {
            self.spec_rendered.fetch_add(1, Ordering::Relaxed);
        }
        admitted
    }

    /// The admission value of the globally-oldest frame (the one an
    /// over-budget insert would evict), if any.
    fn oldest_value(&self) -> Option<f64> {
        let mut victim: Option<(u64, f64)> = None;
        for stripe in &self.stripes {
            let stripe = stripe.lock();
            for cache in stripe.caches.values() {
                if let Some((stamp, tag)) = cache.oldest_entry() {
                    if victim.map(|(v, _)| stamp < v).unwrap_or(true) {
                        victim = Some((stamp, tag.value));
                    }
                }
            }
        }
        victim.map(|(_, value)| value)
    }

    /// The access stamp of this store's oldest entry (`None` when
    /// empty). The sharded fabric compares stamps across partitions —
    /// all drawn from one shared clock — to find the *globally* oldest
    /// frame during anti-entropy eviction.
    pub fn oldest_stamp(&self) -> Option<u64> {
        let mut oldest: Option<u64> = None;
        for stripe in &self.stripes {
            let stripe = stripe.lock();
            for cache in stripe.caches.values() {
                if let Some(stamp) = cache.oldest_access() {
                    if oldest.map(|v| stamp < v).unwrap_or(true) {
                        oldest = Some(stamp);
                    }
                }
            }
        }
        oldest
    }

    /// Evicts this store's single oldest entry, returning the bytes
    /// freed (`None` when empty). Used by the sharded fabric's global
    /// eviction sweep; local budget enforcement uses the same victim
    /// selection internally.
    pub fn evict_oldest(&self) -> Option<u64> {
        let mut victim: Option<(usize, (GameId, u32), u64)> = None;
        for (si, stripe) in self.stripes.iter().enumerate() {
            let stripe = stripe.lock();
            for (key, cache) in &stripe.caches {
                if let Some(oldest) = cache.oldest_access() {
                    if victim.map(|(_, _, v)| oldest < v).unwrap_or(true) {
                        victim = Some((si, *key, oldest));
                    }
                }
            }
        }
        let (si, key, _) = victim?;
        let mut stripe = self.stripes[si].lock();
        let cache = stripe.caches.get_mut(&key)?;
        let freed = cache.evict_lru()?;
        self.bytes.fetch_sub(freed, Ordering::Relaxed);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        Some(freed)
    }

    fn insert_tagged(&self, game: GameId, meta: FrameMeta, size_bytes: u64, tag: FrameTag) -> bool {
        let ticket = self.fresh_ticket();
        let mut stripe = self.stripes[self.stripe_index(game, meta.leaf.0)].lock();
        let cache = stripe.caches.entry((game, meta.leaf.0)).or_insert_with(|| {
            FrameCache::new(CacheConfig {
                capacity_bytes: u64::MAX, // budget is enforced globally
                policy: EvictionPolicy::Lru,
                version: CacheVersion::FLEET,
            })
        });
        let dup_probe = CacheQuery {
            grid: meta.grid,
            pos: meta.pos,
            leaf: meta.leaf,
            near_hash: meta.near_hash,
            dist_thresh: 0.0,
        };
        let mut replaced = false;
        match cache.peek_size(&dup_probe) {
            Some(old_size) if old_size == size_bytes => {
                // Same key, same payload size: genuine duplicate.
                drop(stripe);
                self.duplicates.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            Some(_) => {
                // Same key, different payload size (e.g. re-rendered at
                // another quality level): replace, debiting the old
                // bytes *before* crediting the new so the global budget
                // tracks the true sum of entry sizes.
                if let Some(old_size) = cache.remove_matching(&dup_probe) {
                    self.bytes.fetch_sub(old_size, Ordering::Relaxed);
                    replaced = true;
                }
            }
            None => {}
        }
        cache.advance_clock(ticket);
        cache.insert(meta, FrameSource::Fleet, tag, size_bytes, meta.pos);
        drop(stripe);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if replaced {
            self.replacements.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes.fetch_add(size_bytes, Ordering::Relaxed);
        if self.advertise.load(Ordering::Relaxed) {
            let mut recent = self.recent.lock();
            if recent.len() < RECENT_CAP {
                recent.push(RecentInsert {
                    game,
                    meta,
                    bytes: size_bytes,
                    stamp: ticket,
                    value: tag.value,
                });
            }
        }
        self.enforce_budget();
        true
    }

    /// Evicts globally-oldest frames until the byte budget holds.
    fn enforce_budget(&self) {
        while self.bytes.load(Ordering::Relaxed) > self.capacity_bytes() {
            // Pass 1: find the stripe+cache holding the globally oldest
            // entry. Stamps are unique (one ticket per operation), so
            // the minimum is attained by exactly one cache and the scan
            // order cannot affect the outcome.
            let mut victim: Option<(usize, (GameId, u32), u64)> = None;
            for (si, stripe) in self.stripes.iter().enumerate() {
                let stripe = stripe.lock();
                for (key, cache) in &stripe.caches {
                    if let Some(oldest) = cache.oldest_access() {
                        if victim.map(|(_, _, v)| oldest < v).unwrap_or(true) {
                            victim = Some((si, *key, oldest));
                        }
                    }
                }
            }
            let Some((si, key, _)) = victim else {
                break; // budget exceeded but nothing left to evict
            };
            // Pass 2: evict from that cache. Under concurrent use
            // another thread may have emptied it between passes; the
            // outer loop simply rescans then.
            let mut stripe = self.stripes[si].lock();
            if let Some(cache) = stripe.caches.get_mut(&key) {
                if let Some(freed) = cache.evict_lru() {
                    self.bytes.fetch_sub(freed, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

impl FrameStore for LocalStore {
    fn lookup(&self, game: GameId, query: &CacheQuery) -> bool {
        LocalStore::lookup(self, game, query)
    }

    fn insert(&self, game: GameId, meta: FrameMeta, size_bytes: u64) -> bool {
        LocalStore::insert(self, game, meta, size_bytes)
    }

    fn insert_speculative(
        &self,
        game: GameId,
        meta: FrameMeta,
        size_bytes: u64,
        reuse_score: f64,
    ) -> bool {
        LocalStore::insert_speculative(self, game, meta, size_bytes, reuse_score)
    }

    fn stats(&self) -> StoreStats {
        LocalStore::stats(self)
    }

    fn admission(&self) -> Admission {
        self.config.admission
    }

    fn capacity_bytes(&self) -> u64 {
        LocalStore::capacity_bytes(self)
    }

    fn bytes(&self) -> u64 {
        LocalStore::bytes(self)
    }

    fn len(&self) -> usize {
        LocalStore::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_world::{GridPoint, LeafId, Vec2};

    fn meta(ix: i32, iz: i32, leaf: u32, hash: u64) -> FrameMeta {
        FrameMeta {
            grid: GridPoint::new(ix, iz),
            pos: Vec2::new(ix as f64 * 0.1, iz as f64 * 0.1),
            leaf: LeafId(leaf),
            near_hash: hash,
        }
    }

    fn query(m: &FrameMeta, dist_thresh: f64) -> CacheQuery {
        CacheQuery {
            grid: m.grid,
            pos: m.pos,
            leaf: m.leaf,
            near_hash: m.near_hash,
            dist_thresh,
        }
    }

    #[test]
    fn cross_session_frames_hit_without_session_id() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let m = meta(10, 10, 3, 7);
        // "Session A" contributes; "session B" asks for a nearby point.
        assert!(store.insert(GameId::VikingVillage, m, 500_000));
        let near = meta(11, 10, 3, 7);
        assert!(store.lookup(GameId::VikingVillage, &query(&near, 0.5)));
        assert_eq!(store.stats().hits, 1);
        assert!((store.stats().hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trait_object_backend_is_swappable() {
        // The whole point of the redesign: callers hold `&dyn
        // FrameStore` and never know the backend.
        let local = LocalStore::new(StoreConfig::default());
        let store: &dyn FrameStore = &local;
        let m = meta(4, 4, 2, 9);
        assert!(store.insert(GameId::Fps, m, 1000));
        assert!(store.lookup(GameId::Fps, &query(&m, 0.5)));
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.admission(), Admission::Lru);
        assert_eq!(store.bytes(), 1000);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn games_are_isolated() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let m = meta(10, 10, 3, 7);
        store.insert(GameId::VikingVillage, m, 100);
        assert!(
            !store.lookup(GameId::Fps, &query(&m, 5.0)),
            "a frame from one game must never serve another"
        );
    }

    #[test]
    fn three_criteria_still_apply() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let m = meta(10, 10, 3, 7);
        store.insert(GameId::VikingVillage, m, 100);
        // Wrong leaf.
        let mut q = query(&m, 5.0);
        q.leaf = LeafId(4);
        assert!(!store.lookup(GameId::VikingVillage, &q));
        // Wrong near set.
        let mut q = query(&m, 5.0);
        q.near_hash = 8;
        assert!(!store.lookup(GameId::VikingVillage, &q));
        // Too far.
        let far = meta(80, 10, 3, 7);
        assert!(!store.lookup(GameId::VikingVillage, &query(&far, 0.5)));
    }

    #[test]
    fn duplicates_are_skipped() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let m = meta(10, 10, 3, 7);
        assert!(store.insert(GameId::VikingVillage, m, 100));
        assert!(!store.insert(GameId::VikingVillage, m, 100));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().duplicates, 1);
        assert_eq!(store.bytes(), 100);
    }

    #[test]
    fn reinsert_with_different_size_keeps_budget_exact() {
        // Regression: re-inserting the same key with a different-sized
        // payload used to be skipped as a "duplicate", leaving the byte
        // budget tracking the *old* size forever. Under the old code
        // repeated re-encodes made `bytes()` drift away from the true
        // sum of entry sizes; now the old size is debited before the
        // new one is credited.
        let store = SharedFrameStore::new(StoreConfig::default());
        let m = meta(10, 10, 3, 7);
        assert!(store.insert(GameId::VikingVillage, m, 100));
        assert_eq!(store.bytes(), 100);
        // Same key, larger payload (re-rendered at a higher quality).
        assert!(store.insert(GameId::VikingVillage, m, 900));
        assert_eq!(store.len(), 1, "replacement must not add an entry");
        assert_eq!(
            store.bytes(),
            900,
            "budget must track the live payload, not the original insert"
        );
        // And shrink back down.
        assert!(store.insert(GameId::VikingVillage, m, 40));
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), 40);
        let stats = store.stats();
        assert_eq!(stats.replacements, 2);
        assert_eq!(stats.duplicates, 0);
        // Hammer the path: any drift compounds, so after many cycles
        // the budget must still equal the single live entry's size.
        for round in 0..200u64 {
            let size = 50 + (round * 37) % 400;
            store.insert(GameId::VikingVillage, m, size);
            assert_eq!(store.len(), 1);
            let expect = if store.stats().duplicates > 0 {
                store.bytes() // a same-size round is a no-op
            } else {
                size
            };
            assert_eq!(store.bytes(), expect, "drift after round {round}");
        }
    }

    #[test]
    fn same_size_reinsert_is_still_a_duplicate() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let m = meta(10, 10, 3, 7);
        assert!(store.insert(GameId::VikingVillage, m, 100));
        assert!(!store.insert(GameId::VikingVillage, m, 100));
        assert_eq!(store.stats().duplicates, 1);
        assert_eq!(store.stats().replacements, 0);
        assert_eq!(store.bytes(), 100);
    }

    #[test]
    fn speculative_frames_are_tracked_through_use() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let a = meta(10, 10, 3, 7);
        let b = meta(20, 20, 3, 7);
        assert!(store.insert_speculative(GameId::VikingVillage, a, 100, 1.0));
        assert!(store.insert_speculative(GameId::VikingVillage, b, 100, 1.0));
        assert_eq!(store.stats().spec_rendered, 2);
        // Two hits on the same speculative frame: spec_hits counts
        // both, spec_used counts the frame once.
        assert!(store.lookup(GameId::VikingVillage, &query(&a, 0.5)));
        assert!(store.lookup(GameId::VikingVillage, &query(&a, 0.5)));
        let stats = store.stats();
        assert_eq!(stats.spec_hits, 2);
        assert_eq!(stats.spec_used, 1);
        assert!((stats.spec_precision() - 0.5).abs() < 1e-12);
        assert!((stats.spec_recall() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cost_aware_admission_refuses_low_value_speculation() {
        let store = SharedFrameStore::new(StoreConfig {
            capacity_bytes: 250,
            shards: 4,
            admission: Admission::CostAware,
        });
        let a = meta(10, 10, 1, 7);
        let b = meta(10, 10, 2, 7);
        assert!(store.insert_speculative(GameId::VikingVillage, a, 150, 5.0));
        // Over budget, but worth more than the resident frame: admitted
        // (and the LRU evicts `a`).
        assert!(store.insert_speculative(GameId::VikingVillage, b, 150, 6.0));
        // A near-zero reuse score is worth less than the resident
        // frame, so the insert is refused and nothing is evicted.
        let c = meta(10, 10, 3, 7);
        assert!(!store.insert_speculative(GameId::VikingVillage, c, 150, 0.0));
        assert_eq!(store.stats().spec_rejected, 1);
        assert!(store.lookup(GameId::VikingVillage, &query(&b, 0.5)));
        // A high-value candidate still gets in (and LRU evicts).
        let d = meta(10, 10, 4, 7);
        assert!(store.insert_speculative(GameId::VikingVillage, d, 150, 50.0));
    }

    #[test]
    fn lru_admission_always_admits_speculation() {
        let store = SharedFrameStore::new(StoreConfig {
            capacity_bytes: 250,
            shards: 4,
            ..StoreConfig::default()
        });
        let a = meta(10, 10, 1, 7);
        let b = meta(10, 10, 2, 7);
        let c = meta(10, 10, 3, 7);
        assert!(store.insert_speculative(GameId::VikingVillage, a, 150, 5.0));
        assert!(store.insert_speculative(GameId::VikingVillage, b, 150, 5.0));
        assert!(store.insert_speculative(GameId::VikingVillage, c, 150, 0.0));
        assert_eq!(store.stats().spec_rejected, 0);
        assert!(store.stats().evictions > 0);
    }

    #[test]
    fn budget_evicts_globally_oldest_across_stripes() {
        // Three frames of 100 B in *different leaves* (hence different
        // stripes) under a 250 B budget: the first-inserted frame is
        // the globally oldest and must be the one evicted.
        let store = SharedFrameStore::new(StoreConfig {
            capacity_bytes: 250,
            shards: 4,
            ..StoreConfig::default()
        });
        let a = meta(10, 10, 1, 7);
        let b = meta(10, 10, 2, 7);
        let c = meta(10, 10, 3, 7);
        store.insert(GameId::VikingVillage, a, 100);
        store.insert(GameId::VikingVillage, b, 100);
        store.insert(GameId::VikingVillage, c, 100);
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 1);
        assert!(store.bytes() <= 250);
        assert!(
            !store.lookup(GameId::VikingVillage, &query(&a, 0.5)),
            "oldest evicted"
        );
        assert!(store.lookup(GameId::VikingVillage, &query(&b, 0.5)));
        assert!(store.lookup(GameId::VikingVillage, &query(&c, 0.5)));
    }

    #[test]
    fn hits_refresh_global_recency() {
        let store = SharedFrameStore::new(StoreConfig {
            capacity_bytes: 250,
            shards: 4,
            ..StoreConfig::default()
        });
        let a = meta(10, 10, 1, 7);
        let b = meta(10, 10, 2, 7);
        store.insert(GameId::VikingVillage, a, 100);
        store.insert(GameId::VikingVillage, b, 100);
        // Touch a: b becomes globally oldest.
        assert!(store.lookup(GameId::VikingVillage, &query(&a, 0.5)));
        let c = meta(10, 10, 3, 7);
        store.insert(GameId::VikingVillage, c, 100);
        assert!(
            store.lookup(GameId::VikingVillage, &query(&a, 0.5)),
            "refreshed frame kept"
        );
        assert!(
            !store.lookup(GameId::VikingVillage, &query(&b, 0.5)),
            "stale frame evicted"
        );
    }

    #[test]
    fn shared_clock_orders_stamps_across_stores() {
        // Two partitions on one clock: entries inserted later into the
        // *other* partition must carry younger stamps, so the fabric's
        // global eviction can compare them directly.
        let clock = Arc::new(AtomicU64::new(0));
        let a = LocalStore::new_with_clock(StoreConfig::default(), clock.clone());
        let b = LocalStore::new_with_clock(StoreConfig::default(), clock);
        a.insert(GameId::Fps, meta(1, 1, 1, 7), 100);
        b.insert(GameId::Fps, meta(2, 2, 2, 7), 100);
        a.insert(GameId::Fps, meta(3, 3, 3, 7), 100);
        let oldest_a = a.oldest_stamp().unwrap();
        let oldest_b = b.oldest_stamp().unwrap();
        assert!(oldest_a < oldest_b, "a's first insert is globally oldest");
        // Evicting the global minimum frees a's first frame.
        assert_eq!(a.evict_oldest(), Some(100));
        assert!(!a.lookup(GameId::Fps, &query(&meta(1, 1, 1, 7), 0.1)));
        assert!(a.lookup(GameId::Fps, &query(&meta(3, 3, 3, 7), 0.1)));
    }

    #[test]
    fn capacity_rebalance_takes_effect_on_next_insert() {
        let store = LocalStore::new(StoreConfig {
            capacity_bytes: 1000,
            shards: 4,
            ..StoreConfig::default()
        });
        store.insert(GameId::Fps, meta(1, 1, 1, 7), 400);
        store.insert(GameId::Fps, meta(2, 2, 2, 7), 400);
        assert_eq!(store.len(), 2);
        // Shrink the live budget below occupancy: nothing evicts yet…
        store.set_capacity_bytes(500);
        assert_eq!(store.len(), 2);
        // …but the next insert's budget sweep trims to the new cap.
        store.insert(GameId::Fps, meta(3, 3, 3, 7), 400);
        assert!(store.bytes() <= 500, "bytes {} over cap", store.bytes());
    }

    #[test]
    fn recent_inserts_buffer_only_when_advertising() {
        let store = LocalStore::new(StoreConfig::default());
        store.insert(GameId::Fps, meta(1, 1, 1, 7), 100);
        assert!(store.drain_recent().is_empty(), "off by default");
        store.set_advertise(true);
        store.insert(GameId::Fps, meta(2, 2, 2, 7), 150);
        store.insert_speculative(GameId::Fps, meta(3, 3, 3, 7), 200, 1.0);
        let recent = store.drain_recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].bytes, 150);
        assert_eq!(recent[1].bytes, 200);
        assert!(recent[0].stamp < recent[1].stamp);
        assert!(store.drain_recent().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn stats_ratios_are_finite_for_degenerate_counters() {
        // Zero-traffic partition: all ratios are 0, not NaN.
        let zero = StoreStats::default();
        assert_eq!(zero.hit_ratio(), 0.0);
        assert_eq!(zero.spec_precision(), 0.0);
        assert_eq!(zero.spec_recall(), 0.0);
        // Saturated counters: no overflow panic, ratios stay in [0,1].
        let max = StoreStats {
            hits: u64::MAX,
            misses: u64::MAX,
            spec_hits: u64::MAX,
            spec_rendered: u64::MAX,
            spec_used: u64::MAX,
            replica_hits: u64::MAX,
            ..StoreStats::default()
        };
        for r in [max.hit_ratio(), max.spec_precision(), max.spec_recall()] {
            assert!(r.is_finite() && (0.0..=1.0).contains(&r), "ratio {r}");
        }
        // merged saturates instead of wrapping.
        let merged = max.merged(max);
        assert_eq!(merged.hits, u64::MAX);
    }

    #[test]
    fn concurrent_access_is_safe() {
        // Smoke test: hammer the store from several threads. Results
        // are not asserted deterministic here (the fleet serializes for
        // that) — only that counters and budget stay coherent.
        let store = std::sync::Arc::new(SharedFrameStore::new(StoreConfig {
            capacity_bytes: 10_000,
            shards: 4,
            ..StoreConfig::default()
        }));
        std::thread::scope(|scope| {
            for t in 0..4i32 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..200i32 {
                        let m = meta(i, t, (i % 5) as u32, 7);
                        store.insert(GameId::Fps, m, 100);
                        store.lookup(GameId::Fps, &query(&m, 0.5));
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.hits + stats.misses, 800);
        assert!(store.bytes() <= 10_000);
        assert!(stats.insertions > 0);
    }
}
