//! # coterie-serve
//!
//! A multi-session fleet runtime for the Coterie reproduction.
//!
//! The paper runs one render server per four-player session. A hosting
//! provider runs *fleets*: hundreds of concurrent rooms of the same
//! handful of games. This crate scales the paper's core observation —
//! far-BE frames are reusable wherever the three similarity criteria
//! hold — across session boundaries:
//!
//! * [`Room`] wraps a [`coterie_sim::SessionSim`] and routes its
//!   prefetch misses through the fleet instead of a private server.
//! * [`SharedFrameStore`] is a sharded, globally-budgeted, cross-session
//!   frame cache: shards are keyed by `(game, leaf region)` behind
//!   `parking_lot` mutexes, one atomic clock totally orders accesses,
//!   and eviction runs a single LRU across every shard. Lookups extend
//!   the paper's three-criteria match with a *session-id-free* variant
//!   ([`coterie_core::CacheVersion::FLEET`]): any room's frames can
//!   serve any other room of the same game.
//! * [`PrerenderFarm`] turns store misses into speculative neighbour
//!   renders, batched per epoch and swept with the work-stealing
//!   [`coterie_parallel::par_map_ws`].
//! * [`PosePredictor`] (selected per fleet via
//!   [`FleetConfig::predictor`]) replaces blind speculation with
//!   pose-predictive speculation: constant-velocity (`cv`) or
//!   viewport-pose-model-informed (`vpm`, velocity decay plus pull
//!   toward the scene's shared hotspots) extrapolation ranks the farm's
//!   queue by predicted leaf-region occupancy, and the store scores
//!   speculative inserts against the LRU victim (cost-aware
//!   admission). `--predictor none` reproduces predictor-less reports
//!   byte for byte.
//! * [`Fleet`] runs admission control (bounded per-room queues, a
//!   fleet-wide [`coterie_net::FleetEgress`] downlink budget) and
//!   graceful degradation (rooms violating the 16.7 ms frame budget
//!   ship smaller frames until they recover).
//! * [`FleetMetrics`] reports tail FPS (p50/p95/p99 across rooms),
//!   store hit ratio, shipped bandwidth, pre-render GPU-hours and peak
//!   device temperature.
//! * Matchmaking & churn: [`FleetConfig::churn`] selects a seeded
//!   [`ChurnScenario`] (steady trickle, flash crowd, day curve) whose
//!   arrivals the [`matchmaker`] places into rooms at plan time —
//!   first-fit or pose-affinity ([`PlacementPolicy`]) — with an
//!   admission queue and overflow room spawn. Rosters become presence
//!   windows on each room's session; `--churn none` (the default)
//!   skips the plan path and reproduces static-fleet reports byte for
//!   byte. [`FleetMetrics::matchmaking`] carries the placement
//!   counters.
//! * Observability: [`Fleet::new_with_telemetry`] threads a
//!   `coterie_telemetry::TelemetrySink` through every room, attributing
//!   each displayed frame to its pipeline stages against the 16.7 ms
//!   budget; [`FleetMetrics::telemetry`] carries the fleet-wide summary
//!   and the sink's snapshots export as a Chrome trace. Telemetry is
//!   observation-only — untraced runs are byte-identical to builds
//!   without it.
//! * The FI fault plane: [`FleetConfig::net`] selects a
//!   [`coterie_net::NetScenario`] (burst loss, latency spikes, relay
//!   outage) applied to every room's per-player FI channel, and the
//!   metrics then carry loss-aware accounting — retries, dead-reckoned
//!   stale frames, staleness-cap violations and desync percentiles.
//!
//! Runs are deterministic: the epoch loop serializes store transactions
//! in room-id order, so a fixed [`FleetConfig`] reproduces its report
//! byte for byte (construction parallelism is order-preserving).
//!
//! # Example
//!
//! ```no_run
//! use coterie_serve::{Fleet, FleetConfig};
//!
//! let report = Fleet::new(FleetConfig { rooms: 4, ..FleetConfig::default() }).run();
//! println!("{}", report.metrics);
//! assert!(report.metrics.fps_p50 > 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod farm;
pub mod fleet;
pub mod matchmaker;
pub mod metrics;
pub mod predict;
pub mod room;
pub mod shard;
pub mod store;

pub use churn::{generate_arrivals, Arrival, ChurnScenario};
pub use farm::{render_cost_ms, PrerenderFarm, PrerenderJob};
pub use fleet::{Fleet, FleetConfig, FleetReport};
pub use matchmaker::{MatchPlan, MatchmakingMetrics, PlacementPolicy, RoomPlan};
pub use metrics::{percentile, FleetMetrics};
pub use predict::{PosePredictor, PredictorKind};
pub use room::{Room, RoomReport};
pub use shard::{partition_key, HashRing, ShardFabric, ShardMetrics, ShardedStore, StoreBackend};
pub use store::{Admission, FrameStore, LocalStore, SharedFrameStore, StoreConfig, StoreStats};
