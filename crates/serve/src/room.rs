//! One hosted multiplayer session ("room") inside the fleet.
//!
//! A room wraps a [`SessionSim`] and routes every client-cache miss
//! through the fleet's shared frame store instead of the per-session
//! render path. It also runs the room's half of the fleet's graceful
//! degradation: an exponential moving average of the per-frame critical
//! path is compared against the 16.7 ms vsync budget at each epoch
//! boundary, and rooms that keep violating it ship smaller far-BE
//! frames (the sim's quality scale) until they fit again.

use crate::farm::{render_cost_ms, PrerenderFarm};
use crate::predict::{PosePredictor, PredictorKind, SPECULATION_HORIZONS_VSYNCS};
use crate::store::FrameStore;
use coterie_core::{CacheQuery, FrameMeta};
use coterie_device::FRAME_BUDGET_MS;
use coterie_net::FleetEgress;
use coterie_sim::{SessionConfig, SessionReport, SessionSim};
use coterie_telemetry::{room_pid, FrameStats, Stage, TelemetrySink, TrackId, SERVICE_TID};
use coterie_world::{scene_hotspots, GameId};

/// Smoothing factor of the critical-path EMA (per frame).
const EMA_ALPHA: f64 = 0.1;
/// Consecutive over-budget epochs before quality drops.
const DEGRADE_AFTER_EPOCHS: u32 = 2;
/// Consecutive in-budget epochs before quality recovers a notch.
const RECOVER_AFTER_EPOCHS: u32 = 4;
/// Multiplicative quality decrease / recovery steps.
const DEGRADE_STEP: f64 = 0.75;
const RECOVER_STEP: f64 = 1.15;
// A room's fleet-side service spans — store lookups and far-BE
// transfers — land on the checked `coterie_telemetry::SERVICE_TID`
// lane, clearly apart from the per-player frame lanes.

/// Per-room outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct RoomReport {
    /// Room id (fleet-wide index).
    pub id: usize,
    /// Game hosted by the room.
    pub game: GameId,
    /// The wrapped session's full report.
    pub session: SessionReport,
    /// Store lookups that hit.
    pub store_hits: u64,
    /// Store lookups that missed (required an on-demand render).
    pub store_misses: u64,
    /// Requests that bypassed the store because the room's bounded
    /// prefetch queue was full this epoch.
    pub queue_overflows: u64,
    /// Prefetches the fleet egress budget refused at full size (shipped
    /// degraded instead).
    pub egress_refusals: u64,
    /// Times the degradation controller lowered quality.
    pub degradations: u64,
    /// Quality scale the room ended at (1 = undegraded).
    pub final_quality_scale: f64,
    /// GPU-ms spent rendering this room's store misses on demand.
    pub inline_gpu_ms: f64,
    /// Far-BE bytes actually shipped to this room's clients.
    pub shipped_bytes: u64,
    /// Per-frame budget attribution totals (`None` when the fleet ran
    /// without a telemetry sink — the default, and the configuration
    /// golden reports are recorded under).
    pub telemetry: Option<FrameStats>,
}

impl RoomReport {
    /// Store hit ratio of this room's prefetch traffic.
    pub fn store_hit_ratio(&self) -> f64 {
        let total = self.store_hits + self.store_misses;
        if total == 0 {
            0.0
        } else {
            self.store_hits as f64 / total as f64
        }
    }

    /// The room's FI loss/recovery accounting (all-zero when the fleet
    /// ran without a fault scenario).
    pub fn fi(&self) -> coterie_sim::FiReport {
        self.session.fi
    }
}

/// A hosted session plus its fleet-side bookkeeping.
pub struct Room {
    id: usize,
    game: GameId,
    sim: SessionSim,
    /// Pose-predictive speculation state; `None` runs the historical
    /// blind-neighbour farm path bit-for-bit.
    predictor: Option<PosePredictor>,
    queue_depth: usize,
    queued_this_epoch: usize,
    ema_critical_ms: f64,
    over_epochs: u32,
    calm_epochs: u32,
    store_hits: u64,
    store_misses: u64,
    queue_overflows: u64,
    egress_refusals: u64,
    degradations: u64,
    inline_gpu_ms: f64,
    shipped_bytes: u64,
    telemetry: TelemetrySink,
}

impl Room {
    /// Builds the room and its simulated session (world construction and
    /// the measurement pass happen here — rooms are cheap to *run* but
    /// not to *build*, which is why the fleet constructs them in a
    /// work-stealing parallel sweep).
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero — a room must be able to issue at
    /// least one prefetch per epoch.
    pub fn new(id: usize, config: SessionConfig, queue_depth: usize) -> Self {
        Room::new_with_telemetry(id, config, queue_depth, TelemetrySink::disabled())
    }

    /// [`Room::new`] with an observation-only telemetry sink: the
    /// wrapped session attributes every displayed frame to `sink`, and
    /// the room adds store-lookup and farm spans on its own trace lane.
    /// With a disabled sink this is [`Room::new`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn new_with_telemetry(
        id: usize,
        config: SessionConfig,
        queue_depth: usize,
        telemetry: TelemetrySink,
    ) -> Self {
        assert!(
            queue_depth > 0,
            "rooms need a prefetch queue depth of at least 1"
        );
        let game = config.game;
        Room {
            id,
            game,
            sim: SessionSim::new_with_telemetry(config, telemetry.clone(), id as u32),
            predictor: None,
            queue_depth,
            queued_this_epoch: 0,
            ema_critical_ms: 0.0,
            over_epochs: 0,
            calm_epochs: 0,
            store_hits: 0,
            store_misses: 0,
            queue_overflows: 0,
            egress_refusals: 0,
            degradations: 0,
            inline_gpu_ms: 0.0,
            shipped_bytes: 0,
            telemetry,
        }
    }

    /// Drives the room's speculation with a pose predictor of `kind`
    /// (the `vpm` variant reconstructs the scene's shared hotspots from
    /// the session's world). [`PredictorKind::None`] keeps the blind
    /// farm path byte-for-byte.
    pub fn with_predictor(mut self, kind: PredictorKind) -> Self {
        self.predictor = PosePredictor::new(kind, scene_hotspots(self.sim.scene()));
        self
    }

    /// Installs the matchmaker's presence windows — one
    /// `(join_ms, leave_ms)` pair per roster slot — on the wrapped
    /// session. Must be called before the room ticks.
    ///
    /// # Panics
    ///
    /// Panics if `windows.len()` differs from the roster size or the
    /// session has already stepped (forwarded from
    /// [`SessionSim::set_presence`]).
    pub fn with_presence(mut self, windows: &[(f64, f64)]) -> Self {
        self.sim.set_presence(windows);
        self
    }

    /// Room id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Hosted game.
    pub fn game(&self) -> GameId {
        self.game
    }

    /// Whether the wrapped session has played out its full duration.
    pub fn finished(&self) -> bool {
        self.sim.finished()
    }

    /// Critical-path EMA, ms (0 before the first frame).
    pub fn ema_critical_ms(&self) -> f64 {
        self.ema_critical_ms
    }

    /// Current quality scale of the wrapped session.
    pub fn quality_scale(&self) -> f64 {
        self.sim.quality_scale()
    }

    /// Advances the room's session until its logical clock reaches
    /// `epoch_end_ms` (or the session ends), serving prefetch misses
    /// from `store` and queueing speculative work on `farm`.
    ///
    /// `store_idx` is the store's index in the fleet's store list (used
    /// to label farm jobs); `egress` is the fleet-wide downlink budget.
    pub fn tick(
        &mut self,
        epoch_end_ms: f64,
        store: &dyn FrameStore,
        store_idx: usize,
        egress: &mut FleetEgress,
        farm: &mut PrerenderFarm,
    ) {
        let game = self.game;
        let queue_depth = self.queue_depth;
        let mut queued = self.queued_this_epoch;
        let mut store_hits = 0u64;
        let mut store_misses = 0u64;
        let mut queue_overflows = 0u64;
        let mut egress_refusals = 0u64;
        let mut inline_gpu_ms = 0.0f64;
        let mut shipped_bytes = 0u64;
        let mut ema = self.ema_critical_ms;
        let grid = *self.sim.scene().grid();
        let predictor = &mut self.predictor;
        let telemetry = self.telemetry.clone();
        // Room-level service spans (store lookups, far-BE transfers)
        // get their own trace lane next to the per-player frame lanes.
        let track = TrackId {
            pid: room_pid(self.id as u32),
            tid: SERVICE_TID,
        };

        let mut fetch = |link: &mut coterie_net::SharedLink,
                         req: coterie_sim::FarRequest|
         -> coterie_sim::FarResponse {
            let meta = FrameMeta {
                grid: req.grid,
                pos: req.pos,
                leaf: req.leaf,
                near_hash: req.near_hash,
            };
            // Bounded per-room queue: a room may only have `queue_depth`
            // store transactions in flight per epoch; beyond that the
            // request falls back to a dedicated on-demand render (it
            // cannot be dropped — the client is waiting on the frame).
            let render_ms = if queued < queue_depth {
                queued += 1;
                let query = CacheQuery {
                    grid: req.grid,
                    pos: req.pos,
                    leaf: req.leaf,
                    near_hash: req.near_hash,
                    dist_thresh: req.dist_thresh,
                };
                // The farm speculates around *all* observed traffic, not
                // just misses: a hit still signals that nearby grid
                // points are about to be requested (duplicates are
                // deduped at drain time, so this is cheap).
                farm.enqueue_neighbors(store_idx, game, meta, req.bytes, req.dist_thresh);
                if let Some(pred) = predictor.as_mut() {
                    // Pose-predictive speculation on top of the blind
                    // straddle: extrapolate the requesting player over
                    // the speculation window and queue the grid points
                    // they are predicted to reach, ranked by how many
                    // players are converging there. Leaf and near set
                    // are reused from the observed request (the same
                    // approximation blind neighbours make).
                    pred.observe(req.player, req.now_ms, req.pos);
                    if req.dist_thresh > 0.0 {
                        for vsyncs in SPECULATION_HORIZONS_VSYNCS {
                            let horizon = PosePredictor::horizon_ms(vsyncs);
                            let Some(future) = pred.predict(req.player, horizon) else {
                                continue;
                            };
                            let pgrid = grid.snap(future);
                            if pgrid == req.grid {
                                continue; // frame already in flight
                            }
                            let ppos = grid.position(pgrid);
                            let radius = (req.dist_thresh * 4.0).max(grid.spacing());
                            let occupancy = pred.occupancy(ppos, horizon, radius);
                            // Nearer horizons break ties: a frame
                            // needed in 2 vsyncs outranks one needed
                            // in 6 at equal crowding.
                            let score = occupancy + 1.0 / (1.0 + vsyncs as f64);
                            farm.enqueue_predicted(
                                store_idx,
                                game,
                                FrameMeta {
                                    grid: pgrid,
                                    pos: ppos,
                                    leaf: req.leaf,
                                    near_hash: req.near_hash,
                                },
                                req.bytes,
                                score,
                            );
                        }
                    }
                }
                let lookup_started = telemetry.is_enabled().then(std::time::Instant::now);
                let hit = store.lookup(game, &query);
                if let Some(t0) = lookup_started {
                    telemetry.span(
                        track,
                        Stage::Store,
                        if hit { "store-hit" } else { "store-miss" },
                        req.now_ms,
                        t0.elapsed().as_secs_f64() * 1000.0,
                        0,
                    );
                }
                if hit {
                    store_hits += 1;
                    0.0 // pre-rendered: transfer only
                } else {
                    store_misses += 1;
                    let cost = render_cost_ms(req.bytes);
                    inline_gpu_ms += cost;
                    store.insert(game, meta, req.bytes);
                    cost
                }
            } else {
                queue_overflows += 1;
                let cost = render_cost_ms(req.bytes);
                inline_gpu_ms += cost;
                cost
            };
            // Fleet egress budget: a refused full-size frame ships at
            // quarter quality instead of oversubscribing the medium
            // (the epoch controller will degrade the room durably if
            // this keeps happening).
            let bytes = if egress.admit(req.now_ms, req.bytes) {
                req.bytes
            } else {
                egress_refusals += 1;
                let shrunk = (req.bytes / 4).max(1);
                let _ = egress.admit(req.now_ms, shrunk);
                shrunk
            };
            shipped_bytes += bytes;
            let tx = link.transfer_traced(req.now_ms + render_ms, bytes, &telemetry, track, 0);
            coterie_sim::FarResponse {
                bytes,
                completed_at_ms: tx.completed_at_ms,
            }
        };

        while !self.sim.finished() && self.sim.now_ms() < epoch_end_ms {
            // Pin the sink's clock to simulated time so wall-clock spans
            // (render bands, codec work) land at coherent trace offsets.
            self.telemetry.set_time_ms(self.sim.now_ms());
            let Some(event) = self.sim.step_with(&mut fetch) else {
                break;
            };
            ema = if ema == 0.0 {
                event.critical_ms
            } else {
                (1.0 - EMA_ALPHA) * ema + EMA_ALPHA * event.critical_ms
            };
        }

        self.queued_this_epoch = queued;
        self.store_hits += store_hits;
        self.store_misses += store_misses;
        self.queue_overflows += queue_overflows;
        self.egress_refusals += egress_refusals;
        self.inline_gpu_ms += inline_gpu_ms;
        self.shipped_bytes += shipped_bytes;
        self.ema_critical_ms = ema;
    }

    /// Epoch-boundary housekeeping: resets the bounded queue and runs
    /// the hysteresis quality controller. Returns `true` if the room
    /// changed its quality scale this epoch.
    pub fn end_epoch(&mut self) -> bool {
        self.queued_this_epoch = 0;
        if self.ema_critical_ms > FRAME_BUDGET_MS {
            self.over_epochs += 1;
            self.calm_epochs = 0;
            if self.over_epochs >= DEGRADE_AFTER_EPOCHS {
                self.over_epochs = 0;
                let scale = self.sim.quality_scale() * DEGRADE_STEP;
                self.sim.set_quality_scale(scale);
                self.degradations += 1;
                return true;
            }
        } else {
            self.over_epochs = 0;
            if self.sim.quality_scale() < 1.0 {
                self.calm_epochs += 1;
                if self.calm_epochs >= RECOVER_AFTER_EPOCHS {
                    self.calm_epochs = 0;
                    let scale = (self.sim.quality_scale() * RECOVER_STEP).min(1.0);
                    self.sim.set_quality_scale(scale);
                    return true;
                }
            } else {
                self.calm_epochs = 0;
            }
        }
        false
    }

    /// Finalizes the room: runs the session's report assembly and
    /// bundles the fleet-side counters.
    pub fn finish(self) -> RoomReport {
        let final_quality_scale = self.sim.quality_scale();
        let telemetry = self.sim.telemetry_stats();
        RoomReport {
            id: self.id,
            game: self.game,
            session: self.sim.finish(),
            store_hits: self.store_hits,
            store_misses: self.store_misses,
            queue_overflows: self.queue_overflows,
            egress_refusals: self.egress_refusals,
            degradations: self.degradations,
            final_quality_scale,
            inline_gpu_ms: self.inline_gpu_ms,
            shipped_bytes: self.shipped_bytes,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{SharedFrameStore, StoreConfig};
    use coterie_sim::SystemKind;
    use coterie_world::GameId;

    fn room_config(seed: u64) -> SessionConfig {
        let mut cfg = SessionConfig::new(GameId::VikingVillage, SystemKind::coterie(), 2)
            .with_duration_s(5.0)
            .with_trace_seed(seed);
        cfg.size_samples = 4;
        cfg
    }

    #[test]
    fn room_runs_to_completion_through_store() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let mut egress = FleetEgress::new(1000.0);
        let mut farm = PrerenderFarm::new();
        let mut room = Room::new(0, room_config(1), 64);
        let mut guard = 0;
        while !room.finished() {
            let end = (guard + 1) as f64 * 100.0;
            room.tick(end, &store, 0, &mut egress, &mut farm);
            room.end_epoch();
            guard += 1;
            assert!(guard < 10_000, "room failed to make progress");
        }
        let report = room.finish();
        assert!(report.session.aggregate().avg_fps > 30.0);
        assert!(report.store_hits + report.store_misses > 0);
        assert!(report.inline_gpu_ms > 0.0, "misses must cost GPU time");
        assert!(report.shipped_bytes > 0);
    }

    #[test]
    fn second_room_reuses_first_rooms_frames() {
        // Controlled experiment: the *same* room (same world, same
        // trajectories) runs once against a cold store and once against
        // a store warmed by a different room of the same game. The only
        // difference is the cross-session frames, so any hit-ratio gain
        // is pure cross-session reuse.
        let run = |seed: u64, store: &SharedFrameStore| {
            let mut egress = FleetEgress::new(10_000.0);
            let mut farm = PrerenderFarm::new();
            let mut room = Room::new(seed as usize, room_config(seed), 1024);
            let mut epoch = 0;
            while !room.finished() {
                room.tick((epoch + 1) as f64 * 100.0, store, 0, &mut egress, &mut farm);
                farm.drain_into(&[store]);
                room.end_epoch();
                epoch += 1;
            }
            room.finish()
        };
        let cold_store = SharedFrameStore::new(StoreConfig::default());
        let cold = run(2, &cold_store);
        let warm_store = SharedFrameStore::new(StoreConfig::default());
        let _first = run(1, &warm_store);
        let warm = run(2, &warm_store);
        assert!(
            warm.store_hit_ratio() > cold.store_hit_ratio(),
            "cross-session reuse should help a warmed room: cold {:.3} vs warm {:.3}",
            cold.store_hit_ratio(),
            warm.store_hit_ratio()
        );
    }

    #[test]
    fn controller_degrades_after_sustained_violation_and_recovers() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let mut egress = FleetEgress::new(1000.0);
        let mut farm = PrerenderFarm::new();
        let mut room = Room::new(0, room_config(3), 64);
        // Force a violating EMA, then cross the hysteresis threshold.
        room.ema_critical_ms = FRAME_BUDGET_MS * 2.0;
        assert!(
            !room.end_epoch(),
            "first violating epoch must not degrade yet"
        );
        room.ema_critical_ms = FRAME_BUDGET_MS * 2.0;
        assert!(room.end_epoch(), "second consecutive violation degrades");
        assert!(room.quality_scale() < 1.0);
        // Sustained calm recovers quality (eventually back to 1).
        let mut changed = 0;
        for _ in 0..40 {
            room.ema_critical_ms = FRAME_BUDGET_MS * 0.5;
            if room.end_epoch() {
                changed += 1;
            }
        }
        assert!(changed > 0, "calm epochs must recover quality");
        assert!((room.quality_scale() - 1.0).abs() < 1e-12);
        let _ = (&store, &mut egress, &mut farm);
    }

    #[test]
    fn bounded_queue_overflows_bypass_store() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let mut egress = FleetEgress::new(1000.0);
        let mut farm = PrerenderFarm::new();
        // Queue depth 1 and a single never-ending epoch: everything
        // after the first store transaction must bypass.
        let mut room = Room::new(0, room_config(4), 1);
        room.tick(f64::INFINITY, &store, 0, &mut egress, &mut farm);
        let report = room.finish();
        assert_eq!(report.store_hits + report.store_misses, 1);
        assert!(report.queue_overflows > 0);
    }
}
