//! Fleet-wide quality-of-service metrics.
//!
//! The per-session paper metrics (FPS, bandwidth, temperature) scale up
//! to fleet percentiles here: a host operator cares less about the mean
//! room than about the tail — the p99 room is the one whose players
//! notice.

use crate::farm::PrerenderFarm;
use crate::matchmaker::MatchmakingMetrics;
use crate::predict::PredictorKind;
use crate::room::RoomReport;
use crate::shard::ShardMetrics;
use crate::store::StoreStats;
use coterie_telemetry::TelemetrySummary;
use std::fmt;

/// Aggregated fleet outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Rooms hosted.
    pub rooms: usize,
    /// Players per room.
    pub players: usize,
    /// Median per-room average FPS.
    pub fps_p50: f64,
    /// 95th-percentile *tail* FPS: 95 % of rooms run at least this fast
    /// (i.e. the 5th percentile of the FPS distribution).
    pub fps_p95: f64,
    /// 99th-percentile tail FPS (1st percentile of the distribution).
    pub fps_p99: f64,
    /// Frame-store hit ratio across all prefetch traffic.
    pub store_hit_ratio: f64,
    /// Aggregate far-BE egress actually shipped, Mbps.
    pub egress_mbps: f64,
    /// GPU-hours spent rendering (on-demand misses + speculative farm).
    pub prerender_gpu_hours: f64,
    /// Hottest device temperature across rooms, °C.
    pub peak_temperature_c: f64,
    /// Rooms that ended degraded (quality scale below 1).
    pub degraded_rooms: usize,
    /// Full-size prefetches the egress budget refused.
    pub egress_refusals: u64,
    /// Prefetches that overflowed a room's bounded queue.
    pub queue_overflows: u64,
    /// Frames evicted by the store's global LRU.
    pub store_evictions: u64,
    /// FI sync rounds attempted on the lossy fault plane across all
    /// rooms (0 when the fleet ran without a fault scenario).
    pub fi_syncs: u64,
    /// FI retransmissions across all rooms.
    pub fi_retries: u64,
    /// Intervals that fell back to dead reckoning across all rooms.
    pub fi_stale_frames: u64,
    /// Stale intervals at or past the dead-reckoning staleness cap.
    pub fi_cap_violations: u64,
    /// Worst displayed avatar staleness across rooms, ms.
    pub fi_max_staleness_ms: f64,
    /// Worst room's p95 dead-reckoned avatar position error, meters.
    pub desync_p95_m: f64,
    /// Worst room's p99 dead-reckoned avatar position error, meters.
    pub desync_p99_m: f64,
    /// Pose predictor that drove the farm's speculation queue.
    pub predictor: PredictorKind,
    /// Speculatively rendered frames admitted to the store(s).
    pub spec_rendered: u64,
    /// Distinct speculative frames that served at least one hit.
    pub spec_used: u64,
    /// Store hits served by a speculative frame.
    pub spec_hits: u64,
    /// Speculative inserts refused by cost-aware admission.
    pub spec_rejected: u64,
    /// Speculation precision: `spec_used / spec_rendered`.
    pub spec_precision: f64,
    /// Speculation recall: `spec_hits / (spec_hits + misses)`.
    pub spec_recall: f64,
    /// Fleet-wide per-frame budget attribution (stage p50/p95/p99,
    /// over-budget frame count, worst-frame drilldown). `None` when the
    /// fleet ran without a telemetry sink — the default — keeping the
    /// untraced report byte-identical to pre-telemetry builds.
    pub telemetry: Option<TelemetrySummary>,
    /// Sharded-backend counters (forwards, replica traffic, exchange
    /// wire volume). `None` when the fleet ran the local backend — the
    /// default — keeping `--store local` reports byte-identical to
    /// pre-sharding builds.
    pub sharding: Option<ShardMetrics>,
    /// Matchmaking counters (arrivals, admission-queue waits, overflow
    /// rooms). `None` when the fleet ran without churn — the default —
    /// keeping static-roster reports byte-identical to pre-matchmaker
    /// builds.
    pub matchmaking: Option<MatchmakingMetrics>,
}

/// `p`-th percentile (0–100) of `samples` under linear interpolation
/// between closest ranks (delegates to [`coterie_sim::percentile`]).
/// NaN samples sort last rather than panicking; deterministic for
/// identical inputs.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    coterie_sim::percentile(samples, p)
}

impl FleetMetrics {
    /// Assembles the metrics from per-room reports and the fleet's
    /// shared accounting objects.
    ///
    /// An empty `reports` slice (a zero-room fleet — only reachable
    /// through this API, since [`crate::Fleet::new`] rejects it) yields
    /// the documented all-zero sentinel: every field is finite, counts
    /// are 0 and `telemetry` is `None`; nothing divides by zero.
    pub fn from_run(
        reports: &[RoomReport],
        store_stats: StoreStats,
        farm: &PrerenderFarm,
        duration_s: f64,
        predictor: PredictorKind,
    ) -> FleetMetrics {
        let fps: Vec<f64> = reports
            .iter()
            .map(|r| r.session.aggregate().avg_fps)
            .collect();
        let inline_gpu_ms: f64 = reports.iter().map(|r| r.inline_gpu_ms).sum();
        let shipped: u64 = reports.iter().map(|r| r.shipped_bytes).sum();
        FleetMetrics {
            rooms: reports.len(),
            players: reports
                .first()
                .map(|r| r.session.players.len())
                .unwrap_or(0),
            fps_p50: percentile(&fps, 50.0),
            fps_p95: percentile(&fps, 5.0),
            fps_p99: percentile(&fps, 1.0),
            store_hit_ratio: store_stats.hit_ratio(),
            egress_mbps: if duration_s > 0.0 {
                shipped as f64 * 8.0 / 1_000_000.0 / duration_s
            } else {
                0.0
            },
            prerender_gpu_hours: (inline_gpu_ms + farm.gpu_ms()) / 3_600_000.0,
            peak_temperature_c: reports
                .iter()
                .map(|r| r.session.resources.peak_temperature_c())
                .fold(0.0, f64::max),
            degraded_rooms: reports
                .iter()
                .filter(|r| r.final_quality_scale < 1.0)
                .count(),
            egress_refusals: reports.iter().map(|r| r.egress_refusals).sum(),
            queue_overflows: reports.iter().map(|r| r.queue_overflows).sum(),
            store_evictions: store_stats.evictions,
            fi_syncs: reports.iter().map(|r| r.session.fi.syncs).sum(),
            fi_retries: reports.iter().map(|r| r.session.fi.retries).sum(),
            fi_stale_frames: reports.iter().map(|r| r.session.fi.stale_frames).sum(),
            fi_cap_violations: reports.iter().map(|r| r.session.fi.cap_violations).sum(),
            fi_max_staleness_ms: reports
                .iter()
                .map(|r| r.session.fi.max_staleness_ms)
                .fold(0.0, f64::max),
            desync_p95_m: reports
                .iter()
                .map(|r| r.session.fi.desync_p95_m)
                .fold(0.0, f64::max),
            desync_p99_m: reports
                .iter()
                .map(|r| r.session.fi.desync_p99_m)
                .fold(0.0, f64::max),
            predictor,
            spec_rendered: store_stats.spec_rendered,
            spec_used: store_stats.spec_used,
            spec_hits: store_stats.spec_hits,
            spec_rejected: store_stats.spec_rejected,
            spec_precision: store_stats.spec_precision(),
            spec_recall: store_stats.spec_recall(),
            telemetry: None,
            sharding: None,
            matchmaking: None,
        }
    }
}

impl fmt::Display for FleetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fleet: {} rooms x {} players", self.rooms, self.players)?;
        writeln!(
            f,
            "  fps        p50 {:.2}  p95 {:.2}  p99 {:.2}",
            self.fps_p50, self.fps_p95, self.fps_p99
        )?;
        writeln!(
            f,
            "  store      hit ratio {:.4}  evictions {}",
            self.store_hit_ratio, self.store_evictions
        )?;
        writeln!(
            f,
            "  egress     {:.2} Mbps shipped  {} refusals  {} queue overflows",
            self.egress_mbps, self.egress_refusals, self.queue_overflows
        )?;
        writeln!(f, "  prerender  {:.6} GPU-hours", self.prerender_gpu_hours)?;
        writeln!(
            f,
            "  devices    peak {:.2} degC  {} degraded rooms",
            self.peak_temperature_c, self.degraded_rooms
        )?;
        // Only sharded-backend runs print sharding lines, keeping
        // `--store local` reports byte-identical to pre-sharding
        // builds.
        if let Some(s) = &self.sharding {
            writeln!(
                f,
                "  sharding   {} shards  {} forwards  {} replica hits  {} replica inserts",
                s.shards, s.forwards, s.replica_hits, s.replica_inserts
            )?;
            writeln!(
                f,
                "  exchange   {} msgs  {} bytes  {} anti-entropy evictions",
                s.wire_msgs, s.wire_bytes, s.anti_entropy_evictions
            )?;
        }
        // Only predictor-driven runs print speculation lines: the farm
        // tags even blind speculation, so gating on the counters would
        // break `--predictor none` byte identity with predictor-less
        // reports.
        if self.predictor != PredictorKind::None {
            writeln!(
                f,
                "  speculation {}  rendered {}  used {}  hits {}  rejected {}",
                self.predictor,
                self.spec_rendered,
                self.spec_used,
                self.spec_hits,
                self.spec_rejected
            )?;
            writeln!(
                f,
                "  prediction  precision {:.4}  recall {:.4}",
                self.spec_precision, self.spec_recall
            )?;
        }
        // Only churned runs print a matchmaking line, keeping
        // `--churn none` reports byte-identical to pre-matchmaker
        // builds.
        if let Some(m) = &self.matchmaking {
            writeln!(f, "  matchmaking {m}")?;
        }
        // Only lossy runs print FI lines, keeping lossless reports
        // byte-identical to those predating the fault plane.
        if self.fi_syncs > 0 {
            writeln!(
                f,
                "  fi         {} syncs  {} retries  {} stale frames  {} cap violations",
                self.fi_syncs, self.fi_retries, self.fi_stale_frames, self.fi_cap_violations
            )?;
            writeln!(
                f,
                "  desync     max staleness {:.2} ms  p95 {:.4} m  p99 {:.4} m",
                self.fi_max_staleness_ms, self.desync_p95_m, self.desync_p99_m
            )?;
        }
        // Only traced runs print attribution lines, keeping untraced
        // reports byte-identical to pre-telemetry builds.
        if let Some(t) = &self.telemetry {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates_between_ranks() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // Linear interpolation, not rounded nearest-rank: the median of
        // 1..=100 is 50.5 (the old rounding returned 51).
        assert_eq!(percentile(&samples, 50.0), 50.5);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&a, 50.0), percentile(&b, 50.0));
        assert_eq!(percentile(&a, 50.0), 3.0);
    }

    #[test]
    fn percentile_survives_nan_samples() {
        // The old implementation panicked on NaN via partial_cmp.
        let samples = [2.0, f64::NAN, 1.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
    }

    #[test]
    fn zero_room_fleet_yields_finite_sentinel() {
        // A zero-room fleet (reachable only through this API — the
        // Fleet constructor rejects it) must produce the documented
        // all-zero sentinel with no inf/NaN from empty reductions.
        let m = FleetMetrics::from_run(
            &[],
            StoreStats::default(),
            &PrerenderFarm::new(),
            10.0,
            PredictorKind::None,
        );
        assert_eq!(m.rooms, 0);
        assert_eq!(m.players, 0);
        for v in [
            m.fps_p50,
            m.fps_p95,
            m.fps_p99,
            m.store_hit_ratio,
            m.egress_mbps,
            m.prerender_gpu_hours,
            m.peak_temperature_c,
            m.fi_max_staleness_ms,
            m.desync_p95_m,
            m.desync_p99_m,
        ] {
            assert!(v.is_finite());
            assert_eq!(v, 0.0);
        }
        assert!(m.telemetry.is_none());
        // The Display never divides by zero either.
        let shown = format!("{m}");
        assert!(shown.contains("fleet: 0 rooms x 0 players"));
        assert!(!shown.contains("NaN") && !shown.contains("inf"));
    }

    #[test]
    fn zero_duration_fleet_reports_zero_egress() {
        let m = FleetMetrics::from_run(
            &[],
            StoreStats::default(),
            &PrerenderFarm::new(),
            0.0,
            PredictorKind::None,
        );
        assert_eq!(m.egress_mbps, 0.0);
        assert!(m.egress_mbps.is_finite());
    }
}
