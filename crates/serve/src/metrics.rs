//! Fleet-wide quality-of-service metrics.
//!
//! The per-session paper metrics (FPS, bandwidth, temperature) scale up
//! to fleet percentiles here: a host operator cares less about the mean
//! room than about the tail — the p99 room is the one whose players
//! notice.

use crate::farm::PrerenderFarm;
use crate::room::RoomReport;
use crate::store::StoreStats;
use std::fmt;

/// Aggregated fleet outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Rooms hosted.
    pub rooms: usize,
    /// Players per room.
    pub players: usize,
    /// Median per-room average FPS.
    pub fps_p50: f64,
    /// 95th-percentile *tail* FPS: 95 % of rooms run at least this fast
    /// (i.e. the 5th percentile of the FPS distribution).
    pub fps_p95: f64,
    /// 99th-percentile tail FPS (1st percentile of the distribution).
    pub fps_p99: f64,
    /// Frame-store hit ratio across all prefetch traffic.
    pub store_hit_ratio: f64,
    /// Aggregate far-BE egress actually shipped, Mbps.
    pub egress_mbps: f64,
    /// GPU-hours spent rendering (on-demand misses + speculative farm).
    pub prerender_gpu_hours: f64,
    /// Hottest device temperature across rooms, °C.
    pub peak_temperature_c: f64,
    /// Rooms that ended degraded (quality scale below 1).
    pub degraded_rooms: usize,
    /// Full-size prefetches the egress budget refused.
    pub egress_refusals: u64,
    /// Prefetches that overflowed a room's bounded queue.
    pub queue_overflows: u64,
    /// Frames evicted by the store's global LRU.
    pub store_evictions: u64,
}

/// `p`-th percentile (0–100) of `samples` under linear selection
/// (nearest-rank on the sorted array). Deterministic for finite inputs.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

impl FleetMetrics {
    /// Assembles the metrics from per-room reports and the fleet's
    /// shared accounting objects.
    pub fn from_run(
        reports: &[RoomReport],
        store_stats: StoreStats,
        farm: &PrerenderFarm,
        duration_s: f64,
    ) -> FleetMetrics {
        let fps: Vec<f64> = reports
            .iter()
            .map(|r| r.session.aggregate().avg_fps)
            .collect();
        let inline_gpu_ms: f64 = reports.iter().map(|r| r.inline_gpu_ms).sum();
        let shipped: u64 = reports.iter().map(|r| r.shipped_bytes).sum();
        FleetMetrics {
            rooms: reports.len(),
            players: reports
                .first()
                .map(|r| r.session.players.len())
                .unwrap_or(0),
            fps_p50: percentile(&fps, 50.0),
            fps_p95: percentile(&fps, 5.0),
            fps_p99: percentile(&fps, 1.0),
            store_hit_ratio: store_stats.hit_ratio(),
            egress_mbps: if duration_s > 0.0 {
                shipped as f64 * 8.0 / 1_000_000.0 / duration_s
            } else {
                0.0
            },
            prerender_gpu_hours: (inline_gpu_ms + farm.gpu_ms()) / 3_600_000.0,
            peak_temperature_c: reports
                .iter()
                .map(|r| r.session.resources.peak_temperature_c())
                .fold(0.0, f64::max),
            degraded_rooms: reports
                .iter()
                .filter(|r| r.final_quality_scale < 1.0)
                .count(),
            egress_refusals: reports.iter().map(|r| r.egress_refusals).sum(),
            queue_overflows: reports.iter().map(|r| r.queue_overflows).sum(),
            store_evictions: store_stats.evictions,
        }
    }
}

impl fmt::Display for FleetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fleet: {} rooms x {} players", self.rooms, self.players)?;
        writeln!(
            f,
            "  fps        p50 {:.2}  p95 {:.2}  p99 {:.2}",
            self.fps_p50, self.fps_p95, self.fps_p99
        )?;
        writeln!(
            f,
            "  store      hit ratio {:.4}  evictions {}",
            self.store_hit_ratio, self.store_evictions
        )?;
        writeln!(
            f,
            "  egress     {:.2} Mbps shipped  {} refusals  {} queue overflows",
            self.egress_mbps, self.egress_refusals, self.queue_overflows
        )?;
        writeln!(f, "  prerender  {:.6} GPU-hours", self.prerender_gpu_hours)?;
        writeln!(
            f,
            "  devices    peak {:.2} degC  {} degraded rooms",
            self.peak_temperature_c, self.degraded_rooms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 50.0), 51.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&a, 50.0), percentile(&b, 50.0));
        assert_eq!(percentile(&a, 50.0), 3.0);
    }
}
