//! Per-player pose prediction for the pre-render farm.
//!
//! The farm's original heuristic speculated blindly around recent store
//! traffic: every observed request queued its two straddling
//! neighbours. A pose predictor does better — it watches the stream of
//! far-BE requests a room emits (each carries the requesting player's
//! position and session clock) and extrapolates where each player will
//! be over the next few vsyncs, so the farm can pre-render the frames
//! the fleet is *about* to stall on and rank them by how many players
//! are predicted to occupy each leaf region.
//!
//! Two predictors are provided:
//!
//! - **`cv`** — constant velocity: the classic dead-reckoning baseline,
//!   `p(t+h) = p(t) + v·h` with `v` estimated by finite difference over
//!   the last two observations.
//! - **`vpm`** — viewport-pose-model informed (after the VR viewport
//!   pose model of Chen et al., arXiv 2201.04060): linear velocity
//!   persists only briefly (it decays with time constant `TAU_V_S`),
//!   and the direction of motion rotates toward the scene's shared
//!   attention hotspots — VR players do not walk in straight lines
//!   forever, they converge on salient map features. The hotspots are
//!   a *map* property ([`coterie_world::scene_hotspots`]) derived from
//!   the world layout hash, so the fleet reconstructs them without
//!   knowing any per-player movement seed.
//!
//! Everything here is pure arithmetic over observed poses — same
//! observation sequence, same predictions — which is what keeps fleet
//! runs byte-identical per policy.

use crate::store::Admission;
use coterie_world::Vec2;

/// Which pose predictor drives the farm's speculation queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PredictorKind {
    /// No prediction: blind neighbour speculation and pure-LRU store
    /// admission, byte-identical to a fleet without any predictor.
    #[default]
    None,
    /// Constant-velocity dead reckoning.
    Cv,
    /// Viewport-pose-model informed (velocity decay + hotspot pull).
    Vpm,
}

impl PredictorKind {
    /// All policies, in reporting order.
    pub const ALL: [PredictorKind; 3] =
        [PredictorKind::None, PredictorKind::Cv, PredictorKind::Vpm];

    /// Parses a `--predictor` argument value.
    pub fn parse(s: &str) -> Option<PredictorKind> {
        match s {
            "none" => Some(PredictorKind::None),
            "cv" => Some(PredictorKind::Cv),
            "vpm" => Some(PredictorKind::Vpm),
            _ => None,
        }
    }

    /// Canonical flag/report name.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::None => "none",
            PredictorKind::Cv => "cv",
            PredictorKind::Vpm => "vpm",
        }
    }

    /// The store admission policy this predictor implies: prediction
    /// enables cost-aware admission (speculative inserts are scored
    /// against the LRU victim); without prediction there is no reuse
    /// estimate to score with, so admission stays pure LRU.
    pub fn admission(self) -> Admission {
        match self {
            PredictorKind::None => Admission::Lru,
            PredictorKind::Cv | PredictorKind::Vpm => Admission::CostAware,
        }
    }
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Speculation horizons, in vsyncs ahead of the observed pose. The
/// farm queues one predicted frame per horizon, so speculation covers
/// the whole window rather than a single instant.
pub const SPECULATION_HORIZONS_VSYNCS: [u32; 3] = [2, 4, 6];

/// One vsync at the paper's 60 Hz display, ms.
const VSYNC_MS: f64 = 16.7;

/// Velocity persistence time constant of the `vpm` predictor, seconds.
/// Walking VR players hold a velocity for under a second before
/// slowing or turning (viewport-pose-model observation).
const TAU_V_S: f64 = 0.8;

/// Rotation-toward-hotspot time constant of the `vpm` predictor,
/// seconds: how quickly the predicted direction of motion bends toward
/// the nearest shared attention hotspot.
const TAU_ROT_S: f64 = 1.5;

/// The last two observed poses of one player.
#[derive(Debug, Clone, Copy)]
struct PoseTrack {
    prev: Option<(f64, Vec2)>,
    last: (f64, Vec2),
}

/// Online per-player pose predictor for one room.
///
/// Feed it every observed `(player, t_ms, pos)` via
/// [`PosePredictor::observe`]; query futures with
/// [`PosePredictor::predict`] and region crowding with
/// [`PosePredictor::occupancy`]. Purely deterministic.
#[derive(Debug)]
pub struct PosePredictor {
    kind: PredictorKind,
    hotspots: Vec<Vec2>,
    players: Vec<Option<PoseTrack>>,
}

impl PosePredictor {
    /// A predictor of `kind` using the scene's shared hotspots (ignored
    /// by `cv`). Returns `None` for [`PredictorKind::None`] — no
    /// predictor object must exist on the byte-identity baseline path.
    pub fn new(kind: PredictorKind, hotspots: Vec<Vec2>) -> Option<PosePredictor> {
        match kind {
            PredictorKind::None => None,
            _ => Some(PosePredictor {
                kind,
                hotspots,
                players: Vec::new(),
            }),
        }
    }

    /// The policy this predictor implements.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// Records an observed pose. Observations at the same timestamp
    /// overwrite (re-requests within one display interval); older
    /// timestamps than the last are ignored.
    pub fn observe(&mut self, player: usize, t_ms: f64, pos: Vec2) {
        if player >= self.players.len() {
            self.players.resize(player + 1, None);
        }
        match &mut self.players[player] {
            Some(track) => {
                if t_ms > track.last.0 {
                    track.prev = Some(track.last);
                    track.last = (t_ms, pos);
                } else if t_ms == track.last.0 {
                    track.last = (t_ms, pos);
                }
            }
            slot @ None => {
                *slot = Some(PoseTrack {
                    prev: None,
                    last: (t_ms, pos),
                });
            }
        }
    }

    /// Finite-difference velocity estimate (m/s); zero until a player
    /// has two observations at distinct times.
    fn velocity(&self, track: &PoseTrack) -> Vec2 {
        let Some((t0, p0)) = track.prev else {
            return Vec2::ZERO;
        };
        let dt_s = (track.last.0 - t0) / 1000.0;
        if dt_s <= 1e-9 {
            Vec2::ZERO
        } else {
            (track.last.1 - p0) / dt_s
        }
    }

    /// Predicted position of `player` `horizon_ms` after their last
    /// observation; `None` before any observation.
    pub fn predict(&self, player: usize, horizon_ms: f64) -> Option<Vec2> {
        let track = self.players.get(player).copied().flatten()?;
        let h_s = horizon_ms / 1000.0;
        let v = self.velocity(&track);
        let p0 = track.last.1;
        Some(match self.kind {
            PredictorKind::None => p0,
            PredictorKind::Cv => p0 + v * h_s,
            PredictorKind::Vpm => {
                let speed = v.length();
                if speed < 1e-9 {
                    p0
                } else {
                    // Displacement under exponentially decaying speed:
                    // ∫ |v|·e^(−t/τ) dt = |v|·τ·(1 − e^(−h/τ)).
                    let travel = speed * TAU_V_S * (1.0 - (-h_s / TAU_V_S).exp());
                    // Direction bends from the current heading toward
                    // the nearest hotspot as the horizon grows.
                    let dir = v / speed;
                    let blend = 1.0 - (-h_s / TAU_ROT_S).exp();
                    let pull = self
                        .hotspots
                        .iter()
                        .min_by(|a, b| {
                            a.distance(p0)
                                .partial_cmp(&b.distance(p0))
                                .expect("finite distances")
                        })
                        .map(|h| {
                            let to_h = *h - p0;
                            if to_h.length() < 1e-9 {
                                dir
                            } else {
                                to_h / to_h.length()
                            }
                        })
                        .unwrap_or(dir);
                    let mixed = dir * (1.0 - blend) + pull * blend;
                    let mixed = if mixed.length() < 1e-9 {
                        pull
                    } else {
                        mixed / mixed.length()
                    };
                    p0 + mixed * travel
                }
            }
        })
    }

    /// Predicted occupancy of the region around `pos` at `horizon_ms`:
    /// each tracked player contributes `1 − d/radius` (clamped at 0)
    /// where `d` is the distance from their predicted position. This is
    /// the farm's ranking signal — leaf regions several players are
    /// converging on outrank lone-wolf territory.
    pub fn occupancy(&self, pos: Vec2, horizon_ms: f64, radius: f64) -> f64 {
        if radius <= 0.0 {
            return 0.0;
        }
        (0..self.players.len())
            .filter_map(|p| self.predict(p, horizon_ms))
            .map(|pred| (1.0 - pred.distance(pos) / radius).max(0.0))
            .sum()
    }

    /// The horizon of vsync step `k` of the speculation window, ms.
    pub fn horizon_ms(vsyncs: u32) -> f64 {
        vsyncs as f64 * VSYNC_MS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv() -> PosePredictor {
        PosePredictor::new(PredictorKind::Cv, vec![]).expect("cv builds")
    }

    #[test]
    fn kind_parsing_round_trips() {
        for kind in PredictorKind::ALL {
            assert_eq!(PredictorKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(PredictorKind::parse("bogus"), None);
    }

    #[test]
    fn none_kind_builds_no_predictor() {
        assert!(PosePredictor::new(PredictorKind::None, vec![]).is_none());
        assert_eq!(PredictorKind::None.admission(), Admission::Lru);
        assert_eq!(PredictorKind::Vpm.admission(), Admission::CostAware);
    }

    #[test]
    fn cv_extrapolates_linearly() {
        let mut p = cv();
        p.observe(0, 0.0, Vec2::new(0.0, 0.0));
        p.observe(0, 100.0, Vec2::new(1.0, 0.0)); // 10 m/s along x
        let pred = p.predict(0, 200.0).expect("observed");
        assert!((pred.x - 3.0).abs() < 1e-9, "x = {}", pred.x);
        assert!(pred.z.abs() < 1e-9);
    }

    #[test]
    fn single_observation_predicts_standstill() {
        let mut p = cv();
        p.observe(3, 50.0, Vec2::new(2.0, 2.0));
        let pred = p.predict(3, 500.0).expect("observed");
        assert_eq!(pred, Vec2::new(2.0, 2.0));
        assert!(p.predict(0, 100.0).is_none(), "untracked players: None");
    }

    #[test]
    fn vpm_bends_toward_hotspot_and_decays() {
        let hotspot = Vec2::new(0.0, 10.0);
        let mut vpm = PosePredictor::new(PredictorKind::Vpm, vec![hotspot]).expect("vpm");
        let mut straight = cv();
        for p in [&mut vpm, &mut straight] {
            p.observe(0, 0.0, Vec2::new(0.0, 0.0));
            p.observe(0, 100.0, Vec2::new(1.0, 0.0)); // heading +x, 10 m/s
        }
        let h = 500.0;
        let v = vpm.predict(0, h).expect("observed");
        let c = straight.predict(0, h).expect("observed");
        // Decay: vpm travels less far than constant velocity.
        let origin = Vec2::new(1.0, 0.0);
        assert!(v.distance(origin) < c.distance(origin));
        // Pull: vpm drifts toward the hotspot (positive z), cv does not.
        assert!(v.z > 0.05, "vpm must bend toward the hotspot: {v:?}");
        assert!(c.z.abs() < 1e-9);
    }

    #[test]
    fn occupancy_counts_converging_players() {
        let mut p = cv();
        // Two players heading for the same spot, one heading away.
        p.observe(0, 0.0, Vec2::new(0.0, 0.0));
        p.observe(0, 100.0, Vec2::new(1.0, 0.0));
        p.observe(1, 0.0, Vec2::new(10.0, 0.0));
        p.observe(1, 100.0, Vec2::new(9.0, 0.0));
        p.observe(2, 0.0, Vec2::new(0.0, 50.0));
        p.observe(2, 100.0, Vec2::new(0.0, 60.0));
        let meeting = Vec2::new(5.0, 0.0);
        let elsewhere = Vec2::new(0.0, 80.0);
        let h = 400.0;
        assert!(p.occupancy(meeting, h, 5.0) > p.occupancy(elsewhere, h, 5.0));
        assert_eq!(p.occupancy(meeting, h, 0.0), 0.0);
    }

    #[test]
    fn predictions_are_deterministic() {
        let build = || {
            let mut p = PosePredictor::new(PredictorKind::Vpm, vec![Vec2::new(3.0, 4.0)]).unwrap();
            for i in 0..50u32 {
                let t = i as f64 * 16.7;
                p.observe(
                    (i % 3) as usize,
                    t,
                    Vec2::new((i as f64 * 0.37).sin(), t * 0.001),
                );
            }
            (0..3).map(|pl| p.predict(pl, 100.2)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
