//! The fleet runtime: many rooms, one store, one egress budget.
//!
//! [`Fleet::run`] drives every room in lockstep *epochs* of simulated
//! time. Within an epoch rooms are visited in id order and each advances
//! its session to the epoch boundary; at the boundary the pre-render
//! farm drains its speculative batch and every room runs its quality
//! controller. Serializing the store transactions this way makes the
//! whole run a pure function of the [`FleetConfig`] — the same seed
//! always produces a byte-identical [`FleetMetrics`] report — while
//! room *construction* (world building and the render measurement pass,
//! by far the expensive part) still fans out across cores.
//!
//! Multi-worker fleets ([`FleetConfig::shards`] > 1) split rooms
//! round-robin across simulated worker processes. With the
//! [`StoreBackend::Sharded`] backend each worker holds one partition of
//! the frame store plus a hot-replica cache, and workers exchange
//! advertisement batches over the wire codec at every epoch boundary;
//! with [`StoreBackend::Local`] the workers stay fully isolated — the
//! baseline the sharded design is measured against. Because the epoch
//! loop still serializes store transactions in room-id order, a sharded
//! run is as deterministic as a single-process one.

use crate::churn::ChurnScenario;
use crate::farm::PrerenderFarm;
use crate::matchmaker::{self, MatchmakingMetrics, PlacementPolicy};
use crate::metrics::FleetMetrics;
use crate::predict::PredictorKind;
use crate::room::{Room, RoomReport};
use crate::shard::{ShardFabric, StoreBackend};
use crate::store::{FrameStore, LocalStore, StoreConfig, StoreStats};
use coterie_net::{FleetEgress, NetScenario};
use coterie_parallel::par_map_ws;
use coterie_sim::{SessionConfig, SystemKind};
use coterie_telemetry::{
    player_tid, room_pid, room_tid, shard_pid, Stage, TelemetryConfig, TelemetrySink, TrackId,
    FARM_TID, FLEET_PID,
};
use coterie_world::GameId;
use std::sync::Arc;

/// Fleet composition and resource provisioning.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of concurrent rooms.
    pub rooms: usize,
    /// Players per room.
    pub players: usize,
    /// Games hosted; rooms cycle through this list, and only rooms of
    /// the same game share frames.
    pub games: Vec<GameId>,
    /// Simulated session length per room, seconds.
    pub duration_s: f64,
    /// Master seed. Each game's world derives from this; each room gets
    /// a distinct trajectory seed on top.
    pub seed: u64,
    /// `true` = one store shared by all rooms (the tentpole design);
    /// `false` = one isolated store per room with an equal slice of the
    /// byte budget (the baseline the shared design is compared to).
    /// Ignored when [`FleetConfig::shards`] > 1 — worker count then
    /// decides the store split.
    pub shared_store: bool,
    /// Total frame-store byte budget (split evenly in isolated mode).
    pub store_bytes: u64,
    /// Store stripe count (intra-process lock sharding).
    pub store_shards: usize,
    /// Worker-process count. `1` (the default) is the single-process
    /// fleet and reproduces pre-sharding reports byte for byte. With
    /// more workers, rooms are assigned round-robin (`room % shards`)
    /// and the store splits per [`FleetConfig::backend`].
    pub shards: usize,
    /// Frame-store backend wiring across workers. [`StoreBackend::Local`]
    /// keeps each worker's store private (the isolated baseline);
    /// [`StoreBackend::Sharded`] partitions one global store across the
    /// workers behind the consistent-hash ring.
    pub backend: StoreBackend,
    /// Provisioned fleet downlink egress, Mbps.
    pub egress_mbps: f64,
    /// Epoch length, simulated ms.
    pub epoch_ms: f64,
    /// Bounded per-room store-transaction queue (per epoch).
    pub queue_depth: usize,
    /// Measurement-pass samples per player (smaller = faster room
    /// construction, coarser size model).
    pub size_samples: usize,
    /// FI network fault scenario applied to every room.
    /// [`NetScenario::None`] (the default) keeps the lossless sync model
    /// and reproduces pre-fault-plane reports byte for byte.
    pub net: NetScenario,
    /// Pose predictor driving the pre-render farm's speculation queue.
    /// [`PredictorKind::None`] (the default) keeps blind neighbour
    /// speculation and pure-LRU admission, reproducing predictor-less
    /// reports byte for byte.
    pub predictor: PredictorKind,
    /// Churn scenario: who arrives when, and for how long. With
    /// [`ChurnScenario::None`] (the default) the fleet skips the
    /// matchmaker entirely — every room gets the static full-duration
    /// roster, reproducing pre-churn reports byte for byte. Any other
    /// scenario hands a seeded arrival list to the matchmaker, whose
    /// [`crate::matchmaker::MatchPlan`] then decides room count, roster
    /// sizes and presence windows (so [`FleetConfig::rooms`] becomes
    /// the *provisioned* count — overflow can exceed it and unjoined
    /// rooms are dropped).
    pub churn: ChurnScenario,
    /// Placement policy for churned arrivals. Ignored (and
    /// byte-identity preserved) when `churn` is
    /// [`ChurnScenario::None`].
    pub policy: PlacementPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            rooms: 8,
            players: 2,
            games: vec![GameId::VikingVillage],
            duration_s: 10.0,
            seed: 7,
            shared_store: true,
            store_bytes: 256 * 1024 * 1024,
            store_shards: 16,
            shards: 1,
            backend: StoreBackend::Local,
            egress_mbps: 2000.0,
            epoch_ms: 100.0,
            queue_depth: 32,
            size_samples: 8,
            net: NetScenario::None,
            predictor: PredictorKind::None,
            churn: ChurnScenario::None,
            policy: PlacementPolicy::FirstFit,
        }
    }
}

/// Outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Aggregated fleet metrics.
    pub metrics: FleetMetrics,
    /// Per-room detail, in room-id order.
    pub rooms: Vec<RoomReport>,
    /// Final store counters (summed across stores in isolated mode,
    /// fabric-wide in sharded mode).
    pub store_stats: StoreStats,
}

// The pre-render farm's epoch-drain spans land on the checked
// `coterie_telemetry::FARM_TID` lane (under [`FLEET_PID`]), clearly
// apart from the per-room tick lanes.

/// Simulated per-worker clock skew, ms: worker `w` records its spans
/// `w * 2.5` ms late, standing in for the boot-time offset real worker
/// processes would have. The end-of-run trace merge rebases it away —
/// exercising the same path a cross-process trace merge needs.
const WORKER_SKEW_MS: f64 = 2.5;

/// The fleet runtime.
pub struct Fleet {
    config: FleetConfig,
    rooms: Vec<Room>,
    stores: Vec<Arc<dyn FrameStore>>,
    fabric: Option<Arc<ShardFabric>>,
    egress: FleetEgress,
    farm: PrerenderFarm,
    telemetry: TelemetrySink,
    /// One sink per worker; index 0 aliases `telemetry`, workers > 0
    /// record on skewed clocks and are absorbed (rebased) at the end of
    /// the run. Length 1 when `shards` <= 1.
    worker_sinks: Vec<TelemetrySink>,
    /// The matchmaker's counters, `Some` only under churn.
    matchmaking: Option<MatchmakingMetrics>,
}

/// A room's presence windows — `(join_ms, leave_ms)` per slot — when
/// the roster comes from the matchmaker; `None` for static fleets.
type Presence = Option<Vec<(f64, f64)>>;

impl Fleet {
    /// Builds every room (in parallel — construction dominates) and
    /// provisions the store(s) and egress budget.
    ///
    /// # Panics
    ///
    /// Panics if the config has no rooms, no games, a non-positive
    /// duration or a zero store budget.
    pub fn new(config: FleetConfig) -> Self {
        Fleet::new_with_telemetry(config, TelemetrySink::disabled())
    }

    /// [`Fleet::new`] with an observation-only telemetry sink shared by
    /// every room: each displayed frame is attributed to its pipeline
    /// stages, the epoch loop and pre-render farm get their own spans,
    /// and [`FleetMetrics::telemetry`] carries the fleet-wide summary.
    /// With a disabled sink this is [`Fleet::new`] exactly — the run and
    /// its report are byte-identical.
    ///
    /// In a multi-worker fleet each worker past the first records onto
    /// its own sink with a simulated clock skew; `run` merges them back
    /// onto the primary sink's epoch so one Chrome trace shows the whole
    /// fleet with per-worker process lanes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Fleet::new`], or if
    /// `shards` exceeds `u16::MAX` (the wire protocol's shard-id width).
    pub fn new_with_telemetry(config: FleetConfig, telemetry: TelemetrySink) -> Self {
        assert!(config.rooms > 0, "fleet needs at least one room");
        assert!(!config.games.is_empty(), "fleet needs at least one game");
        assert!(config.duration_s > 0.0, "duration must be positive");
        let shards = config.shards.max(1);
        assert!(shards <= u16::MAX as usize, "shard ids are u16 on the wire");
        // Worker sinks: the primary sink is worker 0; further workers
        // get their own recording sinks on deliberately skewed clocks so
        // the end-of-run merge has real rebasing to do. A single-worker
        // or untraced fleet keeps exactly one (shared) sink — the
        // legacy path, byte for byte.
        let worker_sinks: Vec<TelemetrySink> = if shards > 1 && telemetry.is_enabled() {
            (0..shards)
                .map(|w| {
                    if w == 0 {
                        telemetry.clone()
                    } else {
                        TelemetrySink::recording(TelemetryConfig::default())
                            .with_record_offset(w as f64 * WORKER_SKEW_MS)
                    }
                })
                .collect()
        } else {
            vec![telemetry.clone(); shards]
        };
        // Matchmaking: under churn the matchmaker's plan decides the
        // room list — games, roster sizes and presence windows. Without
        // churn the plan path is *skipped entirely* (not run and
        // ignored), so static fleets stay byte-identical to
        // pre-matchmaker builds.
        let match_plan = (config.churn != ChurnScenario::None)
            .then(|| matchmaker::plan(&config, config.churn, config.policy));
        let room_params: Vec<(GameId, usize, Presence)> = match &match_plan {
            Some(plan) => {
                assert!(!plan.rooms.is_empty(), "churn produced no joined rooms");
                plan.rooms
                    .iter()
                    .map(|rp| (rp.game, rp.windows.len(), Some(rp.windows.clone())))
                    .collect()
            }
            None => (0..config.rooms)
                .map(|room_id| {
                    (
                        config.games[room_id % config.games.len()],
                        config.players,
                        None,
                    )
                })
                .collect(),
        };
        let n_rooms = room_params.len();
        let session_configs: Vec<(SessionConfig, Presence)> = room_params
            .into_iter()
            .enumerate()
            .map(|(room_id, (game, players, windows))| {
                let mut cfg = SessionConfig::new(game, SystemKind::coterie(), players)
                    .with_duration_s(config.duration_s)
                    // One world per (game, master seed)…
                    .with_seed(config.seed)
                    // …distinct movement per room.
                    .with_trace_seed(
                        config
                            .seed
                            .wrapping_add((room_id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    )
                    // The fault scenario applies fleet-wide; per-room
                    // channels still diverge via the trace seed.
                    .with_net(config.net);
                cfg.size_samples = config.size_samples.max(1);
                (cfg, windows)
            })
            .collect();
        // Work-stealing construction: room build cost varies a lot by
        // game (scene complexity, trace length), the exact non-uniform
        // workload par_map_ws exists for. Results come back in input
        // order, so parallelism cannot perturb room identity.
        let rooms: Vec<Room> = {
            let queue_depth = config.queue_depth;
            let sinks = worker_sinks.clone();
            let indexed: Vec<(usize, SessionConfig, Presence)> = session_configs
                .into_iter()
                .enumerate()
                .map(|(id, (cfg, windows))| (id, cfg, windows))
                .collect();
            let predictor = config.predictor;
            par_map_ws(&indexed, |(id, cfg, windows)| {
                let room = Room::new_with_telemetry(
                    *id,
                    *cfg,
                    queue_depth,
                    sinks[*id % sinks.len()].clone(),
                )
                .with_predictor(predictor);
                match windows {
                    Some(w) => room.with_presence(w),
                    None => room,
                }
            })
        };
        // Session-lifecycle telemetry: every planned join/leave gets a
        // zero-width span on the room's player lane, so a Chrome trace
        // of a churned fleet shows the roster turning over.
        if telemetry.is_enabled() {
            if let Some(plan) = &match_plan {
                for (i, rp) in plan.rooms.iter().enumerate() {
                    for (slot, &(join_ms, leave_ms)) in rp.windows.iter().enumerate() {
                        let track = TrackId {
                            pid: room_pid(i as u32),
                            tid: player_tid(slot as u32),
                        };
                        telemetry.span(
                            track,
                            Stage::Tick,
                            "player-join",
                            join_ms,
                            0.0,
                            slot as u64,
                        );
                        telemetry.span(
                            track,
                            Stage::Tick,
                            "player-leave",
                            leave_ms,
                            0.0,
                            slot as u64,
                        );
                    }
                }
            }
        }
        let store_config = |capacity_bytes: u64| StoreConfig {
            capacity_bytes,
            shards: config.store_shards,
            admission: config.predictor.admission(),
        };
        let (stores, fabric): (Vec<Arc<dyn FrameStore>>, Option<Arc<ShardFabric>>) =
            if shards > 1 && config.backend == StoreBackend::Sharded {
                let fabric = ShardFabric::new(shards, store_config(config.store_bytes));
                let stores = (0..shards)
                    .map(|w| Arc::new(fabric.store_view(w)) as Arc<dyn FrameStore>)
                    .collect();
                (stores, Some(fabric))
            } else if shards > 1 {
                // Isolated workers: the baseline the sharded backend is
                // compared to — each worker gets an equal slice of the
                // budget and never sees another worker's frames.
                let slice = (config.store_bytes / shards as u64).max(1);
                let stores = (0..shards)
                    .map(|_| Arc::new(LocalStore::new(store_config(slice))) as Arc<dyn FrameStore>)
                    .collect();
                (stores, None)
            } else if config.shared_store {
                (
                    vec![Arc::new(LocalStore::new(store_config(config.store_bytes)))
                        as Arc<dyn FrameStore>],
                    None,
                )
            } else {
                let slice = (config.store_bytes / n_rooms as u64).max(1);
                let stores = (0..n_rooms)
                    .map(|_| Arc::new(LocalStore::new(store_config(slice))) as Arc<dyn FrameStore>)
                    .collect();
                (stores, None)
            };
        let egress = FleetEgress::new(config.egress_mbps);
        Fleet {
            config,
            rooms,
            stores,
            fabric,
            egress,
            farm: PrerenderFarm::new(),
            telemetry,
            worker_sinks,
            matchmaking: match_plan.map(|p| p.metrics),
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The fleet's telemetry sink (disabled unless the fleet was built
    /// with [`Fleet::new_with_telemetry`]).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Runs every room to completion and aggregates the report.
    pub fn run(mut self) -> FleetReport {
        let epoch_ms = self.config.epoch_ms.max(1.0);
        let shards = self.worker_sinks.len();
        let mut epoch = 0u64;
        while self.rooms.iter().any(|r| !r.finished()) {
            let start = epoch as f64 * epoch_ms;
            let end = (epoch + 1) as f64 * epoch_ms;
            for (i, room) in self.rooms.iter_mut().enumerate() {
                let store_idx = if self.stores.len() == 1 {
                    0
                } else if shards > 1 {
                    // Round-robin room → worker placement.
                    i % self.stores.len()
                } else {
                    // Legacy isolated mode: one store per room.
                    i
                };
                let tick_started = self.telemetry.is_enabled().then(std::time::Instant::now);
                room.tick(
                    end,
                    self.stores[store_idx].as_ref(),
                    store_idx,
                    &mut self.egress,
                    &mut self.farm,
                );
                if let Some(t0) = tick_started {
                    // Multi-worker fleets put each room's tick lane in
                    // its worker's process group, on the worker's
                    // (skewed) sink; single-worker fleets keep the
                    // legacy fleet-pid lane.
                    let (sink, pid) = if shards > 1 {
                        let w = i % shards;
                        (&self.worker_sinks[w], shard_pid(w as u32))
                    } else {
                        (&self.telemetry, FLEET_PID)
                    };
                    sink.span(
                        TrackId {
                            pid,
                            tid: room_tid(i as u32),
                        },
                        Stage::Tick,
                        "room-tick",
                        start,
                        t0.elapsed().as_secs_f64() * 1000.0,
                        epoch,
                    );
                }
            }
            // Epoch boundary: speculative renders land, controllers run.
            let store_refs: Vec<&dyn FrameStore> = self.stores.iter().map(|s| s.as_ref()).collect();
            let drain_started = self.telemetry.is_enabled().then(std::time::Instant::now);
            self.farm.drain_into(&store_refs);
            if let Some(t0) = drain_started {
                self.telemetry.span(
                    TrackId {
                        pid: FLEET_PID,
                        tid: FARM_TID,
                    },
                    Stage::Farm,
                    "farm-drain",
                    end,
                    t0.elapsed().as_secs_f64() * 1000.0,
                    epoch,
                );
            }
            // Sharded backends run the inter-worker exchange at every
            // epoch boundary: advertisement batches go out over the wire
            // codec and the anti-entropy pass squares eviction state.
            if let Some(fabric) = &self.fabric {
                let exchange_started = self.telemetry.is_enabled().then(std::time::Instant::now);
                fabric.exchange();
                if let Some(t0) = exchange_started {
                    self.telemetry.span(
                        TrackId {
                            pid: FLEET_PID,
                            tid: FARM_TID,
                        },
                        Stage::Farm,
                        "shard-exchange",
                        end,
                        t0.elapsed().as_secs_f64() * 1000.0,
                        epoch,
                    );
                }
            }
            if self.telemetry.is_enabled() {
                // Store-occupancy gauge, one sample per epoch: the
                // Chrome-trace "C" track showing fill and eviction churn.
                // Sharded views all report the fabric-wide total, so one
                // view suffices (summing views would multiply-count).
                let occupancy: u64 = if self.fabric.is_some() {
                    self.stores[0].bytes()
                } else {
                    self.stores.iter().map(|s| s.bytes()).sum()
                };
                self.telemetry.counter(
                    TrackId {
                        pid: FLEET_PID,
                        tid: FARM_TID,
                    },
                    "store-bytes",
                    end,
                    occupancy as f64,
                );
            }
            for room in &mut self.rooms {
                room.end_epoch();
            }
            epoch += 1;
        }
        let reports: Vec<RoomReport> = self.rooms.into_iter().map(Room::finish).collect();
        let store_stats = if let Some(fabric) = &self.fabric {
            fabric.stats()
        } else {
            self.stores
                .iter()
                .map(|s| s.stats())
                .fold(StoreStats::default(), StoreStats::merged)
        };
        let mut metrics = FleetMetrics::from_run(
            &reports,
            store_stats,
            &self.farm,
            self.config.duration_s,
            self.config.predictor,
        );
        // Cross-worker trace merge: rebase every worker sink's records
        // onto the primary sink's epoch (undoing the simulated boot
        // skew) so one trace and one summary span the whole fleet.
        // Worker 0 aliases the primary sink and is skipped.
        for sink in self.worker_sinks.iter().skip(1) {
            self.telemetry.absorb_rebased(sink, sink.record_offset_ms());
        }
        // Budget-attribution summary — `None` when the sink is disabled,
        // keeping the default report (and its Display) bit-identical.
        metrics.telemetry = self.telemetry.summary();
        metrics.sharding = self.fabric.as_ref().map(|f| f.metrics());
        metrics.matchmaking = self.matchmaking;
        FleetReport {
            metrics,
            rooms: reports,
            store_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(rooms: usize, shared: bool) -> FleetConfig {
        FleetConfig {
            rooms,
            players: 2,
            duration_s: 4.0,
            shared_store: shared,
            size_samples: 4,
            ..FleetConfig::default()
        }
    }

    fn tiny_workers(rooms: usize, shards: usize, backend: StoreBackend) -> FleetConfig {
        FleetConfig {
            shards,
            backend,
            ..tiny(rooms, true)
        }
    }

    #[test]
    fn fleet_runs_all_rooms_to_completion() {
        let report = Fleet::new(tiny(3, true)).run();
        assert_eq!(report.rooms.len(), 3);
        assert_eq!(report.metrics.rooms, 3);
        assert_eq!(report.metrics.players, 2);
        assert!(
            report.metrics.fps_p50 > 30.0,
            "p50 {}",
            report.metrics.fps_p50
        );
        assert!(report.metrics.fps_p99 <= report.metrics.fps_p50);
        assert!(report.metrics.egress_mbps > 0.0);
        assert!(report.metrics.prerender_gpu_hours > 0.0);
        assert!(report.metrics.peak_temperature_c > 0.0);
        assert!(report.metrics.sharding.is_none(), "local backend is quiet");
        for (i, room) in report.rooms.iter().enumerate() {
            assert_eq!(room.id, i);
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let a = Fleet::new(tiny(3, true)).run();
        let b = Fleet::new(tiny(3, true)).run();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.store_stats, b.store_stats);
        assert_eq!(format!("{}", a.metrics), format!("{}", b.metrics));
    }

    #[test]
    fn churned_fleet_runs_are_deterministic() {
        let cfg = FleetConfig {
            churn: ChurnScenario::Steady,
            ..tiny(2, true)
        };
        let a = Fleet::new(cfg.clone()).run();
        let b = Fleet::new(cfg).run();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.store_stats, b.store_stats);
        assert_eq!(format!("{}", a.metrics), format!("{}", b.metrics));
        let mm = a
            .metrics
            .matchmaking
            .expect("churned runs report matchmaking");
        assert!(mm.arrivals > 0);
        assert!(
            format!("{}", a.metrics).contains("matchmaking"),
            "churned Display carries the matchmaking line"
        );
    }

    #[test]
    fn churn_none_is_byte_identical_to_static_fleet() {
        // `--churn none` must skip the plan path entirely: the report
        // (struct and Display) matches a config predating the
        // matchmaker, whatever the policy flag says.
        let static_run = Fleet::new(tiny(2, true)).run();
        let flagged = Fleet::new(FleetConfig {
            churn: ChurnScenario::None,
            policy: PlacementPolicy::Affinity,
            ..tiny(2, true)
        })
        .run();
        assert_eq!(static_run.metrics, flagged.metrics);
        assert_eq!(
            format!("{}", static_run.metrics),
            format!("{}", flagged.metrics)
        );
        assert!(static_run.metrics.matchmaking.is_none());
        assert!(!format!("{}", static_run.metrics).contains("matchmaking"));
    }

    #[test]
    fn affinity_policy_runs_under_flash_crowd() {
        let cfg = |policy| FleetConfig {
            churn: ChurnScenario::Flash,
            policy,
            ..tiny(2, true)
        };
        let ff = Fleet::new(cfg(PlacementPolicy::FirstFit)).run();
        let af = Fleet::new(cfg(PlacementPolicy::Affinity)).run();
        for report in [&ff, &af] {
            let mm = report.metrics.matchmaking.unwrap();
            assert!(mm.arrivals > 0);
            assert_eq!(mm.placed, mm.arrivals);
            assert!(report.metrics.fps_p50 > 30.0, "churned rooms still render");
        }
        assert_eq!(
            ff.metrics.matchmaking.unwrap().arrivals,
            af.metrics.matchmaking.unwrap().arrivals,
            "policies place the same arrival stream"
        );
    }

    #[test]
    fn shared_store_beats_isolated_stores() {
        let shared = Fleet::new(tiny(4, true)).run();
        let isolated = Fleet::new(tiny(4, false)).run();
        assert!(
            shared.metrics.store_hit_ratio > isolated.metrics.store_hit_ratio,
            "shared {:.4} vs isolated {:.4}",
            shared.metrics.store_hit_ratio,
            isolated.metrics.store_hit_ratio
        );
        assert!(
            shared.metrics.prerender_gpu_hours < isolated.metrics.prerender_gpu_hours,
            "shared {:.6} vs isolated {:.6} GPU-hours",
            shared.metrics.prerender_gpu_hours,
            isolated.metrics.prerender_gpu_hours
        );
    }

    #[test]
    fn sharded_fleet_runs_are_deterministic() {
        let a = Fleet::new(tiny_workers(4, 2, StoreBackend::Sharded)).run();
        let b = Fleet::new(tiny_workers(4, 2, StoreBackend::Sharded)).run();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.store_stats, b.store_stats);
        assert_eq!(format!("{}", a.metrics), format!("{}", b.metrics));
        let s = a.metrics.sharding.expect("sharded runs report sharding");
        assert_eq!(s.shards, 2);
        assert!(s.wire_msgs > 0, "exchange must move messages");
        let shown = format!("{}", a.metrics);
        assert!(shown.contains("\n  sharding "), "report: {shown}");
        assert!(shown.contains("\n  exchange "), "report: {shown}");
    }

    #[test]
    fn sharded_fleet_beats_isolated_workers() {
        // The scaling claim: four workers with the sharded store see
        // each other's frames (owner routing + replicas) and must beat
        // four fully isolated worker processes on hit ratio and
        // pre-render GPU spend.
        let sharded = Fleet::new(tiny_workers(4, 4, StoreBackend::Sharded)).run();
        let isolated = Fleet::new(tiny_workers(4, 4, StoreBackend::Local)).run();
        assert!(isolated.metrics.sharding.is_none());
        assert!(
            sharded.metrics.store_hit_ratio > isolated.metrics.store_hit_ratio,
            "sharded {:.4} vs isolated {:.4}",
            sharded.metrics.store_hit_ratio,
            isolated.metrics.store_hit_ratio
        );
        assert!(
            sharded.metrics.prerender_gpu_hours < isolated.metrics.prerender_gpu_hours,
            "sharded {:.6} vs isolated {:.6} GPU-hours",
            sharded.metrics.prerender_gpu_hours,
            isolated.metrics.prerender_gpu_hours
        );
    }

    #[test]
    fn lossy_fleet_reports_fi_recovery() {
        let config = FleetConfig {
            net: NetScenario::BurstLoss,
            ..tiny(2, true)
        };
        let report = Fleet::new(config).run();
        assert!(report.metrics.fi_syncs > 0);
        assert!(report.metrics.fi_retries > 0, "burst loss forces retries");
        assert!(report.metrics.fi_stale_frames > 0);
        let shown = format!("{}", report.metrics);
        assert!(shown.contains("\n  fi "), "lossy reports print FI lines");
        assert!(shown.contains("\n  desync "));
    }

    #[test]
    fn lossless_fleet_omits_fi_lines() {
        let report = Fleet::new(tiny(2, true)).run();
        assert_eq!(report.metrics.fi_syncs, 0);
        let shown = format!("{}", report.metrics);
        assert!(
            !shown.contains("\n  fi "),
            "lossless reports stay as before"
        );
    }

    #[test]
    fn telemetry_is_observation_only() {
        // The golden determinism guard: a `--net none` fleet report must
        // be byte-identical with telemetry enabled vs disabled once the
        // (None vs Some) telemetry fields themselves are stripped.
        use coterie_telemetry::{TelemetryConfig, TelemetrySink};
        let plain = Fleet::new(tiny(2, true)).run();
        let sink = TelemetrySink::recording(TelemetryConfig::default());
        let mut traced = Fleet::new_with_telemetry(tiny(2, true), sink.clone()).run();

        let summary = traced
            .metrics
            .telemetry
            .take()
            .expect("traced run summarizes");
        assert!(summary.frames > 0, "rooms must attribute frames");
        assert!(summary.spans_recorded > 0, "pipeline must emit spans");
        for room in &mut traced.rooms {
            let stats = room.telemetry.take().expect("traced rooms carry stats");
            assert!(stats.frames > 0);
        }
        assert_eq!(plain.metrics, traced.metrics);
        assert_eq!(plain.store_stats, traced.store_stats);
        assert_eq!(format!("{}", plain.metrics), format!("{}", traced.metrics));
        for (a, b) in plain.rooms.iter().zip(&traced.rooms) {
            assert_eq!(a.session, b.session, "room {} diverged", a.id);
            assert_eq!(a.store_hits, b.store_hits);
            assert_eq!(a.store_misses, b.store_misses);
            assert_eq!(a.shipped_bytes, b.shipped_bytes);
        }
        assert!(plain.metrics.telemetry.is_none(), "untraced stays None");

        // The traced run's spans cover every instrumented subsystem.
        let spans = sink.spans_snapshot();
        for name in ["room-tick", "farm-drain", "transfer", "render-band"] {
            assert!(
                spans.iter().any(|s| s.name == name),
                "missing {name} spans in {} recorded",
                spans.len()
            );
        }
        assert!(
            spans.iter().any(|s| s.name.starts_with("store-")),
            "missing store lookup spans"
        );
    }

    #[test]
    fn sharded_trace_merges_worker_lanes() {
        // A traced two-worker run must land every worker's spans in one
        // sink, rebased onto worker 0's epoch, with room-tick lanes in
        // per-worker process groups — and the merged trace must pass
        // the Chrome-trace validator.
        use coterie_telemetry::{
            chrome_trace_json_full, validate_chrome_trace, TelemetryConfig, TelemetrySink,
            SHARD_PID_BASE, VSYNC_BUDGET_MS,
        };
        let sink = TelemetrySink::recording(TelemetryConfig::default());
        let report =
            Fleet::new_with_telemetry(tiny_workers(4, 2, StoreBackend::Sharded), sink.clone())
                .run();
        assert!(report.metrics.sharding.is_some());
        let spans = sink.spans_snapshot();
        for w in 0..2u32 {
            assert!(
                spans
                    .iter()
                    .any(|s| s.track.pid == shard_pid(w) && s.name == "room-tick"),
                "worker {w} has no tick lane"
            );
        }
        assert!(
            spans.iter().any(|s| s.name == "shard-exchange"),
            "exchange spans missing"
        );
        // Rebasing undid the simulated skew: worker 1's earliest tick
        // starts at epoch 0 like worker 0's, not 2.5 ms later.
        let earliest = |pid: u32| {
            spans
                .iter()
                .filter(|s| s.track.pid == pid && s.name == "room-tick")
                .map(|s| s.start_ms)
                .fold(f64::INFINITY, f64::min)
        };
        assert_eq!(earliest(SHARD_PID_BASE), earliest(SHARD_PID_BASE + 1));
        let trace = chrome_trace_json_full(
            &spans,
            &sink.frames_snapshot(),
            &sink.counters_snapshot(),
            VSYNC_BUDGET_MS,
        );
        let check = validate_chrome_trace(&trace).expect("merged trace validates");
        assert!(check.events > 0);
    }

    #[test]
    fn traced_summary_lands_in_display() {
        use coterie_telemetry::{TelemetryConfig, TelemetrySink};
        let sink = TelemetrySink::recording(TelemetryConfig::default());
        let report = Fleet::new_with_telemetry(tiny(1, true), sink).run();
        let shown = format!("{}", report.metrics);
        assert!(shown.contains("telemetry: "), "summary block: {shown}");
        assert!(shown.contains("  render "), "stage table: {shown}");
        assert!(shown.contains("  worst: "), "drilldown: {shown}");
    }

    #[test]
    fn mixed_games_stay_isolated_per_game() {
        let config = FleetConfig {
            games: vec![GameId::VikingVillage, GameId::Fps],
            ..tiny(2, true)
        };
        let report = Fleet::new(config).run();
        assert_eq!(report.rooms[0].game, GameId::VikingVillage);
        assert_eq!(report.rooms[1].game, GameId::Fps);
        // Both rooms must still complete with healthy FPS.
        assert!(report.metrics.fps_p99 > 30.0);
    }
}
