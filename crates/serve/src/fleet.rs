//! The fleet runtime: many rooms, one store, one egress budget.
//!
//! [`Fleet::run`] drives every room in lockstep *epochs* of simulated
//! time. Within an epoch rooms are visited in id order and each advances
//! its session to the epoch boundary; at the boundary the pre-render
//! farm drains its speculative batch and every room runs its quality
//! controller. Serializing the store transactions this way makes the
//! whole run a pure function of the [`FleetConfig`] — the same seed
//! always produces a byte-identical [`FleetMetrics`] report — while
//! room *construction* (world building and the render measurement pass,
//! by far the expensive part) still fans out across cores.

use crate::farm::PrerenderFarm;
use crate::metrics::FleetMetrics;
use crate::predict::PredictorKind;
use crate::room::{Room, RoomReport};
use crate::store::{SharedFrameStore, StoreConfig, StoreStats};
use coterie_net::{FleetEgress, NetScenario};
use coterie_parallel::par_map_ws;
use coterie_sim::{SessionConfig, SystemKind};
use coterie_telemetry::{Stage, TelemetrySink, TrackId, FLEET_PID};
use coterie_world::GameId;

/// Fleet composition and resource provisioning.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of concurrent rooms.
    pub rooms: usize,
    /// Players per room.
    pub players: usize,
    /// Games hosted; rooms cycle through this list, and only rooms of
    /// the same game share frames.
    pub games: Vec<GameId>,
    /// Simulated session length per room, seconds.
    pub duration_s: f64,
    /// Master seed. Each game's world derives from this; each room gets
    /// a distinct trajectory seed on top.
    pub seed: u64,
    /// `true` = one store shared by all rooms (the tentpole design);
    /// `false` = one isolated store per room with an equal slice of the
    /// byte budget (the baseline the shared design is compared to).
    pub shared_store: bool,
    /// Total frame-store byte budget (split evenly in isolated mode).
    pub store_bytes: u64,
    /// Store shard count.
    pub store_shards: usize,
    /// Provisioned fleet downlink egress, Mbps.
    pub egress_mbps: f64,
    /// Epoch length, simulated ms.
    pub epoch_ms: f64,
    /// Bounded per-room store-transaction queue (per epoch).
    pub queue_depth: usize,
    /// Measurement-pass samples per player (smaller = faster room
    /// construction, coarser size model).
    pub size_samples: usize,
    /// FI network fault scenario applied to every room.
    /// [`NetScenario::None`] (the default) keeps the lossless sync model
    /// and reproduces pre-fault-plane reports byte for byte.
    pub net: NetScenario,
    /// Pose predictor driving the pre-render farm's speculation queue.
    /// [`PredictorKind::None`] (the default) keeps blind neighbour
    /// speculation and pure-LRU admission, reproducing predictor-less
    /// reports byte for byte.
    pub predictor: PredictorKind,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            rooms: 8,
            players: 2,
            games: vec![GameId::VikingVillage],
            duration_s: 10.0,
            seed: 7,
            shared_store: true,
            store_bytes: 256 * 1024 * 1024,
            store_shards: 16,
            egress_mbps: 2000.0,
            epoch_ms: 100.0,
            queue_depth: 32,
            size_samples: 8,
            net: NetScenario::None,
            predictor: PredictorKind::None,
        }
    }
}

/// Outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Aggregated fleet metrics.
    pub metrics: FleetMetrics,
    /// Per-room detail, in room-id order.
    pub rooms: Vec<RoomReport>,
    /// Final store counters (summed across stores in isolated mode).
    pub store_stats: StoreStats,
}

/// Trace lane (tid, under [`FLEET_PID`]) of the pre-render farm's
/// epoch-drain spans, clearly apart from the per-room tick lanes
/// (tid = room id).
const FARM_TID: u32 = 10_000;

/// The fleet runtime.
pub struct Fleet {
    config: FleetConfig,
    rooms: Vec<Room>,
    stores: Vec<SharedFrameStore>,
    egress: FleetEgress,
    farm: PrerenderFarm,
    telemetry: TelemetrySink,
}

impl Fleet {
    /// Builds every room (in parallel — construction dominates) and
    /// provisions the store(s) and egress budget.
    ///
    /// # Panics
    ///
    /// Panics if the config has no rooms, no games, a non-positive
    /// duration or a zero store budget.
    pub fn new(config: FleetConfig) -> Self {
        Fleet::new_with_telemetry(config, TelemetrySink::disabled())
    }

    /// [`Fleet::new`] with an observation-only telemetry sink shared by
    /// every room: each displayed frame is attributed to its pipeline
    /// stages, the epoch loop and pre-render farm get their own spans,
    /// and [`FleetMetrics::telemetry`] carries the fleet-wide summary.
    /// With a disabled sink this is [`Fleet::new`] exactly — the run and
    /// its report are byte-identical.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Fleet::new`].
    pub fn new_with_telemetry(config: FleetConfig, telemetry: TelemetrySink) -> Self {
        assert!(config.rooms > 0, "fleet needs at least one room");
        assert!(!config.games.is_empty(), "fleet needs at least one game");
        assert!(config.duration_s > 0.0, "duration must be positive");
        let session_configs: Vec<SessionConfig> = (0..config.rooms)
            .map(|room_id| {
                let game = config.games[room_id % config.games.len()];
                let mut cfg = SessionConfig::new(game, SystemKind::coterie(), config.players)
                    .with_duration_s(config.duration_s)
                    // One world per (game, master seed)…
                    .with_seed(config.seed)
                    // …distinct movement per room.
                    .with_trace_seed(
                        config
                            .seed
                            .wrapping_add((room_id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    )
                    // The fault scenario applies fleet-wide; per-room
                    // channels still diverge via the trace seed.
                    .with_net(config.net);
                cfg.size_samples = config.size_samples.max(1);
                cfg
            })
            .collect();
        // Work-stealing construction: room build cost varies a lot by
        // game (scene complexity, trace length), the exact non-uniform
        // workload par_map_ws exists for. Results come back in input
        // order, so parallelism cannot perturb room identity.
        let rooms: Vec<Room> = {
            let queue_depth = config.queue_depth;
            let sink = telemetry.clone();
            let indexed: Vec<(usize, SessionConfig)> =
                session_configs.into_iter().enumerate().collect();
            let predictor = config.predictor;
            par_map_ws(&indexed, |(id, cfg)| {
                Room::new_with_telemetry(*id, *cfg, queue_depth, sink.clone())
                    .with_predictor(predictor)
            })
        };
        let stores = if config.shared_store {
            vec![SharedFrameStore::new(StoreConfig {
                capacity_bytes: config.store_bytes,
                shards: config.store_shards,
                admission: config.predictor.admission(),
            })]
        } else {
            (0..config.rooms)
                .map(|_| {
                    SharedFrameStore::new(StoreConfig {
                        capacity_bytes: (config.store_bytes / config.rooms as u64).max(1),
                        shards: config.store_shards,
                        admission: config.predictor.admission(),
                    })
                })
                .collect()
        };
        let egress = FleetEgress::new(config.egress_mbps);
        Fleet {
            config,
            rooms,
            stores,
            egress,
            farm: PrerenderFarm::new(),
            telemetry,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The fleet's telemetry sink (disabled unless the fleet was built
    /// with [`Fleet::new_with_telemetry`]).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Runs every room to completion and aggregates the report.
    pub fn run(mut self) -> FleetReport {
        let epoch_ms = self.config.epoch_ms.max(1.0);
        let mut epoch = 0u64;
        while self.rooms.iter().any(|r| !r.finished()) {
            let start = epoch as f64 * epoch_ms;
            let end = (epoch + 1) as f64 * epoch_ms;
            for (i, room) in self.rooms.iter_mut().enumerate() {
                let store_idx = if self.config.shared_store { 0 } else { i };
                let tick_started = self.telemetry.is_enabled().then(std::time::Instant::now);
                room.tick(
                    end,
                    &self.stores[store_idx],
                    store_idx,
                    &mut self.egress,
                    &mut self.farm,
                );
                if let Some(t0) = tick_started {
                    self.telemetry.span(
                        TrackId {
                            pid: FLEET_PID,
                            tid: i as u32,
                        },
                        Stage::Tick,
                        "room-tick",
                        start,
                        t0.elapsed().as_secs_f64() * 1000.0,
                        epoch,
                    );
                }
            }
            // Epoch boundary: speculative renders land, controllers run.
            let store_refs: Vec<&SharedFrameStore> = self.stores.iter().collect();
            let drain_started = self.telemetry.is_enabled().then(std::time::Instant::now);
            self.farm.drain_into(&store_refs);
            if let Some(t0) = drain_started {
                self.telemetry.span(
                    TrackId {
                        pid: FLEET_PID,
                        tid: FARM_TID,
                    },
                    Stage::Farm,
                    "farm-drain",
                    end,
                    t0.elapsed().as_secs_f64() * 1000.0,
                    epoch,
                );
            }
            if self.telemetry.is_enabled() {
                // Store-occupancy gauge, one sample per epoch: the
                // Chrome-trace "C" track showing fill and eviction churn.
                let occupancy: u64 = self.stores.iter().map(SharedFrameStore::bytes).sum();
                self.telemetry.counter(
                    TrackId {
                        pid: FLEET_PID,
                        tid: FARM_TID,
                    },
                    "store-bytes",
                    end,
                    occupancy as f64,
                );
            }
            for room in &mut self.rooms {
                room.end_epoch();
            }
            epoch += 1;
        }
        let reports: Vec<RoomReport> = self.rooms.into_iter().map(Room::finish).collect();
        let store_stats = self
            .stores
            .iter()
            .map(SharedFrameStore::stats)
            .fold(StoreStats::default(), StoreStats::merged);
        let mut metrics = FleetMetrics::from_run(
            &reports,
            store_stats,
            &self.farm,
            self.config.duration_s,
            self.config.predictor,
        );
        // Budget-attribution summary — `None` when the sink is disabled,
        // keeping the default report (and its Display) bit-identical.
        metrics.telemetry = self.telemetry.summary();
        FleetReport {
            metrics,
            rooms: reports,
            store_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(rooms: usize, shared: bool) -> FleetConfig {
        FleetConfig {
            rooms,
            players: 2,
            duration_s: 4.0,
            shared_store: shared,
            size_samples: 4,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_runs_all_rooms_to_completion() {
        let report = Fleet::new(tiny(3, true)).run();
        assert_eq!(report.rooms.len(), 3);
        assert_eq!(report.metrics.rooms, 3);
        assert_eq!(report.metrics.players, 2);
        assert!(
            report.metrics.fps_p50 > 30.0,
            "p50 {}",
            report.metrics.fps_p50
        );
        assert!(report.metrics.fps_p99 <= report.metrics.fps_p50);
        assert!(report.metrics.egress_mbps > 0.0);
        assert!(report.metrics.prerender_gpu_hours > 0.0);
        assert!(report.metrics.peak_temperature_c > 0.0);
        for (i, room) in report.rooms.iter().enumerate() {
            assert_eq!(room.id, i);
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let a = Fleet::new(tiny(3, true)).run();
        let b = Fleet::new(tiny(3, true)).run();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.store_stats, b.store_stats);
        assert_eq!(format!("{}", a.metrics), format!("{}", b.metrics));
    }

    #[test]
    fn shared_store_beats_isolated_stores() {
        let shared = Fleet::new(tiny(4, true)).run();
        let isolated = Fleet::new(tiny(4, false)).run();
        assert!(
            shared.metrics.store_hit_ratio > isolated.metrics.store_hit_ratio,
            "shared {:.4} vs isolated {:.4}",
            shared.metrics.store_hit_ratio,
            isolated.metrics.store_hit_ratio
        );
        assert!(
            shared.metrics.prerender_gpu_hours < isolated.metrics.prerender_gpu_hours,
            "shared {:.6} vs isolated {:.6} GPU-hours",
            shared.metrics.prerender_gpu_hours,
            isolated.metrics.prerender_gpu_hours
        );
    }

    #[test]
    fn lossy_fleet_reports_fi_recovery() {
        let config = FleetConfig {
            net: NetScenario::BurstLoss,
            ..tiny(2, true)
        };
        let report = Fleet::new(config).run();
        assert!(report.metrics.fi_syncs > 0);
        assert!(report.metrics.fi_retries > 0, "burst loss forces retries");
        assert!(report.metrics.fi_stale_frames > 0);
        let shown = format!("{}", report.metrics);
        assert!(shown.contains("\n  fi "), "lossy reports print FI lines");
        assert!(shown.contains("\n  desync "));
    }

    #[test]
    fn lossless_fleet_omits_fi_lines() {
        let report = Fleet::new(tiny(2, true)).run();
        assert_eq!(report.metrics.fi_syncs, 0);
        let shown = format!("{}", report.metrics);
        assert!(
            !shown.contains("\n  fi "),
            "lossless reports stay as before"
        );
    }

    #[test]
    fn telemetry_is_observation_only() {
        // The golden determinism guard: a `--net none` fleet report must
        // be byte-identical with telemetry enabled vs disabled once the
        // (None vs Some) telemetry fields themselves are stripped.
        use coterie_telemetry::{TelemetryConfig, TelemetrySink};
        let plain = Fleet::new(tiny(2, true)).run();
        let sink = TelemetrySink::recording(TelemetryConfig::default());
        let mut traced = Fleet::new_with_telemetry(tiny(2, true), sink.clone()).run();

        let summary = traced
            .metrics
            .telemetry
            .take()
            .expect("traced run summarizes");
        assert!(summary.frames > 0, "rooms must attribute frames");
        assert!(summary.spans_recorded > 0, "pipeline must emit spans");
        for room in &mut traced.rooms {
            let stats = room.telemetry.take().expect("traced rooms carry stats");
            assert!(stats.frames > 0);
        }
        assert_eq!(plain.metrics, traced.metrics);
        assert_eq!(plain.store_stats, traced.store_stats);
        assert_eq!(format!("{}", plain.metrics), format!("{}", traced.metrics));
        for (a, b) in plain.rooms.iter().zip(&traced.rooms) {
            assert_eq!(a.session, b.session, "room {} diverged", a.id);
            assert_eq!(a.store_hits, b.store_hits);
            assert_eq!(a.store_misses, b.store_misses);
            assert_eq!(a.shipped_bytes, b.shipped_bytes);
        }
        assert!(plain.metrics.telemetry.is_none(), "untraced stays None");

        // The traced run's spans cover every instrumented subsystem.
        let spans = sink.spans_snapshot();
        for name in ["room-tick", "farm-drain", "transfer", "render-band"] {
            assert!(
                spans.iter().any(|s| s.name == name),
                "missing {name} spans in {} recorded",
                spans.len()
            );
        }
        assert!(
            spans.iter().any(|s| s.name.starts_with("store-")),
            "missing store lookup spans"
        );
    }

    #[test]
    fn traced_summary_lands_in_display() {
        use coterie_telemetry::{TelemetryConfig, TelemetrySink};
        let sink = TelemetrySink::recording(TelemetryConfig::default());
        let report = Fleet::new_with_telemetry(tiny(1, true), sink).run();
        let shown = format!("{}", report.metrics);
        assert!(shown.contains("telemetry: "), "summary block: {shown}");
        assert!(shown.contains("  render "), "stage table: {shown}");
        assert!(shown.contains("  worst: "), "drilldown: {shown}");
    }

    #[test]
    fn mixed_games_stay_isolated_per_game() {
        let config = FleetConfig {
            games: vec![GameId::VikingVillage, GameId::Fps],
            ..tiny(2, true)
        };
        let report = Fleet::new(config).run();
        assert_eq!(report.rooms[0].game, GameId::VikingVillage);
        assert_eq!(report.rooms[1].game, GameId::Fps);
        // Both rooms must still complete with healthy FPS.
        assert!(report.metrics.fps_p99 > 30.0);
    }
}
