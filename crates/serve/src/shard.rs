//! The sharded [`FrameStore`] backend: a fleet-wide store partitioned
//! across worker processes.
//!
//! One process dies at one machine's worth of rooms; the ROADMAP's top
//! open item is letting the *fleet* share frames. This module shards
//! the store by consistent hashing on `(game, leaf region)` — the same
//! key the lookup criteria confine a match to, so any query can be
//! answered entirely by the partition that owns its leaf:
//!
//! * [`HashRing`] — 64 virtual nodes per shard on a `u64` ring. Keys
//!   spread evenly (balance proptested) and resharding `N → N+1` moves
//!   only `~1/(N+1)` of the keys (minimal-movement proptested).
//! * [`ShardFabric`] — the partitions (one [`LocalStore`] per worker,
//!   all stamped from one shared global clock), per-worker hot-replica
//!   caches, and the epoch exchange. Workers batch their inserts since
//!   the last epoch into [`WireMessage::ShardAdvert`] messages plus a
//!   [`WireMessage::ShardUsage`] digest, genuinely encoded through
//!   `coterie_net::wire` and reassembled at each peer — the same bytes
//!   a multi-process deployment puts on a socket ([`crate::Fleet`]
//!   drives all workers in one process; `coterie-server`'s shard
//!   coordinator drives the same messages over real sockets).
//! * Anti-entropy: each partition enforces only its *local* byte cap
//!   between epochs (so a hot shard can absorb skew), and the epoch
//!   exchange reconciles the usage digests — while the fleet-wide sum
//!   exceeds the global budget, the entry with the globally-oldest
//!   stamp is evicted, wherever it lives. Because every stamp comes
//!   from the one shared clock, this is exactly the single-process
//!   global LRU, restored at epoch granularity.
//! * [`ShardedStore`] — worker `w`'s view of the fabric, implementing
//!   [`FrameStore`]. Lookups for owned leaves go straight to the local
//!   partition; for remote leaves the replica cache is tried first
//!   (`replica_hits`) and the owner partition only on replica miss
//!   (`forwards`). Inserts always route to the owner.
//!
//! Determinism: the fabric has no threads of its own. Given the same
//! serialized operation sequence (the fleet's room-id-ordered epoch
//! loop) and the same epoch boundaries, every counter, eviction and
//! advert is reproduced exactly — per-shard byte-identity holds just
//! as it does for the local backend.

use crate::store::{FrameStore, LocalStore, RecentInsert, StoreConfig, StoreStats};
use coterie_core::{CacheQuery, FrameMeta};
use coterie_net::wire::{FrameAssembler, ShardEntry, WireMessage, MAX_SHARD_ENTRIES};
use coterie_world::{GameId, GridPoint, LeafId, Vec2};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which [`FrameStore`] backend a fleet constructs (`--store`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StoreBackend {
    /// One in-process [`LocalStore`] (today's behaviour, byte-identical).
    #[default]
    Local,
    /// The partitioned [`ShardFabric`] with per-worker [`ShardedStore`]
    /// views.
    Sharded,
}

impl StoreBackend {
    /// All backends, in CLI order.
    pub const ALL: [StoreBackend; 2] = [StoreBackend::Local, StoreBackend::Sharded];

    /// Parses a `--store` argument.
    pub fn parse(s: &str) -> Option<StoreBackend> {
        match s {
            "local" => Some(StoreBackend::Local),
            "sharded" => Some(StoreBackend::Sharded),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            StoreBackend::Local => "local",
            StoreBackend::Sharded => "sharded",
        }
    }
}

/// Virtual nodes per shard. 64 points smooth the ring enough that the
/// loaded-to-lightest partition ratio stays small (proptested) while
/// keeping owner lookup a binary search over a few hundred points.
const VNODES_PER_SHARD: u64 = 64;

/// splitmix64: a strong 64-bit mixer (fixed constants, no state), used
/// for both ring points and keys so placement is stable across runs
/// and processes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The consistent-hash key of a store partition: mixes the game id and
/// leaf region into one point on the ring.
pub fn partition_key(game: GameId, leaf: u32) -> u64 {
    splitmix64(((game as u64) << 32) ^ leaf as u64)
}

/// A consistent-hash ring assigning `(game, leaf)` partitions to shard
/// owners.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, shard)` pairs.
    points: Vec<(u64, u16)>,
    shards: u16,
}

impl HashRing {
    /// A ring over `shards` workers.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u16) -> Self {
        assert!(shards > 0, "ring needs at least one shard");
        let mut points = Vec::with_capacity(shards as usize * VNODES_PER_SHARD as usize);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                // Mix shard and vnode into one seed; collisions across
                // shards are broken deterministically by the shard id
                // carried next to the point.
                let point = splitmix64(((shard as u64) << 32) | vnode);
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// The shard owning `(game, leaf)`: the first ring point at or
    /// after the key, wrapping past the top.
    pub fn owner(&self, game: GameId, leaf: u32) -> u16 {
        self.owner_of(partition_key(game, leaf))
    }

    /// The shard owning a raw key hash.
    pub fn owner_of(&self, key: u64) -> u16 {
        let ix = self.points.partition_point(|&(p, _)| p < key);
        let ix = if ix == self.points.len() { 0 } else { ix };
        self.points[ix].1
    }
}

/// Sharding counters surfaced in [`crate::FleetMetrics`] and
/// BENCH_fleet.json.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Fleet width.
    pub shards: usize,
    /// Store operations routed to a remote-owned partition.
    pub forwards: u64,
    /// Lookups served from a worker's hot-replica cache.
    pub replica_hits: u64,
    /// Hot entries replicated by the epoch exchange.
    pub replica_inserts: u64,
    /// Exchange messages put on the wire plane.
    pub wire_msgs: u64,
    /// Exchange bytes put on the wire plane (length prefixes included).
    pub wire_bytes: u64,
    /// Epoch-boundary evictions made by anti-entropy to restore the
    /// global byte budget.
    pub anti_entropy_evictions: u64,
}

/// The latest [`WireMessage::ShardUsage`] digest received from a peer.
#[derive(Debug, Clone, Copy, Default)]
struct UsageDigest {
    bytes: u64,
    oldest_stamp: u64,
    epoch: u64,
}

/// The partitioned fleet-wide store: every worker's partitions,
/// replica caches, ring and exchange state.
///
/// Construct once per fleet, then hand each worker its view with
/// [`ShardFabric::store_view`].
#[derive(Debug)]
pub struct ShardFabric {
    ring: HashRing,
    /// Partition `w` holds the `(game, leaf)` caches owned by worker
    /// `w`. All partitions stamp from one shared clock, so access
    /// recency is totally ordered fleet-wide.
    partitions: Vec<LocalStore>,
    /// Worker `w`'s hot-replica cache of remote-owned entries.
    replicas: Vec<LocalStore>,
    /// Global byte budget anti-entropy restores each epoch.
    global_budget: u64,
    /// Exchange epoch counter.
    epoch: AtomicU64,
    /// Latest usage digest decoded from each peer (indexed by shard).
    usage: Mutex<Vec<UsageDigest>>,
    forwards: AtomicU64,
    replica_hits: AtomicU64,
    replica_inserts: AtomicU64,
    wire_msgs: AtomicU64,
    wire_bytes: AtomicU64,
    anti_entropy_evictions: AtomicU64,
}

impl ShardFabric {
    /// Builds a fabric of `shards` workers sharing `config`'s global
    /// byte budget.
    ///
    /// Budget split: each partition's *local* cap is the full global
    /// budget less the replica reserve — skew between epochs never
    /// force-evicts a hot partition early; anti-entropy restores the
    /// global sum at each exchange. One eighth of the budget is
    /// reserved for the replica caches, split evenly across workers.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero (or under [`StoreConfig`]'s own
    /// invariants).
    pub fn new(shards: usize, config: StoreConfig) -> Arc<ShardFabric> {
        assert!(shards > 0, "fabric needs at least one shard");
        assert!(shards <= u16::MAX as usize, "shard index must fit u16");
        let clock = Arc::new(AtomicU64::new(0));
        let replica_reserve = config.capacity_bytes / 8;
        let partition_cap = (config.capacity_bytes - replica_reserve).max(1);
        let replica_cap = (replica_reserve / shards as u64).max(1);
        let partitions: Vec<LocalStore> = (0..shards)
            .map(|_| {
                let store = LocalStore::new_with_clock(
                    StoreConfig {
                        capacity_bytes: partition_cap,
                        ..config
                    },
                    clock.clone(),
                );
                store.set_advertise(true);
                store
            })
            .collect();
        let replicas = (0..shards)
            .map(|_| {
                LocalStore::new_with_clock(
                    StoreConfig {
                        capacity_bytes: replica_cap,
                        ..config
                    },
                    clock.clone(),
                )
            })
            .collect();
        Arc::new(ShardFabric {
            ring: HashRing::new(shards as u16),
            partitions,
            replicas,
            global_budget: partition_cap,
            epoch: AtomicU64::new(0),
            usage: Mutex::new(vec![UsageDigest::default(); shards]),
            forwards: AtomicU64::new(0),
            replica_hits: AtomicU64::new(0),
            replica_inserts: AtomicU64::new(0),
            wire_msgs: AtomicU64::new(0),
            wire_bytes: AtomicU64::new(0),
            anti_entropy_evictions: AtomicU64::new(0),
        })
    }

    /// Fleet width.
    pub fn shards(&self) -> usize {
        self.partitions.len()
    }

    /// The ring (for tests and the server-plane coordinator).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Worker `w`'s [`FrameStore`] view.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn store_view(self: &Arc<Self>, worker: usize) -> ShardedStore {
        assert!(worker < self.partitions.len(), "worker out of range");
        ShardedStore {
            fabric: Arc::clone(self),
            worker,
        }
    }

    /// Total cached payload bytes fleet-wide (partitions + replicas).
    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(LocalStore::bytes).sum::<u64>()
            + self.replicas.iter().map(LocalStore::bytes).sum::<u64>()
    }

    /// Total cached frames fleet-wide (partitions + replicas).
    pub fn total_len(&self) -> usize {
        self.partitions.iter().map(LocalStore::len).sum::<usize>()
            + self.replicas.iter().map(LocalStore::len).sum::<usize>()
    }

    /// Fleet-wide merged stats: every partition's counters plus the
    /// fabric-level forwarding/replication counters. Replica caches'
    /// *internal* counters are bookkeeping duplicates (each replica
    /// hit is already counted once, fabric-level) and are excluded.
    pub fn stats(&self) -> StoreStats {
        let mut merged = self
            .partitions
            .iter()
            .map(LocalStore::stats)
            .fold(StoreStats::default(), StoreStats::merged);
        merged.forwards = self.forwards.load(Ordering::Relaxed);
        merged.replica_hits = self.replica_hits.load(Ordering::Relaxed);
        merged.replica_inserts = self.replica_inserts.load(Ordering::Relaxed);
        merged
    }

    /// Sharding counters for reports.
    pub fn metrics(&self) -> ShardMetrics {
        ShardMetrics {
            shards: self.shards(),
            forwards: self.forwards.load(Ordering::Relaxed),
            replica_hits: self.replica_hits.load(Ordering::Relaxed),
            replica_inserts: self.replica_inserts.load(Ordering::Relaxed),
            wire_msgs: self.wire_msgs.load(Ordering::Relaxed),
            wire_bytes: self.wire_bytes.load(Ordering::Relaxed),
            anti_entropy_evictions: self.anti_entropy_evictions.load(Ordering::Relaxed),
        }
    }

    /// Runs one epoch exchange: every worker encodes its usage digest
    /// and hot-entry adverts as real wire frames, every peer reassembles
    /// and applies them, then anti-entropy reconciles the global byte
    /// budget. Call at epoch boundaries, outside the room tick loop.
    pub fn exchange(&self) {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let shards = self.partitions.len();
        for w in 0..shards {
            let part = &self.partitions[w];
            let recent = part.drain_recent();
            let mut frames: Vec<Vec<u8>> = Vec::with_capacity(1 + recent.len() / MAX_SHARD_ENTRIES);
            frames.push(
                WireMessage::ShardUsage {
                    shard: w as u16,
                    epoch,
                    bytes: part.bytes(),
                    clock: 0, // informational; the fabric clock is shared
                    oldest_stamp: part.oldest_stamp().unwrap_or(u64::MAX),
                }
                .encode_frame(),
            );
            for chunk in recent.chunks(MAX_SHARD_ENTRIES) {
                frames.push(
                    WireMessage::ShardAdvert {
                        shard: w as u16,
                        epoch,
                        entries: chunk.iter().map(entry_of).collect(),
                    }
                    .encode_frame(),
                );
            }
            // Deliver to every peer through the real receive path: the
            // exact bytes a socket deployment would carry.
            for p in 0..shards {
                if p == w {
                    continue;
                }
                let mut asm = FrameAssembler::new();
                for frame in &frames {
                    asm.push(frame);
                    self.wire_msgs.fetch_add(1, Ordering::Relaxed);
                    self.wire_bytes
                        .fetch_add(frame.len() as u64, Ordering::Relaxed);
                }
                while let Some(msg) = asm
                    .next_message()
                    .expect("self-encoded exchange frames decode")
                {
                    self.apply(p, msg);
                }
            }
            // The sender's own digest (peers' copies were just applied).
            self.usage.lock()[w] = UsageDigest {
                bytes: part.bytes(),
                oldest_stamp: part.oldest_stamp().unwrap_or(u64::MAX),
                epoch,
            };
        }
        self.anti_entropy();
    }

    /// Applies one decoded exchange message at receiving worker `p`.
    fn apply(&self, p: usize, msg: WireMessage) {
        match msg {
            WireMessage::ShardUsage {
                shard,
                epoch,
                bytes,
                oldest_stamp,
                ..
            } => {
                let mut usage = self.usage.lock();
                if let Some(slot) = usage.get_mut(shard as usize) {
                    if epoch >= slot.epoch {
                        *slot = UsageDigest {
                            bytes,
                            oldest_stamp,
                            epoch,
                        };
                    }
                }
            }
            WireMessage::ShardAdvert { entries, .. } => {
                for e in entries {
                    if self.replicas[p].insert(e.game, meta_of(&e), e.bytes) {
                        self.replica_inserts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Other message families never travel on the in-process
            // exchange.
            _ => {}
        }
    }

    /// Restores the fleet-wide byte budget using the usage digests:
    /// while the partitions' sum exceeds the global budget, evict the
    /// entry with the globally-oldest stamp (ties broken toward the
    /// lowest shard, deterministically). Stamps come from the one
    /// shared clock, so this reproduces the single-process global LRU
    /// at epoch granularity.
    fn anti_entropy(&self) {
        let mut usage = self.usage.lock();
        let mut total: u64 = usage.iter().map(|u| u.bytes).sum();
        while total > self.global_budget {
            let victim = usage
                .iter()
                .enumerate()
                .filter(|(_, u)| u.oldest_stamp != u64::MAX)
                .min_by_key(|(w, u)| (u.oldest_stamp, *w))
                .map(|(w, _)| w);
            let Some(w) = victim else {
                break;
            };
            let Some(freed) = self.partitions[w].evict_oldest() else {
                // Digest was stale and the partition is empty: refresh
                // it and keep going.
                usage[w].bytes = self.partitions[w].bytes();
                usage[w].oldest_stamp = u64::MAX;
                continue;
            };
            self.anti_entropy_evictions.fetch_add(1, Ordering::Relaxed);
            total = total.saturating_sub(freed);
            usage[w].bytes = self.partitions[w].bytes();
            usage[w].oldest_stamp = self.partitions[w].oldest_stamp().unwrap_or(u64::MAX);
        }
    }
}

/// Converts a partition's recent-insert record to its wire form.
fn entry_of(r: &RecentInsert) -> ShardEntry {
    ShardEntry {
        game: r.game,
        grid_ix: r.meta.grid.ix,
        grid_iz: r.meta.grid.iz,
        pos_x: r.meta.pos.x,
        pos_z: r.meta.pos.z,
        leaf: r.meta.leaf.0,
        near_hash: r.meta.near_hash,
        bytes: r.bytes,
        stamp: r.stamp,
        value: r.value,
    }
}

/// Reconstructs a store key from a wire entry.
fn meta_of(e: &ShardEntry) -> FrameMeta {
    FrameMeta {
        grid: GridPoint::new(e.grid_ix, e.grid_iz),
        pos: Vec2::new(e.pos_x, e.pos_z),
        leaf: LeafId(e.leaf),
        near_hash: e.near_hash,
    }
}

/// Worker `w`'s view of the [`ShardFabric`], implementing
/// [`FrameStore`]. Cheap to clone (an `Arc` and an index).
#[derive(Debug, Clone)]
pub struct ShardedStore {
    fabric: Arc<ShardFabric>,
    worker: usize,
}

impl ShardedStore {
    /// The fabric behind this view.
    pub fn fabric(&self) -> &Arc<ShardFabric> {
        &self.fabric
    }

    /// This view's worker index.
    pub fn worker(&self) -> usize {
        self.worker
    }
}

impl FrameStore for ShardedStore {
    fn lookup(&self, game: GameId, query: &CacheQuery) -> bool {
        let owner = self.fabric.ring.owner(game, query.leaf.0) as usize;
        if owner == self.worker {
            return self.fabric.partitions[owner].lookup(game, query);
        }
        // Remote-owned leaf: hot-replica cache first (a local hit
        // avoids the forward entirely), owner partition on miss.
        if self.fabric.replicas[self.worker].lookup(game, query) {
            self.fabric.replica_hits.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        self.fabric.forwards.fetch_add(1, Ordering::Relaxed);
        self.fabric.partitions[owner].lookup(game, query)
    }

    fn insert(&self, game: GameId, meta: FrameMeta, size_bytes: u64) -> bool {
        let owner = self.fabric.ring.owner(game, meta.leaf.0) as usize;
        if owner != self.worker {
            self.fabric.forwards.fetch_add(1, Ordering::Relaxed);
        }
        self.fabric.partitions[owner].insert(game, meta, size_bytes)
    }

    fn insert_speculative(
        &self,
        game: GameId,
        meta: FrameMeta,
        size_bytes: u64,
        reuse_score: f64,
    ) -> bool {
        let owner = self.fabric.ring.owner(game, meta.leaf.0) as usize;
        if owner != self.worker {
            self.fabric.forwards.fetch_add(1, Ordering::Relaxed);
        }
        self.fabric.partitions[owner].insert_speculative(game, meta, size_bytes, reuse_score)
    }

    fn stats(&self) -> StoreStats {
        self.fabric.stats()
    }

    fn admission(&self) -> crate::store::Admission {
        self.fabric.partitions[0].config().admission
    }

    fn capacity_bytes(&self) -> u64 {
        self.fabric.global_budget
    }

    fn bytes(&self) -> u64 {
        self.fabric.total_bytes()
    }

    fn len(&self) -> usize {
        self.fabric.total_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Admission;

    fn meta(ix: i32, iz: i32, leaf: u32) -> FrameMeta {
        FrameMeta {
            grid: GridPoint::new(ix, iz),
            pos: Vec2::new(ix as f64 * 0.1, iz as f64 * 0.1),
            leaf: LeafId(leaf),
            near_hash: 7,
        }
    }

    fn query(m: &FrameMeta) -> CacheQuery {
        CacheQuery {
            grid: m.grid,
            pos: m.pos,
            leaf: m.leaf,
            near_hash: m.near_hash,
            dist_thresh: 0.5,
        }
    }

    #[test]
    fn ring_owner_is_stable_and_in_range() {
        let ring = HashRing::new(4);
        for leaf in 0..1000u32 {
            let owner = ring.owner(GameId::Fps, leaf);
            assert!(owner < 4);
            assert_eq!(owner, ring.owner(GameId::Fps, leaf), "stable");
        }
        // Games with the same leaf ids land independently.
        let same = (0..1000u32)
            .filter(|&l| ring.owner(GameId::Fps, l) == ring.owner(GameId::VikingVillage, l))
            .count();
        assert!(same < 1000, "games must not be perfectly correlated");
    }

    #[test]
    fn cross_shard_insert_is_visible_to_every_view() {
        let fabric = ShardFabric::new(4, StoreConfig::default());
        let views: Vec<ShardedStore> = (0..4).map(|w| fabric.store_view(w)).collect();
        let m = meta(10, 10, 3);
        // Whichever view inserts, every view's lookup finds the frame
        // (replica miss → forward to owner).
        assert!(views[2].insert(GameId::Fps, m, 1000));
        for v in &views {
            assert!(v.lookup(GameId::Fps, &query(&m)), "view {}", v.worker());
        }
        let stats = fabric.stats();
        assert_eq!(stats.hits + stats.replica_hits, 4);
        assert_eq!(stats.insertions, 1);
    }

    #[test]
    fn exchange_populates_replicas_and_serves_local_hits() {
        let fabric = ShardFabric::new(2, StoreConfig::default());
        let m = meta(10, 10, 3);
        let owner = fabric.ring().owner(GameId::Fps, 3) as usize;
        let other = 1 - owner;
        fabric.store_view(owner).insert(GameId::Fps, m, 1000);
        assert_eq!(fabric.metrics().forwards, 0, "owner insert is local");
        fabric.exchange();
        let metrics = fabric.metrics();
        assert_eq!(metrics.replica_inserts, 1);
        assert!(metrics.wire_msgs >= 2, "usage + advert per peer");
        assert!(metrics.wire_bytes > 0);
        // The non-owner now hits its replica without forwarding.
        assert!(fabric.store_view(other).lookup(GameId::Fps, &query(&m)));
        let metrics = fabric.metrics();
        assert_eq!(metrics.replica_hits, 1);
        assert_eq!(metrics.forwards, 0);
    }

    #[test]
    fn anti_entropy_restores_global_budget_with_global_lru_order() {
        // Two shards, tiny budget. Partition caps allow local skew; the
        // exchange must trim the fleet-wide sum back under the global
        // budget by evicting the globally oldest entries.
        let fabric = ShardFabric::new(
            2,
            StoreConfig {
                capacity_bytes: 800,
                shards: 4,
                admission: Admission::Lru,
            },
        );
        let global_budget = 800 - 800 / 8; // partition cap = global budget
        let views: Vec<ShardedStore> = (0..2).map(|w| fabric.store_view(w)).collect();
        // Spread inserts over many leaves so both partitions fill.
        let mut inserted = 0u64;
        for leaf in 0..10u32 {
            let m = meta(leaf as i32 * 30, 0, leaf);
            let owner = fabric.ring().owner(GameId::Fps, leaf) as usize;
            views[owner].insert(GameId::Fps, m, 150);
            inserted += 150;
        }
        assert!(inserted > global_budget, "test must overfill the budget");
        fabric.exchange();
        let partition_sum: u64 = fabric.partitions.iter().map(LocalStore::bytes).sum();
        assert!(
            partition_sum <= global_budget,
            "sum {partition_sum} over global budget {global_budget}"
        );
        assert!(fabric.metrics().anti_entropy_evictions > 0);
        // The survivors are the youngest entries: the oldest remaining
        // stamp must be younger than every evicted stamp, i.e. the
        // global minimum stamp strictly increased.
        let oldest_left = fabric
            .partitions
            .iter()
            .filter_map(LocalStore::oldest_stamp)
            .min()
            .unwrap();
        assert!(oldest_left > 0, "entry with stamp 0 was the first victim");
    }

    #[test]
    fn single_shard_fabric_never_forwards() {
        let fabric = ShardFabric::new(1, StoreConfig::default());
        let view = fabric.store_view(0);
        let m = meta(5, 5, 2);
        assert!(view.insert(GameId::Fps, m, 500));
        assert!(view.lookup(GameId::Fps, &query(&m)));
        fabric.exchange();
        let metrics = fabric.metrics();
        assert_eq!(metrics.forwards, 0);
        assert_eq!(metrics.wire_msgs, 0, "no peers, no wire traffic");
        assert_eq!(metrics.replica_inserts, 0);
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        let run = || {
            let fabric = ShardFabric::new(
                3,
                StoreConfig {
                    capacity_bytes: 64 * 1024,
                    shards: 4,
                    admission: Admission::Lru,
                },
            );
            let views: Vec<ShardedStore> = (0..3).map(|w| fabric.store_view(w)).collect();
            for round in 0..50u32 {
                for (w, v) in views.iter().enumerate() {
                    let leaf = (round * 7 + w as u32) % 23;
                    let m = meta((round as i32) * 40, w as i32 * 40, leaf);
                    v.insert(GameId::Fps, m, 900 + (round as u64 % 5) * 100);
                    v.lookup(GameId::Fps, &query(&m));
                }
                if round % 5 == 4 {
                    fabric.exchange();
                }
            }
            (fabric.stats(), fabric.metrics(), fabric.total_bytes())
        };
        assert_eq!(run(), run());
    }
}
