//! The work-stealing pre-render farm.
//!
//! Every store miss means the fleet's render server had to produce a
//! far-BE panorama on demand. The farm turns each such miss into
//! *speculative* work as well: it pre-renders frames at neighbouring
//! positions inside the same leaf region, so the next room to walk
//! through that area hits the store instead of stalling a GPU. Frames
//! whose triangle loads differ by orders of magnitude make per-job cost
//! wildly non-uniform, which is exactly the workload
//! [`coterie_parallel::par_map_ws`] (shared-counter claiming +
//! per-worker crossbeam deques) exists for — one monster panorama must
//! not straggle a whole batch.
//!
//! Rendering here is simulated: jobs produce a deterministic cost in
//! GPU-milliseconds (a function of encoded size), which the fleet
//! aggregates into the pre-render GPU-hours metric the shared-store
//! comparison reports.

use crate::store::FrameStore;
use coterie_core::FrameMeta;
use coterie_parallel::par_map_ws;
use coterie_world::{GameId, GridPoint, Vec2};

/// Fixed per-panorama server render overhead, GPU-ms (scheduling,
/// state changes). The size-dependent part comes on top.
pub const PRERENDER_BASE_MS: f64 = 2.0;

/// GPU-ms per encoded megabyte of panorama — larger frames cover more
/// geometry and cost proportionally more to render and encode.
pub const PRERENDER_MS_PER_MB: f64 = 9.0;

/// Simulated GPU cost of rendering one far-BE panorama of `bytes`
/// encoded size, ms.
pub fn render_cost_ms(bytes: u64) -> f64 {
    PRERENDER_BASE_MS + PRERENDER_MS_PER_MB * bytes as f64 / 1_000_000.0
}

/// One speculative render job: a frame the farm should have ready in
/// the store, with which store to backfill (isolated fleets run one
/// store per room).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrerenderJob {
    /// Index of the target store in the fleet's store list.
    pub store: usize,
    /// Game the frame belongs to.
    pub game: GameId,
    /// Frame identity (grid point, position, leaf, near set).
    pub meta: FrameMeta,
    /// Encoded size the frame would have, bytes.
    pub bytes: u64,
    /// Predicted-reuse priority: the pose predictor's estimated leaf-
    /// region occupancy over the speculation window. Blind neighbour
    /// speculation scores 0, so a predictor-driven queue renders its
    /// predicted frames first and an all-blind queue keeps its
    /// historical FIFO order exactly (the sort is stable).
    pub score: f64,
}

/// Batching pre-render farm. Jobs accumulate during an epoch and are
/// rendered in one work-stealing sweep at the epoch boundary.
#[derive(Debug, Default)]
pub struct PrerenderFarm {
    jobs: Vec<PrerenderJob>,
    gpu_ms: f64,
    rendered: u64,
}

impl PrerenderFarm {
    /// An empty farm.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues the speculative neighbours of a missed frame: two
    /// positions straddling the miss along x at half the leaf's
    /// `dist_thresh`, so each covers queries the original frame's match
    /// radius does not. Frames are rendered under the requesting
    /// client's near set (the only set a lookup with that near hash can
    /// ever ask for). A zero `dist_thresh` (exact-match traffic) makes
    /// speculation pointless and queues nothing.
    pub fn enqueue_neighbors(
        &mut self,
        store: usize,
        game: GameId,
        meta: FrameMeta,
        bytes: u64,
        dist_thresh: f64,
    ) {
        if dist_thresh <= 0.0 {
            return;
        }
        let step = dist_thresh * 0.5;
        for (dx, dgrid) in [(-step, -1), (step, 1)] {
            self.jobs.push(PrerenderJob {
                store,
                game,
                meta: FrameMeta {
                    grid: GridPoint::new(meta.grid.ix + dgrid, meta.grid.iz),
                    pos: Vec2::new(meta.pos.x + dx, meta.pos.z),
                    leaf: meta.leaf,
                    near_hash: meta.near_hash,
                },
                bytes,
                score: 0.0,
            });
        }
    }

    /// Queues one pose-predicted frame: a position a predictor expects
    /// a player to occupy within the speculation window, ranked by
    /// `score` (predicted leaf-region occupancy). Predicted frames are
    /// rendered before blind neighbours when the epoch batch drains,
    /// and duplicate positions keep the highest-scored copy.
    pub fn enqueue_predicted(
        &mut self,
        store: usize,
        game: GameId,
        meta: FrameMeta,
        bytes: u64,
        score: f64,
    ) {
        self.jobs.push(PrerenderJob {
            store,
            game,
            meta,
            bytes,
            score,
        });
    }

    /// Jobs currently queued.
    pub fn pending(&self) -> usize {
        self.jobs.len()
    }

    /// Total simulated render time spent so far, GPU-ms.
    pub fn gpu_ms(&self) -> f64 {
        self.gpu_ms
    }

    /// Total simulated render time spent so far, GPU-hours.
    pub fn gpu_hours(&self) -> f64 {
        self.gpu_ms / 3_600_000.0
    }

    /// Frames actually rendered (deduplicated jobs only).
    pub fn rendered(&self) -> u64 {
        self.rendered
    }

    /// Renders the queued batch with work-stealing parallelism and
    /// backfills the stores.
    ///
    /// Duplicate jobs (same store, game, leaf and grid point) are
    /// dropped before rendering — concurrent rooms walking the same
    /// area request the same neighbours. Store insertion happens
    /// serially in job order afterwards, so a fleet that queues jobs in
    /// room-id order gets identical store contents on every run no
    /// matter how the render sweep was scheduled across workers.
    pub fn drain_into(&mut self, stores: &[&dyn FrameStore]) {
        if self.jobs.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.jobs);
        // Highest predicted occupancy first. The sort is stable and
        // blind jobs all score 0, so a predictor-less batch keeps its
        // arrival order bit-for-bit — byte identity for
        // `--predictor none` rides on this.
        batch.sort_by(|a, b| b.score.total_cmp(&a.score));
        let mut seen = std::collections::HashSet::new();
        batch.retain(|j| {
            seen.insert((
                j.store,
                j.game,
                j.meta.leaf.0,
                j.meta.grid.ix,
                j.meta.grid.iz,
            ))
        });
        // The render sweep: per-item cost varies with frame size, so
        // dynamic claiming keeps workers busy even when one leaf's
        // panoramas dwarf the rest.
        let costs = par_map_ws(&batch, |job| render_cost_ms(job.bytes));
        for (job, cost) in batch.iter().zip(&costs) {
            // The store skips frames already covered (e.g. the mirror
            // neighbour of an adjacent miss): those cost nothing — the
            // server checks the store before rendering.
            if stores[job.store].insert_speculative(job.game, job.meta, job.bytes, job.score) {
                self.gpu_ms += cost;
                self.rendered += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{SharedFrameStore, StoreConfig};
    use coterie_core::CacheQuery;
    use coterie_world::LeafId;

    fn miss_meta() -> FrameMeta {
        FrameMeta {
            grid: GridPoint::new(100, 50),
            pos: Vec2::new(10.0, 5.0),
            leaf: LeafId(2),
            near_hash: 77,
        }
    }

    #[test]
    fn backfill_makes_neighbors_hit() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let mut farm = PrerenderFarm::new();
        farm.enqueue_neighbors(0, GameId::VikingVillage, miss_meta(), 400_000, 0.4);
        assert_eq!(farm.pending(), 2);
        farm.drain_into(&[&store]);
        assert_eq!(farm.pending(), 0);
        assert_eq!(farm.rendered(), 2);
        assert!(farm.gpu_hours() > 0.0);
        // A query 0.2 m to the side of the miss now hits.
        let q = CacheQuery {
            grid: GridPoint::new(102, 50),
            pos: Vec2::new(10.2, 5.0),
            leaf: LeafId(2),
            near_hash: 77,
            dist_thresh: 0.1,
        };
        assert!(store.lookup(GameId::VikingVillage, &q));
    }

    #[test]
    fn duplicate_jobs_render_once() {
        let store = SharedFrameStore::new(StoreConfig::default());
        let mut farm = PrerenderFarm::new();
        for _ in 0..5 {
            farm.enqueue_neighbors(0, GameId::VikingVillage, miss_meta(), 400_000, 0.4);
        }
        assert_eq!(farm.pending(), 10);
        farm.drain_into(&[&store]);
        assert_eq!(farm.rendered(), 2, "same neighbours must render once");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn predicted_jobs_outrank_blind_duplicates() {
        // A blind neighbour and a predicted job land on the same grid
        // point; the predicted (higher-scored) copy must win the dedup
        // even though it was queued later.
        let store = SharedFrameStore::new(StoreConfig::default());
        let mut farm = PrerenderFarm::new();
        farm.enqueue_neighbors(0, GameId::VikingVillage, miss_meta(), 400_000, 0.4);
        let neighbor = FrameMeta {
            grid: GridPoint::new(101, 50),
            pos: Vec2::new(10.2, 5.0),
            leaf: LeafId(2),
            near_hash: 77,
        };
        farm.enqueue_predicted(0, GameId::VikingVillage, neighbor, 900_000, 2.5);
        farm.drain_into(&[&store]);
        assert_eq!(farm.rendered(), 2);
        // 900 kB predicted frame + 400 kB far neighbour; had the blind
        // 400 kB duplicate won, the total would be 800 kB.
        assert_eq!(store.bytes(), 1_300_000);
        assert_eq!(store.stats().spec_rendered, 2);
    }

    #[test]
    fn exact_match_traffic_is_not_speculated() {
        let mut farm = PrerenderFarm::new();
        farm.enqueue_neighbors(0, GameId::Fps, miss_meta(), 400_000, 0.0);
        assert_eq!(farm.pending(), 0);
    }

    #[test]
    fn cost_model_grows_with_size() {
        assert!(render_cost_ms(2_000_000) > render_cost_ms(100_000));
        assert!(
            (render_cost_ms(1_000_000) - (PRERENDER_BASE_MS + PRERENDER_MS_PER_MB)).abs() < 1e-12
        );
    }
}
