//! Seeded churn engine: who shows up, when, and for how long.
//!
//! Real multiplayer fleets are never the static full-duration rosters
//! the earlier fleet experiments simulated — players trickle in, leave
//! mid-session, pile onto one game after a stream mention, and follow a
//! daily demand curve. This module turns a [`ChurnScenario`] plus the
//! fleet seed into a deterministic arrival list the
//! [matchmaker](crate::matchmaker) places into rooms. The same
//! `(seed, scenario)` pair always produces byte-identical arrivals, so
//! churned fleet reports stay as reproducible as static ones;
//! [`ChurnScenario::None`] generates nothing and the fleet skips the
//! plan path entirely, reproducing pre-churn reports byte for byte.
//!
//! All randomness comes from a private splitmix64 stream — no
//! `rand` dependency, no global state.

use std::fmt;

/// A synthetic player-population scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnScenario {
    /// No churn: the static full-duration rosters of earlier fleets.
    /// The default; byte-identical to pre-churn fleets.
    None,
    /// Steady state: ~75 % of fleet capacity present at start, then a
    /// Poisson trickle of arrivals with exponential session lengths.
    Steady,
    /// Flash crowd: a half-full steady fleet hit by a burst of
    /// short-session arrivals — all onto the *first* hosted game —
    /// compressed into the 30–40 % window of the run.
    Flash,
    /// Day curve: arrival rate ramps up to a mid-run peak and back
    /// down, the triangular approximation of a daily demand cycle.
    DayCurve,
}

impl ChurnScenario {
    /// Every scenario, in CLI/report order.
    pub const ALL: [ChurnScenario; 4] = [
        ChurnScenario::None,
        ChurnScenario::Steady,
        ChurnScenario::Flash,
        ChurnScenario::DayCurve,
    ];

    /// Parses a CLI name (`none`, `steady`, `flash`, `daycurve`).
    pub fn parse(s: &str) -> Option<ChurnScenario> {
        ChurnScenario::ALL.iter().copied().find(|c| c.name() == s)
    }

    /// The CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            ChurnScenario::None => "none",
            ChurnScenario::Steady => "steady",
            ChurnScenario::Flash => "flash",
            ChurnScenario::DayCurve => "daycurve",
        }
    }
}

impl fmt::Display for ChurnScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One player showing up at the door.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// When the player arrives, simulated ms from run start.
    pub at_ms: f64,
    /// How long they intend to stay, ms (clamped to the run end at
    /// placement time).
    pub session_ms: f64,
    /// Index into [`crate::fleet::FleetConfig::games`] of the game they
    /// want to play.
    pub game_idx: usize,
}

/// Shortest session worth placing, ms. Arrivals are clamped up to this
/// so a tail-of-run join still renders at least a few frames.
const MIN_SESSION_MS: f64 = 500.0;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f64 in `[0, 1)`.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Exponential variate with the given mean (inverse-CDF sampling).
fn exponential(state: &mut u64, mean: f64) -> f64 {
    let u = unit(state).max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

/// Generates the deterministic arrival list for a scenario.
///
/// `capacity` is the fleet's concurrent-seat count (`rooms * players`),
/// `n_games` the number of hosted games, `duration_ms` the run length.
/// Arrivals come back sorted by `at_ms` (ties keep generation order)
/// and every `at_ms` lies in `[0, duration_ms)`.
/// [`ChurnScenario::None`] returns an empty list.
pub fn generate_arrivals(
    scenario: ChurnScenario,
    capacity: usize,
    n_games: usize,
    duration_ms: f64,
    seed: u64,
) -> Vec<Arrival> {
    assert!(capacity > 0, "churn needs at least one seat");
    assert!(n_games > 0, "churn needs at least one game");
    assert!(duration_ms > 0.0, "churn needs a positive duration");
    let mut rng = seed ^ 0xC0E7_12E0_0000_0000u64.wrapping_add(scenario as u64);
    let mut arrivals: Vec<Arrival> = Vec::new();
    let push = |arrivals: &mut Vec<Arrival>, at_ms: f64, session_ms: f64, game_idx: usize| {
        if at_ms < duration_ms {
            arrivals.push(Arrival {
                at_ms,
                session_ms: session_ms.max(MIN_SESSION_MS),
                game_idx,
            });
        }
    };
    match scenario {
        ChurnScenario::None => {}
        ChurnScenario::Steady => {
            // Initial fill: three quarters of the seats taken at t=0,
            // staying an exponential while (mean 60 % of the run).
            let initial = (capacity * 3) / 4;
            for i in 0..initial.max(1) {
                let stay = exponential(&mut rng, duration_ms * 0.6);
                push(&mut arrivals, 0.0, stay, i % n_games);
            }
            // Then a Poisson trickle sized to roughly refill the seats
            // the initial cohort vacates.
            let rate_per_ms = capacity as f64 * 0.75 / duration_ms;
            let mut t = exponential(&mut rng, 1.0 / rate_per_ms);
            let mut i = 0usize;
            while t < duration_ms {
                let stay = exponential(&mut rng, duration_ms * 0.4);
                push(&mut arrivals, t, stay, i % n_games);
                t += exponential(&mut rng, 1.0 / rate_per_ms);
                i += 1;
            }
        }
        ChurnScenario::Flash => {
            // Base load: half the seats, full duration.
            let base = (capacity / 2).max(1);
            for i in 0..base {
                push(&mut arrivals, 0.0, duration_ms, i % n_games);
            }
            // The crowd: one full capacity's worth of short sessions,
            // uniform over the 30–40 % window, all onto game 0.
            for _ in 0..capacity.max(1) {
                let at = duration_ms * (0.3 + 0.1 * unit(&mut rng));
                let stay = exponential(&mut rng, duration_ms * 0.25);
                push(&mut arrivals, at, stay, 0);
            }
        }
        ChurnScenario::DayCurve => {
            // 1.5× capacity arrivals with a symmetric triangular
            // arrival-time density peaking mid-run (inverse CDF).
            let n = (capacity * 3 / 2).max(2);
            for i in 0..n {
                let u = unit(&mut rng);
                let frac = if u < 0.5 {
                    (u / 2.0).sqrt()
                } else {
                    1.0 - ((1.0 - u) / 2.0).sqrt()
                };
                let at = duration_ms * frac;
                let stay = exponential(&mut rng, duration_ms * 0.35);
                push(&mut arrivals, at, stay, i % n_games);
            }
        }
    }
    // Stable sort: equal arrival times keep generation order, so the
    // matchmaker sees a deterministic queue.
    arrivals.sort_by(|a, b| a.at_ms.partial_cmp(&b.at_ms).unwrap());
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_generates_no_arrivals() {
        assert!(generate_arrivals(ChurnScenario::None, 16, 2, 10_000.0, 7).is_empty());
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        for scenario in [
            ChurnScenario::Steady,
            ChurnScenario::Flash,
            ChurnScenario::DayCurve,
        ] {
            let a = generate_arrivals(scenario, 16, 2, 10_000.0, 7);
            let b = generate_arrivals(scenario, 16, 2, 10_000.0, 7);
            assert_eq!(a, b, "{scenario} must be seed-deterministic");
            let c = generate_arrivals(scenario, 16, 2, 10_000.0, 8);
            assert_ne!(a, c, "{scenario} must vary with the seed");
            assert!(!a.is_empty(), "{scenario} must generate arrivals");
        }
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        for scenario in ChurnScenario::ALL {
            let arrivals = generate_arrivals(scenario, 12, 3, 8_000.0, 41);
            let mut last = 0.0f64;
            for a in &arrivals {
                assert!(a.at_ms >= last, "sorted by arrival time");
                assert!(a.at_ms < 8_000.0, "arrivals land inside the run");
                assert!(a.session_ms >= MIN_SESSION_MS);
                assert!(a.game_idx < 3);
                last = a.at_ms;
            }
        }
    }

    #[test]
    fn flash_crowd_targets_the_first_game() {
        let arrivals = generate_arrivals(ChurnScenario::Flash, 16, 4, 10_000.0, 7);
        let burst: Vec<_> = arrivals.iter().filter(|a| a.at_ms > 0.0).collect();
        assert!(!burst.is_empty());
        assert!(burst.iter().all(|a| a.game_idx == 0));
        assert!(burst
            .iter()
            .all(|a| a.at_ms >= 3_000.0 && a.at_ms <= 4_000.0));
    }

    #[test]
    fn scenario_names_round_trip() {
        for scenario in ChurnScenario::ALL {
            assert_eq!(ChurnScenario::parse(scenario.name()), Some(scenario));
        }
        assert_eq!(ChurnScenario::parse("bogus"), None);
    }
}
