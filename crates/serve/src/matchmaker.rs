//! The matchmaker: capacity-aware placement of arrivals into rooms.
//!
//! Given the [churn engine's](crate::churn) arrival list, the
//! matchmaker decides *which room* every player lands in and *when* —
//! producing a [`MatchPlan`] of per-room rosters (presence windows) the
//! fleet installs before the epoch loop starts. Placement runs at plan
//! time, before any room is built, so the epoch loop stays the pure
//! seed-deterministic function it has always been: churn perturbs the
//! plan, never the replay.
//!
//! Two policies:
//!
//! * [`PlacementPolicy::FirstFit`] — the lowest-id room of the right
//!   game with a free seat. This is what the static fleet effectively
//!   did, and the baseline the affinity policy is measured against.
//! * [`PlacementPolicy::Affinity`] — scores every candidate room by the
//!   predicted *pose overlap* between the arriving player's spawn point
//!   and the current members' predicted positions (via
//!   [`PosePredictor::occupancy`]), weighted by remaining capacity.
//!   Coterie's whole economy is frame reuse between nearby players
//!   (§3 of the paper): packing players who will *look at the same
//!   things* into the same room raises the shared-store hit ratio that
//!   first-fit leaves on the table.
//!
//! When no room of the requested game has a seat, the arrival is
//! *queued* — deferred to the earliest seat release, if that wait is
//! short — or an *overflow room* is spawned. Both are counted in
//! [`MatchmakingMetrics`], which lands in the fleet report (and
//! `BENCH_fleet.json`) so the two policies can be compared per churn
//! scenario.

use crate::churn::{generate_arrivals, Arrival, ChurnScenario};
use crate::fleet::FleetConfig;
use crate::predict::{PosePredictor, PredictorKind};
use coterie_world::{scene_hotspots, GameId, GameSpec, Scene, Trace, TraceSet, Vec2};
use std::fmt;

/// How the matchmaker picks among candidate rooms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Lowest-id room with a free seat (the static fleet's implicit
    /// policy; the default).
    FirstFit,
    /// Highest predicted leaf-region overlap with current members,
    /// weighted by remaining capacity.
    Affinity,
}

impl PlacementPolicy {
    /// Every policy, in CLI/report order.
    pub const ALL: [PlacementPolicy; 2] = [PlacementPolicy::FirstFit, PlacementPolicy::Affinity];

    /// Parses a CLI name (`first-fit`, `affinity`).
    pub fn parse(s: &str) -> Option<PlacementPolicy> {
        PlacementPolicy::ALL.iter().copied().find(|p| p.name() == s)
    }

    /// The CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::Affinity => "affinity",
        }
    }
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One planned room: its game and the roster's presence windows.
///
/// The roster may be *larger* than the per-room seat count — players
/// rotate through seats over the run — but concurrent occupancy never
/// exceeds [`FleetConfig::players`] (enforced at plan time).
#[derive(Debug, Clone, PartialEq)]
pub struct RoomPlan {
    /// The game this room hosts.
    pub game: GameId,
    /// One `(join_ms, leave_ms)` presence window per roster slot.
    pub windows: Vec<(f64, f64)>,
    /// `true` if the matchmaker spawned this room beyond the
    /// provisioned count to absorb overflow.
    pub overflow: bool,
}

/// Matchmaking counters for the fleet report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchmakingMetrics {
    /// The placement policy that ran.
    pub policy: PlacementPolicy,
    /// The churn scenario that generated the arrivals.
    pub scenario: ChurnScenario,
    /// Total arrivals the churn engine generated.
    pub arrivals: u64,
    /// Arrivals placed into a room (always all of them today — the
    /// overflow path never drops).
    pub placed: u64,
    /// Arrivals that waited in the admission queue for a seat.
    pub queued: u64,
    /// Rooms spawned beyond the provisioned count.
    pub overflow_rooms: u64,
    /// Mean admission-queue wait over *all* placed arrivals, ms.
    pub mean_wait_ms: f64,
}

impl fmt::Display for MatchmakingMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "policy={} scenario={} arrivals={} placed={} queued={} overflow-rooms={} mean-wait={:.1}ms",
            self.policy,
            self.scenario,
            self.arrivals,
            self.placed,
            self.queued,
            self.overflow_rooms,
            self.mean_wait_ms
        )
    }
}

/// The matchmaker's output: final room list plus counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchPlan {
    /// Rooms with at least one roster slot, provisioned rooms first (in
    /// id order), overflow rooms after. Rooms no arrival ever joined
    /// are dropped.
    pub rooms: Vec<RoomPlan>,
    /// Placement counters.
    pub metrics: MatchmakingMetrics,
}

/// Roster slots per room, as a multiple of the concurrent seat count.
/// Bounds per-room state; beyond it the room stops taking arrivals.
const ROSTER_CAP_SEATS: usize = 4;

/// Probe-trace sampling interval for affinity scoring, seconds. Coarser
/// than the 60 Hz session traces — scoring needs positions, not frames.
const PROBE_INTERVAL_S: f64 = 0.1;

/// Pose-observation spacing fed to the predictor before scoring, ms.
const OBSERVE_SPACING_MS: f64 = 100.0;

struct RoomSlot {
    game_idx: usize,
    windows: Vec<(f64, f64)>,
    overflow: bool,
}

impl RoomSlot {
    /// Players present at time `t` (window starts are inclusive).
    fn occupancy(&self, t: f64) -> usize {
        self.windows
            .iter()
            .filter(|&&(s, e)| s <= t && t < e)
            .count()
    }
}

/// Lazily-built scoring state for the affinity policy: one scene per
/// game, one probe [`TraceSet`] per room.
struct AffinityProbes {
    players: usize,
    duration_s: f64,
    seed: u64,
    games: Vec<Option<(Scene, GameSpec, Vec<Vec2>)>>,
    traces: Vec<Option<TraceSet>>,
}

impl AffinityProbes {
    fn game(&mut self, config: &FleetConfig, game_idx: usize) -> &(Scene, GameSpec, Vec<Vec2>) {
        if self.games[game_idx].is_none() {
            let spec = GameSpec::for_game(config.games[game_idx]);
            let scene = spec.build_scene(self.seed);
            let hotspots = scene_hotspots(&scene);
            self.games[game_idx] = Some((scene, spec, hotspots));
        }
        self.games[game_idx].as_ref().unwrap()
    }

    fn trace_set(&mut self, config: &FleetConfig, room_id: usize, game_idx: usize) -> &TraceSet {
        if room_id >= self.traces.len() {
            self.traces.resize_with(room_id + 1, || None);
        }
        if self.traces[room_id].is_none() {
            let players = self.players;
            let duration_s = self.duration_s;
            // Same per-room trace-seed derivation the fleet uses, so
            // the probe approximates the movement the room will replay.
            let trace_seed = self
                .seed
                .wrapping_add((room_id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let (scene, spec, _) = self.game(config, game_idx);
            let set = TraceSet::generate(
                scene,
                spec,
                players,
                duration_s,
                PROBE_INTERVAL_S,
                trace_seed,
            );
            self.traces[room_id] = Some(set);
        }
        self.traces[room_id].as_ref().unwrap()
    }
}

/// Nearest-sample position on a probe trace at simulated time `t_ms`.
fn probe_position(trace: &Trace, t_ms: f64) -> Vec2 {
    let pts = trace.points();
    let interval_ms = trace.interval().max(1e-9) * 1000.0;
    let idx = ((t_ms / interval_ms) as usize).min(pts.len().saturating_sub(1));
    pts[idx].position
}

/// Predicted-overlap score of placing `arrival` into room `room_id`:
/// the [`PosePredictor::occupancy`] of the current members' predicted
/// positions around the arrival's spawn point, weighted by remaining
/// seats. Higher = better.
fn affinity_score(
    probes: &mut AffinityProbes,
    config: &FleetConfig,
    room_id: usize,
    room: &RoomSlot,
    arrival: &Arrival,
    at_ms: f64,
    free_seats: usize,
) -> f64 {
    let radius = {
        let (scene, _, _) = probes.game(config, arrival.game_idx);
        scene.grid().spacing() * 4.0
    };
    let hotspots = probes.game(config, arrival.game_idx).2.clone();
    let n_probe = probes.players.max(1);
    let members: Vec<usize> = room
        .windows
        .iter()
        .enumerate()
        .filter(|&(_, &(s, e))| s <= at_ms && at_ms < e)
        .map(|(slot, _)| slot)
        .collect();
    let spawn = {
        let set = probes.trace_set(config, room_id, room.game_idx);
        let slot = room.windows.len() % n_probe;
        probe_position(&set.traces()[slot], at_ms)
    };
    let mut predictor =
        PosePredictor::new(PredictorKind::Cv, hotspots).expect("Cv predictor always constructs");
    {
        let set = probes.trace_set(config, room_id, room.game_idx);
        for (i, &slot) in members.iter().enumerate() {
            let trace = &set.traces()[slot % n_probe];
            let t_prev = (at_ms - OBSERVE_SPACING_MS).max(0.0);
            predictor.observe(i, t_prev, probe_position(trace, t_prev));
            predictor.observe(i, at_ms, probe_position(trace, at_ms));
        }
    }
    let horizon = PosePredictor::horizon_ms(4);
    let overlap = predictor.occupancy(spawn, horizon, radius);
    // An empty room scores pure capacity (tiny epsilon overlap) so
    // affinity still spreads load when nothing is predictable yet.
    (overlap + 1e-3) * free_seats as f64
}

/// Runs the full plan: generate arrivals, place them, compact rooms.
///
/// [`ChurnScenario::None`] is rejected by assertion — the fleet skips
/// the plan path entirely in that case (byte-identity with pre-churn
/// fleets is preserved by *not running* the matchmaker, not by relying
/// on it being a no-op).
pub fn plan(config: &FleetConfig, scenario: ChurnScenario, policy: PlacementPolicy) -> MatchPlan {
    assert!(
        scenario != ChurnScenario::None,
        "ChurnScenario::None has no plan; the fleet takes the static path"
    );
    let duration_ms = config.duration_s * 1000.0;
    let capacity = config.players.max(1);
    let roster_cap = capacity * ROSTER_CAP_SEATS;
    // Queue-wait threshold: a tenth of the run, capped at 3 s — longer
    // than that and the player would rather be in a fresh room.
    let max_wait_ms = (duration_ms * 0.1).min(3_000.0);
    let arrivals = generate_arrivals(
        scenario,
        config.rooms * capacity,
        config.games.len(),
        duration_ms,
        config.seed,
    );
    let mut rooms: Vec<RoomSlot> = (0..config.rooms)
        .map(|i| RoomSlot {
            game_idx: i % config.games.len(),
            windows: Vec::new(),
            overflow: false,
        })
        .collect();
    let mut probes = AffinityProbes {
        players: capacity,
        duration_s: config.duration_s,
        seed: config.seed,
        games: vec![None; config.games.len()],
        traces: Vec::new(),
    };
    let mut queued = 0u64;
    let mut total_wait_ms = 0.0f64;
    let mut overflow_rooms = 0u64;
    for arrival in &arrivals {
        let t = arrival.at_ms;
        let candidates: Vec<usize> = rooms
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.game_idx == arrival.game_idx
                    && r.windows.len() < roster_cap
                    && r.occupancy(t) < capacity
            })
            .map(|(i, _)| i)
            .collect();
        let pick = match policy {
            PlacementPolicy::FirstFit => candidates.first().copied(),
            PlacementPolicy::Affinity => candidates
                .iter()
                .map(|&i| {
                    let free = capacity - rooms[i].occupancy(t);
                    let score = affinity_score(&mut probes, config, i, &rooms[i], arrival, t, free);
                    (i, score)
                })
                // Strict `>` keeps the lowest index on ties, matching
                // first-fit's determinism.
                .fold(None::<(usize, f64)>, |best, cur| match best {
                    Some((_, bs)) if bs >= cur.1 => best,
                    _ => Some(cur),
                })
                .map(|(i, _)| i),
        };
        let (room_id, join_ms) = match pick {
            Some(i) => (i, t),
            None => {
                // Admission queue: defer to the earliest seat release
                // among same-game rooms, if the wait is short enough.
                let release = rooms
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.game_idx == arrival.game_idx && r.windows.len() < roster_cap)
                    .filter_map(|(i, r)| {
                        r.windows
                            .iter()
                            .map(|&(_, e)| e)
                            .filter(|&e| e > t && e < duration_ms && r.occupancy(e) < capacity)
                            .fold(None::<f64>, |m, e| {
                                Some(m.map_or(e, |m| if e < m { e } else { m }))
                            })
                            .map(|e| (i, e))
                    })
                    .fold(None::<(usize, f64)>, |best, (i, e)| match best {
                        Some((_, be)) if be <= e => best,
                        _ => Some((i, e)),
                    });
                match release {
                    Some((i, e)) if e - t <= max_wait_ms => {
                        queued += 1;
                        total_wait_ms += e - t;
                        (i, e)
                    }
                    _ => {
                        rooms.push(RoomSlot {
                            game_idx: arrival.game_idx,
                            windows: Vec::new(),
                            overflow: true,
                        });
                        overflow_rooms += 1;
                        (rooms.len() - 1, t)
                    }
                }
            }
        };
        let end_ms = (join_ms + arrival.session_ms).min(duration_ms);
        rooms[room_id].windows.push((join_ms, end_ms));
    }
    let placed = arrivals.len() as u64;
    let room_plans: Vec<RoomPlan> = rooms
        .into_iter()
        .filter(|r| !r.windows.is_empty())
        .map(|r| RoomPlan {
            game: config.games[r.game_idx],
            windows: r.windows,
            overflow: r.overflow,
        })
        .collect();
    MatchPlan {
        rooms: room_plans,
        metrics: MatchmakingMetrics {
            policy,
            scenario,
            arrivals: placed,
            placed,
            queued,
            overflow_rooms,
            mean_wait_ms: if placed == 0 {
                0.0
            } else {
                total_wait_ms / placed as f64
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rooms: usize, players: usize) -> FleetConfig {
        FleetConfig {
            rooms,
            players,
            duration_s: 8.0,
            ..FleetConfig::default()
        }
    }

    /// Max concurrent occupancy over a room's windows. Occupancy only
    /// changes at window starts, so checking each start suffices.
    fn peak_occupancy(room: &RoomPlan) -> usize {
        room.windows
            .iter()
            .map(|&(s, _)| {
                room.windows
                    .iter()
                    .filter(|&&(s2, e2)| s2 <= s && s < e2)
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn plans_are_deterministic() {
        for policy in PlacementPolicy::ALL {
            let a = plan(&cfg(4, 2), ChurnScenario::Steady, policy);
            let b = plan(&cfg(4, 2), ChurnScenario::Steady, policy);
            assert_eq!(a, b, "{policy} plan must be deterministic");
            assert!(a.metrics.arrivals > 0);
            assert_eq!(a.metrics.placed, a.metrics.arrivals, "nothing is dropped");
        }
    }

    #[test]
    fn concurrency_never_exceeds_capacity() {
        for scenario in [
            ChurnScenario::Steady,
            ChurnScenario::Flash,
            ChurnScenario::DayCurve,
        ] {
            for policy in PlacementPolicy::ALL {
                let p = plan(&cfg(3, 2), scenario, policy);
                for (i, room) in p.rooms.iter().enumerate() {
                    assert!(
                        peak_occupancy(room) <= 2,
                        "{scenario}/{policy} room {i} over capacity"
                    );
                    assert!(!room.windows.is_empty(), "empty rooms are dropped");
                    for &(s, e) in &room.windows {
                        assert!(s < e, "windows are non-degenerate");
                        assert!(e <= 8_000.0, "windows end inside the run");
                    }
                }
            }
        }
    }

    #[test]
    fn flash_crowd_spawns_overflow_rooms() {
        let p = plan(&cfg(2, 2), ChurnScenario::Flash, PlacementPolicy::FirstFit);
        assert!(
            p.metrics.overflow_rooms > 0,
            "a capacity-sized burst on one game must overflow: {:?}",
            p.metrics
        );
        assert_eq!(
            p.rooms.iter().filter(|r| r.overflow).count() as u64,
            p.metrics.overflow_rooms
        );
    }

    #[test]
    fn queueing_accrues_wait_time() {
        // Steady churn on a tiny fleet keeps seats contended; some
        // arrival should ride the admission queue.
        let mut found = false;
        for seed in 0..6 {
            let config = FleetConfig { seed, ..cfg(2, 2) };
            let p = plan(&config, ChurnScenario::Steady, PlacementPolicy::FirstFit);
            if p.metrics.queued > 0 {
                assert!(p.metrics.mean_wait_ms > 0.0);
                found = true;
                break;
            }
        }
        assert!(found, "no seed produced a queued arrival");
    }

    #[test]
    fn affinity_and_first_fit_diverge() {
        let config = cfg(4, 2);
        let ff = plan(&config, ChurnScenario::Steady, PlacementPolicy::FirstFit);
        let af = plan(&config, ChurnScenario::Steady, PlacementPolicy::Affinity);
        assert_eq!(ff.metrics.arrivals, af.metrics.arrivals);
        assert_ne!(
            ff.rooms, af.rooms,
            "policies should produce different placements on a contended fleet"
        );
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in PlacementPolicy::ALL {
            assert_eq!(PlacementPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(PlacementPolicy::parse("bogus"), None);
    }
}
