//! Property tests for the FI fault plane (PR 2 acceptance properties):
//!
//! (a) the same seed + scenario always reproduces identical
//!     [`FleetMetrics`];
//! (b) reported avatar staleness never exceeds the dead-reckoning cap;
//! (c) a lossless (`NetScenario::None`) run is bit-for-bit identical to
//!     a run predating the fault plane (the default config).
//!
//! Fleet runs are expensive (each builds worlds and runs the render
//! measurement pass), so the configs are tiny and the case counts low —
//! the properties are about determinism and invariants, not coverage.

use coterie_net::NetScenario;
use coterie_serve::{Fleet, FleetConfig};
use coterie_sim::DEAD_RECKON_CAP_MS;
use proptest::prelude::*;

fn quick(seed: u64, net: NetScenario) -> FleetConfig {
    FleetConfig {
        rooms: 2,
        players: 2,
        duration_s: 2.0,
        size_samples: 2,
        seed,
        net,
        ..FleetConfig::default()
    }
}

const LOSSY: [NetScenario; 4] = [
    NetScenario::Wifi,
    NetScenario::BurstLoss,
    NetScenario::LatencySpikes,
    NetScenario::RelayOutage,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn same_seed_and_scenario_reproduce_identical_metrics(
        seed in 1u64..1_000,
        scenario_idx in 0usize..LOSSY.len(),
    ) {
        let scenario = LOSSY[scenario_idx];
        let a = Fleet::new(quick(seed, scenario)).run();
        let b = Fleet::new(quick(seed, scenario)).run();
        prop_assert_eq!(&a.metrics, &b.metrics);
        prop_assert_eq!(format!("{}", a.metrics), format!("{}", b.metrics));
    }

    #[test]
    fn staleness_never_exceeds_dead_reckoning_cap(seed in 1u64..1_000) {
        let report = Fleet::new(quick(seed, NetScenario::BurstLoss)).run();
        for room in &report.rooms {
            prop_assert!(
                room.fi().max_staleness_ms <= DEAD_RECKON_CAP_MS,
                "room {} staleness {} ms breaches the {} ms cap",
                room.id,
                room.fi().max_staleness_ms,
                DEAD_RECKON_CAP_MS
            );
        }
        prop_assert!(report.metrics.fi_max_staleness_ms <= DEAD_RECKON_CAP_MS);
    }

    #[test]
    fn lossless_scenario_matches_pre_fault_plane_run(seed in 1u64..1_000) {
        // `net` defaults to None, so the second config is exactly what
        // callers built before the fault plane existed.
        let explicit = Fleet::new(quick(seed, NetScenario::None)).run();
        let legacy = Fleet::new(FleetConfig {
            rooms: 2,
            players: 2,
            duration_s: 2.0,
            size_samples: 2,
            seed,
            ..FleetConfig::default()
        })
        .run();
        prop_assert_eq!(&explicit.metrics, &legacy.metrics);
        prop_assert_eq!(explicit.metrics.fi_syncs, 0);
        prop_assert_eq!(explicit.metrics.fi_retries, 0);
        prop_assert_eq!(
            format!("{}", explicit.metrics),
            format!("{}", legacy.metrics)
        );
    }
}
