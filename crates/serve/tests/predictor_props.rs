//! Property tests for the pose-predictive speculation plane:
//!
//! (a) `--predictor none` is bit-for-bit identical to a fleet predating
//!     the predictor plane (the default config) — metrics, Display and
//!     store stats — at any seed/room count. Worker count cannot perturb
//!     this either: `coterie_parallel::par_map_ws` reassembles results
//!     in input order and the fleet serializes store transactions in
//!     room-id order, so parallel scheduling never reaches the report.
//! (b) `cv` and `vpm` are deterministic: the same seed reproduces the
//!     same speculation decisions (spec counters) and the same report.
//! (c) predictor-driven reports carry the speculation block; the
//!     baseline report does not.
//!
//! Fleet runs are expensive (world build + measurement pass per room),
//! so configs are tiny and case counts low — these are determinism and
//! invariant properties, not coverage sweeps.

use coterie_serve::{Fleet, FleetConfig, PredictorKind};
use proptest::prelude::*;

fn quick(rooms: usize, seed: u64, predictor: PredictorKind) -> FleetConfig {
    FleetConfig {
        rooms,
        players: 2,
        duration_s: 2.0,
        size_samples: 2,
        seed,
        predictor,
        ..FleetConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn predictor_none_is_byte_identical_to_default(
        rooms in 1usize..3,
        seed in 0u64..1_000,
    ) {
        // The default config IS the pre-predictor fleet: the predictor
        // field defaults to None and every predictor-less call site
        // (golden tables, BENCH_fleet.json, the CLI without the flag)
        // goes through it.
        let plain = Fleet::new(FleetConfig {
            rooms,
            players: 2,
            duration_s: 2.0,
            size_samples: 2,
            seed,
            ..FleetConfig::default()
        }).run();
        let none = Fleet::new(quick(rooms, seed, PredictorKind::None)).run();
        prop_assert_eq!(&plain.metrics, &none.metrics);
        prop_assert_eq!(plain.store_stats, none.store_stats);
        prop_assert_eq!(
            format!("{}", plain.metrics),
            format!("{}", none.metrics)
        );
        // And no speculation block leaks into the baseline report.
        let shown = format!("{}", none.metrics);
        prop_assert!(!shown.contains("speculation"), "leaked block: {shown}");
    }

    #[test]
    fn predictors_are_deterministic(
        seed in 0u64..1_000,
        kind_idx in 0usize..2,
    ) {
        let kind = [PredictorKind::Cv, PredictorKind::Vpm][kind_idx];
        let a = Fleet::new(quick(2, seed, kind)).run();
        let b = Fleet::new(quick(2, seed, kind)).run();
        // Identical speculation decisions, not just identical topline
        // numbers: the spec counters count every admit/reject/use.
        prop_assert_eq!(a.store_stats, b.store_stats);
        prop_assert_eq!(&a.metrics, &b.metrics);
        prop_assert_eq!(format!("{}", a.metrics), format!("{}", b.metrics));
    }
}

#[test]
fn predictor_reports_carry_speculation_block() {
    let report = Fleet::new(quick(2, 7, PredictorKind::Vpm)).run();
    assert!(
        report.store_stats.spec_rendered > 0,
        "vpm fleets must speculate"
    );
    let shown = format!("{}", report.metrics);
    assert!(shown.contains("speculation vpm"), "got: {shown}");
    assert!(shown.contains("prediction  precision"), "got: {shown}");
    assert_eq!(report.metrics.predictor, PredictorKind::Vpm);
}
