//! Property tests for the sharded-store primitives: the consistent-hash
//! ring (balance, minimal movement on reshard) and the [`StoreStats`]
//! algebra (NaN-safe bounded ratios, order-independent merges).
//!
//! These are the invariants the fleet leans on: the ring decides which
//! worker owns a partition, so imbalance or gratuitous movement turns
//! directly into forwards and cold caches; the stats fold runs in
//! whatever order the exchange visits partitions, so it must be
//! associative and commutative or two workers would report different
//! fleet totals.

use coterie_serve::{partition_key, HashRing, StoreStats};
use coterie_world::GameId;
use proptest::prelude::*;

/// The partition keys a fleet actually routes: every game crossed with
/// a contiguous band of leaf regions.
fn key_census(leaves: u32) -> Vec<u64> {
    let mut keys = Vec::new();
    for &game in &GameId::ALL {
        for leaf in 0..leaves {
            keys.push(partition_key(game, leaf));
        }
    }
    keys
}

/// A counter value that is either small or close to `u64::MAX`, so
/// merges exercise the saturating path.
fn any_count() -> impl Strategy<Value = u64> {
    (proptest::bool::ANY, 0u64..1000).prop_map(|(big, v)| if big { u64::MAX - v } else { v })
}

fn any_stats() -> impl Strategy<Value = StoreStats> {
    (
        (
            any_count(),
            any_count(),
            any_count(),
            any_count(),
            any_count(),
            any_count(),
            any_count(),
        ),
        (
            any_count(),
            any_count(),
            any_count(),
            any_count(),
            any_count(),
            any_count(),
        ),
    )
        .prop_map(
            |(
                (hits, misses, insertions, duplicates, replacements, evictions, spec_rendered),
                (spec_used, spec_hits, spec_rejected, forwards, replica_hits, replica_inserts),
            )| StoreStats {
                hits,
                misses,
                insertions,
                duplicates,
                replacements,
                evictions,
                spec_rendered,
                spec_used,
                spec_hits,
                spec_rejected,
                forwards,
                replica_hits,
                replica_inserts,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No shard owns a grossly outsized or starved share of the
    /// partition keys: with 64 vnodes per shard the loaded-to-mean
    /// ratio stays within small constant factors.
    #[test]
    fn ring_balances_partition_keys(shards in 2u16..=16, leaves in 256u32..1024) {
        let ring = HashRing::new(shards);
        let keys = key_census(leaves);
        let mut loads = vec![0u64; shards as usize];
        for &key in &keys {
            loads[ring.owner_of(key) as usize] += 1;
        }
        let mean = keys.len() as f64 / shards as f64;
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        prop_assert!(max <= 2.0 * mean, "max load {max} vs mean {mean} ({shards} shards)");
        prop_assert!(min >= mean / 3.0, "min load {min} vs mean {mean} ({shards} shards)");
    }

    /// Growing the fleet by one worker only moves keys *to* the new
    /// worker — no key shuffles between surviving shards — and the
    /// moved share stays close to the fair 1/(N+1) fraction. This is
    /// the property that makes reshard cheap: surviving partitions
    /// keep their caches.
    #[test]
    fn reshard_moves_only_a_fair_share_to_the_new_worker(
        shards in 1u16..=12,
        leaves in 256u32..1024,
    ) {
        let before = HashRing::new(shards);
        let after = HashRing::new(shards + 1);
        let keys = key_census(leaves);
        let mut moved = 0u64;
        for &key in &keys {
            let was = before.owner_of(key);
            let now = after.owner_of(key);
            if was != now {
                prop_assert_eq!(
                    now, shards,
                    "key moved between surviving shards {} -> {}", was, now
                );
                moved += 1;
            }
        }
        let fair = keys.len() as f64 / (shards as f64 + 1.0);
        prop_assert!(
            (moved as f64) <= 2.0 * fair,
            "{moved} keys moved, fair share {fair} ({shards} -> {} shards)", shards + 1
        );
    }

    /// `merged` is commutative and associative for arbitrary counter
    /// values, including near-`u64::MAX` operands that saturate: the
    /// fleet total cannot depend on which order the exchange visits
    /// partitions.
    #[test]
    fn stats_merge_is_order_independent(
        a in any_stats(),
        b in any_stats(),
        c in any_stats(),
    ) {
        prop_assert_eq!(a.merged(b), b.merged(a));
        prop_assert_eq!(a.merged(b).merged(c), a.merged(b.merged(c)));
        // Identity: the default (all-zero) stats are a neutral element.
        prop_assert_eq!(a.merged(StoreStats::default()), a);
    }

    /// Every ratio helper stays finite and in `[0, 1]` for arbitrary
    /// counters — zero traffic yields 0, never NaN, and huge counters
    /// never overflow into infinity.
    #[test]
    fn ratio_helpers_are_nan_safe_and_bounded(a in any_stats(), b in any_stats()) {
        for s in [a, b, a.merged(b), StoreStats::default()] {
            for ratio in [s.hit_ratio(), s.spec_precision(), s.spec_recall()] {
                prop_assert!(ratio.is_finite(), "{ratio} from {s:?}");
                prop_assert!((0.0..=1.0).contains(&ratio), "{ratio} from {s:?}");
            }
        }
    }
}
