//! Minimal 2-D / 3-D vector math used throughout the workspace.
//!
//! Coordinates are in meters. The world uses a right-handed frame with
//! `y` pointing up; players move on the `x`–`z` ground plane (the paper's
//! virtual worlds are 2-D for movement purposes, §4.3).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector on the ground plane (`x`, `z`), in meters.
///
/// ```
/// use coterie_world::Vec2;
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.length(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// East-west component in meters.
    pub x: f64,
    /// North-south component in meters.
    pub z: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, z: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, z: f64) -> Self {
        Vec2 { x, z }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f64 {
        self.x.hypot(self.z)
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.z * self.z
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).length()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).length_sq()
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.z * other.z
    }

    /// Returns the vector scaled to unit length, or zero if degenerate.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        if len <= f64::EPSILON {
            Vec2::ZERO
        } else {
            self / len
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Rotates the vector by `angle` radians (counter-clockwise when viewed
    /// from above, i.e. from +y).
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.z * s, self.x * s + self.z * c)
    }

    /// Heading angle in radians measured from the +z axis toward +x,
    /// matching the azimuth convention used by the panoramic renderer.
    #[inline]
    pub fn heading(self) -> f64 {
        self.x.atan2(self.z)
    }

    /// Lifts the vector to 3-D at the given height.
    #[inline]
    pub fn with_y(self, y: f64) -> Vec3 {
        Vec3::new(self.x, y, self.z)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.z + rhs.z)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.z / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.z)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.z)
    }
}

/// A 3-D vector / point, in meters, `y` up.
///
/// ```
/// use coterie_world::Vec3;
/// let eye = Vec3::new(0.0, 1.7, 0.0);
/// let obj = Vec3::new(3.0, 1.7, 4.0);
/// assert_eq!(eye.distance(obj), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// East-west component in meters.
    pub x: f64,
    /// Vertical component in meters (up).
    pub y: f64,
    /// North-south component in meters.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).length()
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Returns the vector scaled to unit length, or zero if degenerate.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len <= f64::EPSILON {
            Vec3::ZERO
        } else {
            self / len
        }
    }

    /// Projection onto the ground plane (drops `y`).
    #[inline]
    pub fn ground(self) -> Vec2 {
        Vec2::new(self.x, self.z)
    }

    /// Horizontal (ground-plane) distance to another point.
    #[inline]
    pub fn ground_distance(self, other: Vec3) -> f64 {
        self.ground().distance(other.ground())
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl From<Vec2> for Vec3 {
    /// Lifts a ground-plane vector to 3-D with `y = 0`.
    #[inline]
    fn from(v: Vec2) -> Vec3 {
        Vec3::new(v.x, 0.0, v.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn vec2_length_and_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.length(), 5.0);
        assert_eq!(a.length_sq(), 25.0);
        assert_eq!(Vec2::ZERO.distance(a), 5.0);
        assert_eq!(Vec2::ZERO.distance_sq(a), 25.0);
    }

    #[test]
    fn vec2_normalized_unit_length() {
        let v = Vec2::new(10.0, -7.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn vec2_rotation_quarter_turn() {
        let v = Vec2::new(0.0, 1.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!((v.x - (-1.0)).abs() < 1e-12);
        assert!(v.z.abs() < 1e-12);
    }

    #[test]
    fn vec2_heading_matches_azimuth_convention() {
        // +z is heading 0; +x is heading pi/2.
        assert!(Vec2::new(0.0, 1.0).heading().abs() < 1e-12);
        assert!((Vec2::new(1.0, 0.0).heading() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn vec2_lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn vec3_arithmetic_and_length() {
        let a = Vec3::new(1.0, 2.0, 2.0);
        assert_eq!(a.length(), 3.0);
        let b = Vec3::new(1.0, 0.0, 0.0);
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a + b, Vec3::new(2.0, 2.0, 2.0));
        assert_eq!((a * 2.0).length(), 6.0);
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        let c = a.cross(b);
        assert_eq!(c, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(c.dot(a), 0.0);
        assert_eq!(c.dot(b), 0.0);
    }

    #[test]
    fn vec3_ground_projection() {
        let p = Vec3::new(3.0, 99.0, 4.0);
        assert_eq!(p.ground(), Vec2::new(3.0, 4.0));
        assert_eq!(p.ground_distance(Vec3::new(0.0, -5.0, 0.0)), 5.0);
    }

    #[test]
    fn conversion_from_vec2() {
        let v: Vec3 = Vec2::new(1.0, 2.0).into();
        assert_eq!(v, Vec3::new(1.0, 0.0, 2.0));
        assert_eq!(Vec2::new(1.0, 2.0).with_y(5.0), Vec3::new(1.0, 5.0, 2.0));
    }

    #[test]
    fn assign_ops() {
        let mut a = Vec2::new(1.0, 1.0);
        a += Vec2::new(1.0, 2.0);
        assert_eq!(a, Vec2::new(2.0, 3.0));
        a -= Vec2::new(2.0, 3.0);
        assert_eq!(a, Vec2::ZERO);
        let mut b = Vec3::new(1.0, 1.0, 1.0);
        b += Vec3::new(0.0, 1.0, 0.0);
        b -= Vec3::new(1.0, 0.0, 0.0);
        assert_eq!(b, Vec3::new(0.0, 2.0, 1.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Vec2::new(1.0, 2.0)), "(1.000, 2.000)");
        assert_eq!(
            format!("{}", Vec3::new(1.0, 2.0, 3.0)),
            "(1.000, 2.000, 3.000)"
        );
    }
}
