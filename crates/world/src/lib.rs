//! # coterie-world
//!
//! Virtual-world substrate for the Coterie reproduction.
//!
//! The original Coterie system (ASPLOS 2020) evaluated nine Unity Asset
//! Store games on Google Daydream. This crate replaces Unity's scene graph
//! with a self-contained procedural world model that preserves the
//! *statistics* the paper's algorithms depend on:
//!
//! * world dimensions and grid-point counts matching Table 3 of the paper,
//! * per-game object-density fields (including Viking Village's high
//!   density variance and the sparse racing worlds with dense start/finish
//!   areas),
//! * genre-specific player movement (track following, roaming,
//!   follow-the-leader parties),
//! * a 2-D quadtree partitioner used by the adaptive cutoff scheme.
//!
//! # Example
//!
//! ```
//! use coterie_world::{GameId, GameSpec};
//!
//! let spec = GameSpec::for_game(GameId::VikingVillage);
//! let scene = spec.build_scene(7);
//! assert!(scene.objects().len() > 100);
//! // Triangle density can be queried at any location (used by the
//! // adaptive cutoff scheme to satisfy Constraint 1).
//! let p = scene.bounds().center();
//! let _tris = scene.triangles_within(p, 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod games;
pub mod grid;
pub mod head;
pub mod io;
pub mod noise;
pub mod object;
pub mod quadtree;
pub mod scene;
pub mod terrain;
pub mod trace;
pub mod trajectory;
pub mod vec;

pub use games::{GameCatalog, GameGenre, GameId, GameSpec};
pub use grid::{GridPoint, GridSpec};
pub use head::{HeadModel, HeadPose};
pub use object::{AngularExtent, ObjectId, ObjectKind, SceneObject};
pub use quadtree::{LeafId, Quadtree, QuadtreeStats, Rect};
pub use scene::Scene;
pub use terrain::{Terrain, TerrainSampler};
pub use trace::{Trace, TracePoint, TraceSet};
pub use trajectory::{scene_hotspots, Trajectory, TrajectoryError, TrajectoryKind};
pub use vec::{Vec2, Vec3};
