//! Recorded movement traces.
//!
//! The paper's similarity and caching experiments all run on recorded
//! player trajectories: "We record the player trajectory in the virtual
//! world during game play ... then offline generate the panoramic BE frame
//! for each grid point in the trajectory" (§4.1). A [`Trace`] is the
//! sampled record of one player's movement; a [`TraceSet`] bundles all
//! players of one session.

use crate::games::GameSpec;
use crate::grid::{GridPoint, GridSpec};
use crate::scene::Scene;
use crate::trajectory::Trajectory;
use crate::vec::Vec2;
use serde::{Deserialize, Serialize};

/// One time-stamped sample of a player's pose.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Time since session start, seconds.
    pub time: f64,
    /// Ground-plane position.
    pub position: Vec2,
    /// View heading in radians (azimuth).
    pub yaw: f64,
}

/// A sampled movement trace for one player.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    points: Vec<TracePoint>,
    /// Sampling interval, seconds.
    interval: f64,
}

impl Trace {
    /// Records a trajectory at a fixed sampling interval (the paper's
    /// clients sample at the 60 FPS vsync, i.e. 1/60 s).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not strictly positive.
    pub fn record(trajectory: &Trajectory, duration: f64, interval: f64) -> Trace {
        assert!(interval > 0.0, "sampling interval must be positive");
        let steps = (duration / interval).floor() as usize;
        let mut points = Vec::with_capacity(steps + 1);
        for s in 0..=steps {
            let t = s as f64 * interval;
            points.push(TracePoint {
                time: t,
                position: trajectory.position(t),
                yaw: trajectory.heading(t),
            });
        }
        Trace { points, interval }
    }

    /// Reassembles a trace from raw parts (used by the binary trace
    /// format in [`crate::io`]).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not strictly positive.
    pub fn from_parts(points: Vec<TracePoint>, interval: f64) -> Trace {
        assert!(interval > 0.0, "sampling interval must be positive");
        Trace { points, interval }
    }

    /// The sampled points in time order.
    #[inline]
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Sampling interval in seconds.
    #[inline]
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Session duration covered, seconds.
    pub fn duration(&self) -> f64 {
        self.points.last().map(|p| p.time).unwrap_or(0.0)
    }

    /// The sequence of *distinct consecutive* grid points visited — the
    /// paper's per-grid-point frame request stream. Consecutive samples
    /// that snap to the same grid point are collapsed.
    pub fn grid_path(&self, grid: &GridSpec) -> Vec<GridPoint> {
        let mut path = Vec::new();
        for p in &self.points {
            let gp = grid.snap(p.position);
            if path.last() != Some(&gp) {
                path.push(gp);
            }
        }
        path
    }

    /// Total ground distance travelled, meters.
    pub fn distance_travelled(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].position.distance(w[1].position))
            .sum()
    }
}

/// All players' traces for one multiplayer session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    traces: Vec<Trace>,
}

impl TraceSet {
    /// Simulates an `n_players` session of `duration` seconds in `scene`
    /// and records every player at `interval` seconds.
    pub fn generate(
        scene: &Scene,
        spec: &GameSpec,
        n_players: usize,
        duration: f64,
        interval: f64,
        seed: u64,
    ) -> TraceSet {
        let traces = (0..n_players)
            .map(|p| {
                let traj = Trajectory::generate(scene, spec, p, n_players, duration, seed);
                Trace::record(&traj, duration, interval)
            })
            .collect();
        TraceSet { traces }
    }

    /// Per-player traces.
    #[inline]
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Number of players.
    #[inline]
    pub fn player_count(&self) -> usize {
        self.traces.len()
    }

    /// Trace of one player.
    pub fn player(&self, idx: usize) -> Option<&Trace> {
        self.traces.get(idx)
    }
}

impl FromIterator<Trace> for TraceSet {
    fn from_iter<I: IntoIterator<Item = Trace>>(iter: I) -> Self {
        TraceSet {
            traces: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::GameId;

    fn session() -> (Scene, GameSpec) {
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(4);
        (scene, spec)
    }

    #[test]
    fn record_covers_duration() {
        let (scene, spec) = session();
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 10.0, 1);
        let trace = Trace::record(&traj, 10.0, 1.0 / 60.0);
        assert_eq!(trace.points().len(), 601);
        assert!((trace.duration() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn grid_path_collapses_repeats() {
        let (scene, spec) = session();
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 20.0, 1);
        let trace = Trace::record(&traj, 20.0, 1.0 / 60.0);
        let path = trace.grid_path(scene.grid());
        assert!(!path.is_empty());
        for w in path.windows(2) {
            assert_ne!(w[0], w[1], "consecutive duplicates must collapse");
        }
        // Player at 2.5 m/s on a 1/32 m grid visits many grid points.
        assert!(path.len() > 100, "path too short: {}", path.len());
    }

    #[test]
    fn grid_path_steps_are_small() {
        // Adjacent path entries should be spatially adjacent (few hops):
        // the player moves continuously.
        let (scene, spec) = session();
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 20.0, 2);
        let trace = Trace::record(&traj, 20.0, 1.0 / 60.0);
        let path = trace.grid_path(scene.grid());
        for w in path.windows(2) {
            assert!(w[0].hops(w[1]) <= 4, "jump of {} hops", w[0].hops(w[1]));
        }
    }

    #[test]
    fn distance_travelled_positive_and_bounded() {
        let (scene, spec) = session();
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 30.0, 3);
        let trace = Trace::record(&traj, 30.0, 1.0 / 60.0);
        let d = trace.distance_travelled();
        assert!(d > 5.0, "barely moved: {d} m");
        assert!(d <= spec.player_speed * 30.0 * 1.7, "moved too far: {d} m");
    }

    #[test]
    fn trace_set_has_all_players() {
        let (scene, spec) = session();
        let set = TraceSet::generate(&scene, &spec, 4, 5.0, 0.1, 9);
        assert_eq!(set.player_count(), 4);
        assert!(set.player(3).is_some());
        assert!(set.player(4).is_none());
        // Players differ.
        let a = set.player(0).unwrap().points()[20].position;
        let b = set.player(1).unwrap().points()[20].position;
        assert_ne!(a, b);
    }

    #[test]
    fn trace_set_from_iterator() {
        let (scene, spec) = session();
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 2.0, 1);
        let set: TraceSet = std::iter::repeat_n(Trace::record(&traj, 2.0, 0.5), 3).collect();
        assert_eq!(set.player_count(), 3);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let (scene, spec) = session();
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 2.0, 1);
        let _ = Trace::record(&traj, 2.0, 0.0);
    }

    #[test]
    fn clone_preserves_trace() {
        let (scene, spec) = session();
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 2.0, 1);
        let trace = Trace::record(&traj, 2.0, 0.25);
        let clone = trace.clone();
        assert_eq!(trace, clone);
    }
}
