//! Player movement generators.
//!
//! The caching results in the paper depend on movement *statistics* —
//! players re-visit nearby (but never exactly identical) locations, racers
//! share a track without sharing a path, adventure parties follow each
//! other closely (§4.1, §4.6). These generators reproduce those statistics
//! with seeded randomness.

use crate::games::{GameGenre, GameSpec};
use crate::noise::{fbm, SmallRng};
use crate::scene::Scene;
use crate::vec::Vec2;
use serde::{Deserialize, Serialize};

/// The movement archetype used for a player.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrajectoryKind {
    /// Follow the closed racing track with lane jitter (racing games).
    Track,
    /// Random-waypoint roaming over the reachable area (shooters).
    Roam,
    /// Trail a leader with a small offset (group adventure).
    FollowLeader,
    /// Small movements around a home spot (indoor static sports).
    Station,
}

impl TrajectoryKind {
    /// Default archetype for a genre.
    pub fn for_genre(genre: GameGenre) -> TrajectoryKind {
        match genre {
            GameGenre::RacingChasing => TrajectoryKind::Track,
            GameGenre::CompetingShooting => TrajectoryKind::Roam,
            GameGenre::GroupAdventure => TrajectoryKind::FollowLeader,
            GameGenre::StaticSports => TrajectoryKind::Station,
        }
    }
}

/// Why a trajectory could not be generated for a scene/spec pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryError {
    /// A [`TrajectoryKind::Track`] trajectory was requested for a scene
    /// whose reachable area is not a track (e.g. a racing spec paired
    /// with a scene built from an open-world spec).
    MissingTrack,
}

impl std::fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrajectoryError::MissingTrack => {
                write!(f, "track trajectory requires a scene with a track")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

/// A continuous-time movement path, stored as piecewise-linear knots.
///
/// ```
/// use coterie_world::{GameId, GameSpec, Trajectory};
/// let spec = GameSpec::for_game(GameId::Fps);
/// let scene = spec.build_scene(1);
/// let traj = Trajectory::generate(&scene, &spec, 0, 1, 60.0, 42);
/// let p0 = traj.position(0.0);
/// let p1 = traj.position(30.0);
/// assert!(scene.bounds().contains(p0));
/// assert!(scene.bounds().contains(p1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Knots as `(time_seconds, position)`; times strictly increasing.
    knots: Vec<(f64, Vec2)>,
    kind: TrajectoryKind,
}

impl Trajectory {
    /// Generates the movement of `player` (0-based, out of `n_players`)
    /// for `duration` seconds of play in `scene`.
    ///
    /// Multiplayer proximity follows the genre: racers circulate the same
    /// track staggered by a couple of seconds; adventure parties trail a
    /// common leader path; shooters roam around shared hotspots.
    ///
    /// If the genre asks for a track trajectory but the scene has no
    /// track (a mismatched scene/spec pairing), the player falls back
    /// to roaming the reachable area instead of failing; use
    /// [`Trajectory::try_generate`] to detect that mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive or `player >= n_players`.
    pub fn generate(
        scene: &Scene,
        spec: &GameSpec,
        player: usize,
        n_players: usize,
        duration: f64,
        seed: u64,
    ) -> Trajectory {
        Trajectory::try_generate(scene, spec, player, n_players, duration, seed).unwrap_or_else(
            |TrajectoryError::MissingTrack| {
                // Documented fallback: roam the reachable area with the
                // same seed so the result stays deterministic.
                let knots = roam_knots(scene, spec, player, duration, seed);
                Trajectory {
                    knots,
                    kind: TrajectoryKind::Roam,
                }
            },
        )
    }

    /// Like [`Trajectory::generate`], but reports a scene/spec mismatch
    /// instead of silently falling back.
    ///
    /// # Errors
    ///
    /// Returns [`TrajectoryError::MissingTrack`] when the genre requires
    /// a [`TrajectoryKind::Track`] trajectory and the scene's reachable
    /// area is not a track.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive or `player >= n_players`.
    pub fn try_generate(
        scene: &Scene,
        spec: &GameSpec,
        player: usize,
        n_players: usize,
        duration: f64,
        seed: u64,
    ) -> Result<Trajectory, TrajectoryError> {
        assert!(duration > 0.0, "duration must be positive");
        assert!(player < n_players.max(1), "player index out of range");
        let kind = TrajectoryKind::for_genre(spec.genre);
        let knots = match kind {
            TrajectoryKind::Track => track_knots(scene, spec, player, duration, seed)?,
            TrajectoryKind::Roam => roam_knots(scene, spec, player, duration, seed),
            TrajectoryKind::FollowLeader => follow_knots(scene, spec, player, duration, seed),
            TrajectoryKind::Station => station_knots(scene, spec, player, duration, seed),
        };
        Ok(Trajectory { knots, kind })
    }

    /// Movement archetype of this trajectory.
    pub fn kind(&self) -> TrajectoryKind {
        self.kind
    }

    /// Total covered duration in seconds.
    pub fn duration(&self) -> f64 {
        self.knots.last().map(|k| k.0).unwrap_or(0.0)
    }

    /// Position at time `t` seconds (clamped to the covered range).
    pub fn position(&self, t: f64) -> Vec2 {
        match self.knots.len() {
            0 => Vec2::ZERO,
            1 => self.knots[0].1,
            _ => {
                let t = t.clamp(self.knots[0].0, self.duration());
                // Binary search for the bracketing knot pair.
                let idx = self
                    .knots
                    .partition_point(|k| k.0 <= t)
                    .clamp(1, self.knots.len() - 1);
                let (t0, p0) = self.knots[idx - 1];
                let (t1, p1) = self.knots[idx];
                if t1 <= t0 {
                    p0
                } else {
                    p0.lerp(p1, (t - t0) / (t1 - t0))
                }
            }
        }
    }

    /// Heading (radians, renderer azimuth convention) at time `t`,
    /// estimated from local motion.
    pub fn heading(&self, t: f64) -> f64 {
        let dt = 0.05;
        let a = self.position(t);
        let b = self.position(t + dt);
        let d = b - a;
        if d.length() < 1e-9 {
            0.0
        } else {
            d.heading()
        }
    }

    /// Velocity (m/s) at time `t`, estimated by central finite
    /// difference over the same window [`Trajectory::heading`] uses.
    /// Zero at rest and outside the covered range (positions clamp).
    pub fn velocity(&self, t: f64) -> Vec2 {
        let dt = 0.05;
        let a = self.position((t - dt).max(0.0));
        let b = self.position(t + dt);
        let span = (t + dt) - (t - dt).max(0.0);
        if span <= 0.0 {
            Vec2::ZERO
        } else {
            (b - a) / span
        }
    }
}

/// The shared attention hotspots of a scene — capture points and
/// chokepoints that every session hosted in the same world fights over.
/// These are a *map* feature: they derive from the world layout hash,
/// not from any movement seed, so a fleet-side pose predictor can
/// reconstruct exactly the attractors [`Trajectory`] roaming converges
/// toward without knowing per-player seeds (the viewport-pose-model
/// observation that head/body motion decays toward scene salience).
pub fn scene_hotspots(scene: &Scene) -> Vec<Vec2> {
    let bounds = scene.bounds();
    let mut shared = SmallRng::new(scene.layout_hash() ^ 0x5A5A);
    let hotspot_count = 5usize;
    (0..hotspot_count)
        .map(|_| {
            Vec2::new(
                shared.range(bounds.width() * 0.15, bounds.width() * 0.85),
                shared.range(bounds.depth() * 0.15, bounds.depth() * 0.85),
            )
        })
        .collect()
}

fn track_knots(
    scene: &Scene,
    spec: &GameSpec,
    player: usize,
    duration: f64,
    seed: u64,
) -> Result<Vec<(f64, Vec2)>, TrajectoryError> {
    // The track belongs to the scene: read it from the reachable area so
    // trajectories always drive the same track the scene was built with.
    let (centerline, scene_half_width) = match scene.reachable() {
        crate::scene::ReachableArea::Track {
            centerline,
            half_width,
        } => (centerline.clone(), *half_width),
        _ => return Err(TrajectoryError::MissingTrack),
    };
    let n = centerline.len();
    // Arc lengths around the loop.
    let mut cum = Vec::with_capacity(n + 1);
    cum.push(0.0);
    for i in 0..n {
        let a = centerline[i];
        let b = centerline[(i + 1) % n];
        cum.push(cum[i] + a.distance(b));
    }
    let lap = cum[n];
    let speed = spec.player_speed;
    // Stagger players a couple of seconds apart and put them in slightly
    // different lanes — close proximity, never the identical path (§4.6).
    let start_offset = player as f64 * 2.0 * speed;
    let lane_seed = seed ^ ((player as u64 + 1) << 32);
    let dt = 0.25;
    let steps = (duration / dt).ceil() as usize;
    let mut knots = Vec::with_capacity(steps + 1);
    for s in 0..=steps {
        let t = s as f64 * dt;
        // Speed varies a little over time.
        let v = speed * (0.9 + 0.2 * fbm(lane_seed, t * 0.11, 0.0, 2));
        let arc = (start_offset + v * t).rem_euclid(lap.max(1e-9));
        // Locate segment by binary search on cumulative arc length.
        let idx = cum.partition_point(|&c| c <= arc).clamp(1, n) - 1;
        let seg_len = (cum[idx + 1] - cum[idx]).max(1e-9);
        let frac = (arc - cum[idx]) / seg_len;
        let a = centerline[idx];
        let b = centerline[(idx + 1) % n];
        let on_line = a.lerp(b, frac);
        // Lateral lane offset, smooth along the lap.
        let tangent = (b - a).normalized();
        let normal = Vec2::new(-tangent.z, tangent.x);
        let half_width = scene_half_width;
        let lane = (fbm(lane_seed ^ 0x1A4E, arc / 40.0, 0.0, 2) - 0.5) * 2.0 * (half_width * 0.6);
        knots.push((t, on_line + normal * lane));
    }
    Ok(knots)
}

fn roam_knots(
    scene: &Scene,
    spec: &GameSpec,
    player: usize,
    duration: f64,
    seed: u64,
) -> Vec<(f64, Vec2)> {
    let mut rng = SmallRng::new(seed ^ ROAM_TAG ^ ((player as u64) << 40));
    let bounds = scene.bounds();
    // Shared hotspots keep multiple players loosely co-located, as in the
    // paper's shooter games; see [`scene_hotspots`] for why they derive
    // from the layout rather than the movement seed.
    let hotspots = scene_hotspots(scene);
    let hotspot_count = hotspots.len();
    // Shooters chase each other ("roaming and killing enemies"): players
    // other than player 0 spend part of their time retracing the routes
    // player 0 takes, which is what gives the paper's Version-4 cache its
    // inter-player reuse (§4.6) without ever producing identical paths.
    let chase: Option<Vec<(f64, Vec2)>> = if player > 0 {
        Some(roam_knots(scene, spec, 0, duration, seed))
    } else {
        None
    };
    let mut knots = Vec::new();
    let mut t = 0.0;
    let mut pos = hotspots[player % hotspot_count];
    knots.push((t, pos));
    let sigma = (bounds.width().min(bounds.depth()) * 0.12).max(3.0);
    while t < duration {
        let roll = rng.next_f64();
        let chasing = chase.is_some() && roll < 0.4;
        let fighting = (0.4..0.75).contains(&roll);
        let mut target = if let (true, Some(leader)) = (chasing, &chase) {
            // Chase: head to where the enemy was moments ago, with only a
            // small aiming offset.
            let lead = Trajectory {
                knots: leader.clone(),
                kind: TrajectoryKind::Roam,
            };
            let when = (t - rng.range(0.5, 2.0)).max(0.0);
            let aim = lead.position(when);
            Vec2::new(
                aim.x + (rng.next_f64() - 0.5) * 1.0,
                aim.z + (rng.next_f64() - 0.5) * 1.0,
            )
        } else if fighting {
            // Fight at a hotspot: every player converges on the same few
            // square meters, so their movement interleaves closely there.
            let h = hotspots[rng.below(hotspot_count)];
            Vec2::new(
                h.x + (rng.next_f64() - 0.5) * 2.4,
                h.z + (rng.next_f64() - 0.5) * 2.4,
            )
        } else {
            // Roam: a jittered point near a random hotspot.
            let h = hotspots[rng.below(hotspot_count)];
            Vec2::new(
                h.x + (rng.next_f64() - 0.5) * 2.0 * sigma,
                h.z + (rng.next_f64() - 0.5) * 2.0 * sigma,
            )
        };
        target.x = target.x.clamp(bounds.min.x + 1.0, bounds.max.x - 1.0);
        target.z = target.z.clamp(bounds.min.z + 1.0, bounds.max.z - 1.0);
        let dist = pos.distance(target);
        if dist < 1.0 {
            continue;
        }
        let travel = dist / spec.player_speed;
        t += travel;
        pos = target;
        knots.push((t, pos));
        if fighting {
            // Jostle: strafing micro-moves around the fight spot.
            let anchor = pos;
            for _ in 0..4 {
                let next = Vec2::new(
                    (anchor.x + (rng.next_f64() - 0.5) * 2.0)
                        .clamp(bounds.min.x + 1.0, bounds.max.x - 1.0),
                    (anchor.z + (rng.next_f64() - 0.5) * 2.0)
                        .clamp(bounds.min.z + 1.0, bounds.max.z - 1.0),
                );
                let hop = pos.distance(next).max(0.05);
                t += hop / spec.player_speed.max(0.5);
                pos = next;
                knots.push((t, pos));
            }
        } else {
            // Brief pause at the waypoint (look around).
            let pause = rng.range(0.3, 2.0);
            t += pause;
            knots.push((t, pos));
        }
    }
    knots
}

fn follow_knots(
    scene: &Scene,
    spec: &GameSpec,
    player: usize,
    duration: f64,
    seed: u64,
) -> Vec<(f64, Vec2)> {
    // The leader roams; follower k trails by k * 1.2 s with a lateral
    // offset.
    let leader = roam_knots(scene, spec, 0, duration + 8.0, seed ^ 0x1EAD);
    if player == 0 {
        return leader;
    }
    let delay = player as f64 * 1.2;
    let offset_rng_seed = seed ^ ((player as u64) << 24);
    let leader_traj = Trajectory {
        knots: leader,
        kind: TrajectoryKind::Roam,
    };
    let dt = 0.25;
    let steps = (duration / dt).ceil() as usize;
    let bounds = scene.bounds();
    let mut knots = Vec::with_capacity(steps + 1);
    for s in 0..=steps {
        let t = s as f64 * dt;
        let base = leader_traj.position((t - delay).max(0.0));
        let ox = (fbm(offset_rng_seed, t * 0.2, 0.0, 2) - 0.5) * 4.0;
        let oz = (fbm(offset_rng_seed ^ 1, 0.0, t * 0.2, 2) - 0.5) * 4.0;
        let p = Vec2::new(
            (base.x + ox).clamp(bounds.min.x + 0.5, bounds.max.x - 0.5),
            (base.z + oz).clamp(bounds.min.z + 0.5, bounds.max.z - 0.5),
        );
        knots.push((t, p));
    }
    knots
}

fn station_knots(
    scene: &Scene,
    spec: &GameSpec,
    player: usize,
    duration: f64,
    seed: u64,
) -> Vec<(f64, Vec2)> {
    // Indoor sports: players shuffle around a home position (table, lane).
    let bounds = scene.bounds();
    let mut rng = SmallRng::new(seed ^ 0x57A7 ^ ((player as u64) << 16));
    let home = Vec2::new(
        bounds.width() * (0.3 + 0.4 * ((player as f64 * 0.37) % 1.0)),
        bounds.depth() * 0.5,
    );
    let wander = (bounds.width().min(bounds.depth()) * 0.25).max(1.0);
    let mut knots = Vec::new();
    let mut t = 0.0;
    let mut pos = home;
    knots.push((t, pos));
    while t < duration {
        let target = Vec2::new(
            (home.x + rng.range(-wander, wander)).clamp(bounds.min.x + 0.3, bounds.max.x - 0.3),
            (home.z + rng.range(-wander, wander)).clamp(bounds.min.z + 0.3, bounds.max.z - 0.3),
        );
        let dist = pos.distance(target);
        if dist < 0.3 {
            continue;
        }
        t += dist / spec.player_speed;
        pos = target;
        knots.push((t, pos));
        t += rng.range(1.0, 5.0);
        knots.push((t, pos));
    }
    knots
}

/// Seed-mixing tag ("ROAM" in ASCII) kept distinct from other tags.
const ROAM_TAG: u64 = 0x524F_414D;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::GameId;

    fn scene_and_spec(id: GameId) -> (Scene, GameSpec) {
        let spec = GameSpec::for_game(id);
        let scene = spec.build_scene(11);
        (scene, spec)
    }

    #[test]
    fn kinds_match_genres() {
        assert_eq!(
            TrajectoryKind::for_genre(GameGenre::RacingChasing),
            TrajectoryKind::Track
        );
        assert_eq!(
            TrajectoryKind::for_genre(GameGenre::StaticSports),
            TrajectoryKind::Station
        );
    }

    #[test]
    fn positions_stay_in_bounds() {
        for id in [GameId::VikingVillage, GameId::RacingMountain, GameId::Pool] {
            let (scene, spec) = scene_and_spec(id);
            let traj = Trajectory::generate(&scene, &spec, 0, 2, 30.0, 3);
            for i in 0..120 {
                let p = traj.position(i as f64 * 0.25);
                assert!(scene.bounds().contains(p), "{id}: {p} escaped bounds");
            }
        }
    }

    #[test]
    fn track_players_stay_near_track() {
        let (scene, spec) = scene_and_spec(GameId::RacingMountain);
        let traj = Trajectory::generate(&scene, &spec, 1, 2, 20.0, 3);
        let mut on_track = 0;
        let samples = 50;
        for i in 0..samples {
            if scene.is_reachable(traj.position(i as f64 * 0.4)) {
                on_track += 1;
            }
        }
        assert!(
            on_track as f64 >= samples as f64 * 0.8,
            "on track: {on_track}/{samples}"
        );
    }

    #[test]
    fn racers_are_close_but_not_identical() {
        let (scene, spec) = scene_and_spec(GameId::RacingMountain);
        let a = Trajectory::generate(&scene, &spec, 0, 2, 30.0, 3);
        let b = Trajectory::generate(&scene, &spec, 1, 2, 30.0, 3);
        let mut min_d = f64::INFINITY;
        let mut identical = 0;
        for i in 0..100 {
            let t = i as f64 * 0.3;
            let d = a.position(t).distance(b.position(t));
            min_d = min_d.min(d);
            if d < 1e-9 {
                identical += 1;
            }
        }
        // Staggered by ~2s at ~22 m/s -> tens of meters apart, same track.
        assert!(min_d < 200.0, "players unreasonably far: {min_d}");
        assert_eq!(identical, 0, "paths must never coincide exactly");
    }

    #[test]
    fn followers_trail_leader() {
        let (scene, spec) = scene_and_spec(GameId::Cts);
        let leader = Trajectory::generate(&scene, &spec, 0, 3, 40.0, 9);
        let follower = Trajectory::generate(&scene, &spec, 1, 3, 40.0, 9);
        let mut close = 0;
        let samples = 80;
        for i in 0..samples {
            let t = 5.0 + i as f64 * 0.4;
            let d = follower.position(t).distance(leader.position(t));
            if d < 25.0 {
                close += 1;
            }
        }
        assert!(
            close as f64 > samples as f64 * 0.7,
            "follower strayed: close {close}/{samples}"
        );
    }

    #[test]
    fn movement_speed_is_plausible() {
        let (scene, spec) = scene_and_spec(GameId::VikingVillage);
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 60.0, 5);
        // Max instantaneous speed should not wildly exceed the game speed.
        let dt = 0.1;
        for i in 0..500 {
            let t = i as f64 * dt;
            let v = traj.position(t + dt).distance(traj.position(t)) / dt;
            assert!(
                v <= spec.player_speed * 1.6 + 0.5,
                "speed {v} m/s exceeds plausible bound at t={t}"
            );
        }
    }

    #[test]
    fn position_clamps_outside_range() {
        let (scene, spec) = scene_and_spec(GameId::Pool);
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 10.0, 5);
        assert_eq!(traj.position(-5.0), traj.position(0.0));
        assert_eq!(traj.position(1e9), traj.position(traj.duration()));
    }

    #[test]
    fn heading_is_finite() {
        let (scene, spec) = scene_and_spec(GameId::Fps);
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 30.0, 5);
        for i in 0..100 {
            let h = traj.heading(i as f64 * 0.3);
            assert!(h.is_finite());
        }
    }

    #[test]
    fn velocity_is_finite_and_bounded() {
        let (scene, spec) = scene_and_spec(GameId::Fps);
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 30.0, 5);
        for i in 0..120 {
            let v = traj.velocity(i as f64 * 0.25);
            assert!(v.x.is_finite() && v.z.is_finite());
            assert!(
                v.length() <= spec.player_speed * 1.6 + 0.5,
                "velocity {} exceeds plausible bound",
                v.length()
            );
        }
    }

    #[test]
    fn velocity_predicts_short_horizon_motion() {
        // Extrapolating pos + v*dt must land near the true future
        // position while the player is mid-segment (the constant-
        // velocity predictor's core assumption).
        let (scene, spec) = scene_and_spec(GameId::Fps);
        let traj = Trajectory::generate(&scene, &spec, 0, 1, 30.0, 5);
        let mut good = 0;
        let samples = 100;
        for i in 0..samples {
            let t = i as f64 * 0.25;
            let predicted = traj.position(t) + traj.velocity(t) * 0.1;
            if predicted.distance(traj.position(t + 0.1)) < 0.5 {
                good += 1;
            }
        }
        // Knot corners break the assumption occasionally; most samples
        // must still extrapolate well.
        assert!(good > samples * 7 / 10, "only {good}/{samples} predicted");
    }

    #[test]
    fn hotspots_are_deterministic_map_features() {
        let (scene, _) = scene_and_spec(GameId::Fps);
        let a = scene_hotspots(&scene);
        let b = scene_hotspots(&scene);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        for h in &a {
            assert!(scene.bounds().contains(*h), "hotspot {h} out of bounds");
        }
        // A different world layout yields different hotspots.
        let other = GameSpec::for_game(GameId::Fps).build_scene(12);
        assert_ne!(a, scene_hotspots(&other));
    }

    #[test]
    fn deterministic_generation() {
        let (scene, spec) = scene_and_spec(GameId::Soccer);
        let a = Trajectory::generate(&scene, &spec, 1, 4, 20.0, 77);
        let b = Trajectory::generate(&scene, &spec, 1, 4, 20.0, 77);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let (scene, spec) = scene_and_spec(GameId::Pool);
        let _ = Trajectory::generate(&scene, &spec, 0, 1, 0.0, 1);
    }

    #[test]
    fn try_generate_reports_missing_track() {
        // Racing spec paired with a trackless scene (built from an FPS
        // spec): the mismatch is an error, not a panic.
        let scene = GameSpec::for_game(GameId::Fps).build_scene(11);
        let racing = GameSpec::for_game(GameId::RacingMountain);
        let err = Trajectory::try_generate(&scene, &racing, 0, 2, 10.0, 3).unwrap_err();
        assert_eq!(err, TrajectoryError::MissingTrack);
        assert_eq!(
            err.to_string(),
            "track trajectory requires a scene with a track"
        );
    }

    #[test]
    fn generate_falls_back_to_roam_without_track() {
        let scene = GameSpec::for_game(GameId::Fps).build_scene(11);
        let racing = GameSpec::for_game(GameId::RacingMountain);
        let traj = Trajectory::generate(&scene, &racing, 0, 2, 15.0, 3);
        assert_eq!(traj.kind(), TrajectoryKind::Roam);
        for i in 0..60 {
            assert!(scene.bounds().contains(traj.position(i as f64 * 0.25)));
        }
    }

    #[test]
    fn try_generate_matches_generate_when_valid() {
        let (scene, spec) = scene_and_spec(GameId::RacingMountain);
        let a = Trajectory::try_generate(&scene, &spec, 1, 2, 20.0, 7).expect("track scene");
        let b = Trajectory::generate(&scene, &spec, 1, 2, 20.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.kind(), TrajectoryKind::Track);
    }
}
