//! Scene: terrain + placed objects + movement constraints + grid.
//!
//! A [`Scene`] is the renderer's and cutoff solver's view of one game's
//! virtual world. It offers the two queries the Coterie algorithms are
//! built on:
//!
//! * *object-density queries* — triangles within a radius of a viewpoint
//!   (Constraint 1 of the cutoff scheme), and
//! * *near-set queries* — the identity of objects within the cutoff radius
//!   (criterion 3 of the cache lookup algorithm, §5.3).

use crate::grid::{GridPoint, GridSpec};
use crate::noise::hash64;
use crate::object::{ObjectId, SceneObject};
use crate::quadtree::Rect;
use crate::terrain::Terrain;
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// Which part of the world players can actually reach.
///
/// Outdoor roaming games allow the full rectangle; racing games restrict
/// movement to the track, which is why the paper's Racing Mountain and DS
/// have far fewer grid points than their world area would suggest
/// (Table 3: ~6.5 points/m² instead of 1024/m²).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReachableArea {
    /// The whole world rectangle is walkable.
    All,
    /// Only a corridor around a closed-loop track centerline is reachable.
    Track {
        /// Closed polyline of the track centerline.
        centerline: Vec<Vec2>,
        /// Half-width of the drivable corridor in meters.
        half_width: f64,
    },
}

impl ReachableArea {
    /// Whether a ground position is reachable by players.
    pub fn contains(&self, bounds: &Rect, p: Vec2) -> bool {
        if !bounds.contains(p) {
            return false;
        }
        match self {
            ReachableArea::All => true,
            ReachableArea::Track {
                centerline,
                half_width,
            } => distance_to_polyline(centerline, p) <= *half_width,
        }
    }

    /// Approximate fraction of the world rectangle that is reachable.
    ///
    /// Racing games constrain *normal* movement to the track corridor,
    /// but cars can run wide, so the server pre-renders the full lattice
    /// — which is why the paper's Racing Mountain and DS count millions
    /// of grid points at a coarse 0.39 m spacing over their whole worlds
    /// (Table 3). Reachability for *movement* is still the corridor
    /// (see [`ReachableArea::contains`]).
    pub fn area_fraction(&self, _bounds: &Rect) -> f64 {
        match self {
            ReachableArea::All => 1.0,
            ReachableArea::Track { .. } => 1.0,
        }
    }

    /// Fraction of the world covered by the drivable corridor itself.
    pub fn corridor_fraction(&self, bounds: &Rect) -> f64 {
        match self {
            ReachableArea::All => 1.0,
            ReachableArea::Track {
                centerline,
                half_width,
            } => {
                let mut length = 0.0;
                for w in centerline.windows(2) {
                    length += w[0].distance(w[1]);
                }
                if let (Some(first), Some(last)) = (centerline.first(), centerline.last()) {
                    length += first.distance(*last);
                }
                ((length * 2.0 * half_width) / bounds.area()).min(1.0)
            }
        }
    }
}

/// Distance from a point to a closed polyline.
fn distance_to_polyline(poly: &[Vec2], p: Vec2) -> f64 {
    if poly.is_empty() {
        return f64::INFINITY;
    }
    if poly.len() == 1 {
        return poly[0].distance(p);
    }
    let mut best = f64::INFINITY;
    let n = poly.len();
    for i in 0..n {
        let a = poly[i];
        let b = poly[(i + 1) % n];
        best = best.min(distance_to_segment(a, b, p));
    }
    best
}

fn distance_to_segment(a: Vec2, b: Vec2, p: Vec2) -> f64 {
    let ab = b - a;
    let len_sq = ab.length_sq();
    if len_sq <= f64::EPSILON {
        return a.distance(p);
    }
    let t = ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0);
    (a + ab * t).distance(p)
}

/// A game's virtual world: bounds, terrain, objects, reachability, grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scene {
    bounds: Rect,
    terrain: Terrain,
    objects: Vec<SceneObject>,
    reachable: ReachableArea,
    grid: GridSpec,
    eye_height: f64,
    /// Uniform spatial hash for radius queries.
    index: SpatialIndex,
}

impl Scene {
    /// Eye height used when the paper adjusts the camera to the player's
    /// foothold (§6). Matches a standing player.
    pub const DEFAULT_EYE_HEIGHT: f64 = 1.7;

    /// Assembles a scene and builds its spatial index.
    ///
    /// # Panics
    ///
    /// Panics if any object lies outside `bounds` by more than its radius,
    /// which would indicate a broken generator.
    pub fn new(
        bounds: Rect,
        terrain: Terrain,
        objects: Vec<SceneObject>,
        reachable: ReachableArea,
        grid: GridSpec,
    ) -> Self {
        for o in &objects {
            let p = o.position.ground();
            assert!(
                p.x >= bounds.min.x - o.radius
                    && p.x <= bounds.max.x + o.radius
                    && p.z >= bounds.min.z - o.radius
                    && p.z <= bounds.max.z + o.radius,
                "object {} at {} escapes world bounds {}",
                o.id,
                p,
                bounds
            );
        }
        let index = SpatialIndex::build(&bounds, &objects);
        Scene {
            bounds,
            terrain,
            objects,
            reachable,
            grid,
            eye_height: Self::DEFAULT_EYE_HEIGHT,
            index,
        }
    }

    /// World rectangle.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Terrain heightfield.
    #[inline]
    pub fn terrain(&self) -> &Terrain {
        &self.terrain
    }

    /// All objects in the scene.
    #[inline]
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// Movement constraint.
    #[inline]
    pub fn reachable(&self) -> &ReachableArea {
        &self.reachable
    }

    /// Grid-point lattice.
    #[inline]
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// A stable digest of the world layout (bounds plus object
    /// population), FNV-1a over the geometry.
    ///
    /// Trajectory generators key *map-level* features — roam hotspots,
    /// spawn areas — on this digest rather than on the per-player
    /// movement seed, so every session hosted in the same world sees
    /// the same map features regardless of who is moving through it
    /// (the property the fleet's cross-session frame reuse relies on).
    pub fn layout_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        mix(self.objects.len() as u64);
        mix(self.bounds.min.x.to_bits());
        mix(self.bounds.min.z.to_bits());
        mix(self.bounds.max.x.to_bits());
        mix(self.bounds.max.z.to_bits());
        for o in &self.objects {
            mix(o.id.0 as u64);
            mix(o.position.x.to_bits());
            mix(o.position.z.to_bits());
        }
        h
    }

    /// Number of grid points players can reach (Table 3's "Grid Points"
    /// column): full lattice scaled by the reachable-area fraction.
    pub fn reachable_grid_points(&self) -> u64 {
        (self.grid.point_count() as f64 * self.reachable.area_fraction(&self.bounds)).round() as u64
    }

    /// Whether the ground position is reachable by players.
    #[inline]
    pub fn is_reachable(&self, p: Vec2) -> bool {
        self.reachable.contains(&self.bounds, p)
    }

    /// The eye position of a player standing at ground position `p`
    /// (foothold + eye height — the paper's ray-traced camera adjustment).
    #[inline]
    pub fn eye(&self, p: Vec2) -> Vec3 {
        let foot = self.terrain.foothold(p);
        Vec3::new(foot.x, foot.y + self.eye_height, foot.z)
    }

    /// Eye position at a grid point.
    #[inline]
    pub fn eye_at(&self, gp: GridPoint) -> Vec3 {
        self.eye(self.grid.position(gp))
    }

    /// Iterates over objects whose *center* lies within `radius` (ground
    /// distance) of `p`.
    pub fn objects_within(&self, p: Vec2, radius: f64) -> impl Iterator<Item = &SceneObject> {
        self.index
            .candidates(p, radius)
            .map(move |idx| &self.objects[idx])
            .filter(move |o| o.position.ground_distance(p.with_y(0.0)) <= radius)
    }

    /// Total triangles of objects within `radius` of `p` — the rendering
    /// cost proxy behind Constraint 1.
    pub fn triangles_within(&self, p: Vec2, radius: f64) -> u64 {
        self.objects_within(p, radius)
            .map(|o| o.triangles as u64)
            .sum()
    }

    /// Triangle density (triangles per m²) inside a rectangle — Figure 8's
    /// x-axis.
    pub fn triangle_density(&self, rect: &Rect) -> f64 {
        let mut total = 0u64;
        for o in &self.objects {
            if rect.contains(o.position.ground()) {
                total += o.triangles as u64;
            }
        }
        total as f64 / rect.area().max(1e-9)
    }

    /// Sum of all object triangles.
    pub fn total_triangles(&self) -> u64 {
        self.objects.iter().map(|o| o.triangles as u64).sum()
    }

    /// The set of object ids within `radius` of `p`, hashed into a stable
    /// 64-bit digest. Criterion 3 of the cache lookup algorithm (§5.3):
    /// a cached far-BE frame may only be reused where the *near BE contains
    /// the same set of objects*, otherwise merging would leave holes.
    pub fn near_set_hash(&self, p: Vec2, radius: f64) -> u64 {
        let mut ids: Vec<ObjectId> = self.objects_within(p, radius).map(|o| o.id).collect();
        ids.sort_unstable();
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for id in ids {
            h = hash64(h ^ u64::from(id.0));
        }
        h
    }
}

/// Uniform-bucket spatial hash over object centers.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SpatialIndex {
    origin: Vec2,
    cell: f64,
    nx: i32,
    nz: i32,
    buckets: Vec<Vec<u32>>,
}

impl SpatialIndex {
    const TARGET_CELL: f64 = 8.0;

    fn build(bounds: &Rect, objects: &[SceneObject]) -> Self {
        let cell = Self::TARGET_CELL;
        let nx = ((bounds.width() / cell).ceil() as i32).max(1);
        let nz = ((bounds.depth() / cell).ceil() as i32).max(1);
        let mut buckets = vec![Vec::new(); (nx * nz) as usize];
        for (i, o) in objects.iter().enumerate() {
            let p = o.position.ground();
            let bx = (((p.x - bounds.min.x) / cell) as i32).clamp(0, nx - 1);
            let bz = (((p.z - bounds.min.z) / cell) as i32).clamp(0, nz - 1);
            buckets[(bz * nx + bx) as usize].push(i as u32);
        }
        SpatialIndex {
            origin: bounds.min,
            cell,
            nx,
            nz,
            buckets,
        }
    }

    /// Indices of objects in buckets overlapping the query disc.
    fn candidates(&self, p: Vec2, radius: f64) -> impl Iterator<Item = usize> + '_ {
        let lo_x =
            (((p.x - radius - self.origin.x) / self.cell).floor() as i32).clamp(0, self.nx - 1);
        let hi_x =
            (((p.x + radius - self.origin.x) / self.cell).floor() as i32).clamp(0, self.nx - 1);
        let lo_z =
            (((p.z - radius - self.origin.z) / self.cell).floor() as i32).clamp(0, self.nz - 1);
        let hi_z =
            (((p.z + radius - self.origin.z) / self.cell).floor() as i32).clamp(0, self.nz - 1);
        let nx = self.nx;
        (lo_z..=hi_z).flat_map(move |bz| {
            (lo_x..=hi_x).flat_map(move |bx| {
                self.buckets[(bz * nx + bx) as usize]
                    .iter()
                    .map(|&i| i as usize)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKind;

    fn make_object(id: u32, x: f64, z: f64, tris: u32) -> SceneObject {
        SceneObject {
            id: ObjectId(id),
            position: Vec3::new(x, 0.0, z),
            radius: 0.5,
            height: 1.0,
            triangles: tris,
            albedo: 0.5,
            kind: ObjectKind::Sphere,
            texture_seed: id as u64,
        }
    }

    fn test_scene() -> Scene {
        let bounds = Rect::from_size(100.0, 100.0);
        let objects = vec![
            make_object(0, 10.0, 10.0, 100),
            make_object(1, 12.0, 10.0, 200),
            make_object(2, 50.0, 50.0, 400),
            make_object(3, 90.0, 90.0, 800),
        ];
        Scene::new(
            bounds,
            Terrain::flat(),
            objects,
            ReachableArea::All,
            GridSpec::covering(Vec2::ZERO, 100.0, 100.0, 0.5),
        )
    }

    #[test]
    fn objects_within_radius() {
        let s = test_scene();
        let near: Vec<u32> = s
            .objects_within(Vec2::new(10.0, 10.0), 3.0)
            .map(|o| o.id.0)
            .collect();
        assert_eq!(near.len(), 2);
        assert!(near.contains(&0) && near.contains(&1));
    }

    #[test]
    fn triangles_within_sums_correctly() {
        let s = test_scene();
        assert_eq!(s.triangles_within(Vec2::new(10.0, 10.0), 3.0), 300);
        assert_eq!(s.triangles_within(Vec2::new(10.0, 10.0), 0.1), 100);
        assert_eq!(s.triangles_within(Vec2::new(0.0, 0.0), 200.0), 1500);
    }

    #[test]
    fn triangles_within_monotone_in_radius() {
        let s = test_scene();
        let p = Vec2::new(30.0, 30.0);
        let mut last = 0;
        for r in [1.0, 5.0, 20.0, 40.0, 80.0, 150.0] {
            let t = s.triangles_within(p, r);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn near_set_hash_changes_with_membership() {
        let s = test_scene();
        let p = Vec2::new(10.0, 10.0);
        let h_small = s.near_set_hash(p, 1.0); // only object 0
        let h_large = s.near_set_hash(p, 3.0); // objects 0 and 1
        assert_ne!(h_small, h_large);
        // Same membership -> same hash, independent of query point.
        let h_other = s.near_set_hash(Vec2::new(11.0, 10.0), 2.0);
        assert_eq!(h_large, h_other);
    }

    #[test]
    fn eye_uses_terrain_and_height() {
        let bounds = Rect::from_size(50.0, 50.0);
        let terrain = Terrain::new(3, 4.0, 20.0);
        let s = Scene::new(
            bounds,
            terrain.clone(),
            vec![],
            ReachableArea::All,
            GridSpec::covering(Vec2::ZERO, 50.0, 50.0, 1.0),
        );
        let p = Vec2::new(20.0, 20.0);
        let eye = s.eye(p);
        assert!((eye.y - (terrain.height(p) + Scene::DEFAULT_EYE_HEIGHT)).abs() < 1e-12);
    }

    #[test]
    fn track_reachability() {
        let track = ReachableArea::Track {
            centerline: vec![
                Vec2::new(10.0, 10.0),
                Vec2::new(90.0, 10.0),
                Vec2::new(90.0, 90.0),
                Vec2::new(10.0, 90.0),
            ],
            half_width: 5.0,
        };
        let bounds = Rect::from_size(100.0, 100.0);
        assert!(track.contains(&bounds, Vec2::new(50.0, 12.0)));
        assert!(!track.contains(&bounds, Vec2::new(50.0, 50.0)));
        // The server pre-renders the full lattice even for track games.
        assert_eq!(track.area_fraction(&bounds), 1.0);
        let frac = track.corridor_fraction(&bounds);
        assert!(frac > 0.0 && frac < 0.5, "corridor fraction {frac}");
    }

    #[test]
    fn track_scene_prerenders_full_lattice() {
        // Racing games pre-render every grid point (cars can run wide),
        // matching Table 3's millions of grid points for Racing/DS.
        let bounds = Rect::from_size(100.0, 100.0);
        let grid = GridSpec::covering(Vec2::ZERO, 100.0, 100.0, 1.0);
        let all = Scene::new(bounds, Terrain::flat(), vec![], ReachableArea::All, grid);
        let track = Scene::new(
            bounds,
            Terrain::flat(),
            vec![],
            ReachableArea::Track {
                centerline: vec![
                    Vec2::new(10.0, 10.0),
                    Vec2::new(90.0, 10.0),
                    Vec2::new(90.0, 90.0),
                    Vec2::new(10.0, 90.0),
                ],
                half_width: 5.0,
            },
            grid,
        );
        assert_eq!(track.reachable_grid_points(), all.reachable_grid_points());
        // Movement reachability is still corridor-bound.
        assert!(track.is_reachable(Vec2::new(50.0, 12.0)));
        assert!(!track.is_reachable(Vec2::new(50.0, 50.0)));
    }

    #[test]
    fn triangle_density_counts_rect_only() {
        let s = test_scene();
        let rect = Rect::new(Vec2::new(0.0, 0.0), Vec2::new(20.0, 20.0));
        let density = s.triangle_density(&rect);
        assert!((density - 300.0 / 400.0).abs() < 1e-9);
    }

    #[test]
    fn distance_to_segment_basics() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 0.0);
        assert!((distance_to_segment(a, b, Vec2::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
        assert!((distance_to_segment(a, b, Vec2::new(-4.0, 3.0)) - 5.0).abs() < 1e-12);
        assert!((distance_to_segment(a, a, Vec2::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_polyline_infinitely_far() {
        assert_eq!(distance_to_polyline(&[], Vec2::ZERO), f64::INFINITY);
        assert_eq!(
            distance_to_polyline(&[Vec2::new(3.0, 4.0)], Vec2::ZERO),
            5.0
        );
    }

    #[test]
    #[should_panic(expected = "escapes world bounds")]
    fn out_of_bounds_object_rejected() {
        let bounds = Rect::from_size(10.0, 10.0);
        let _ = Scene::new(
            bounds,
            Terrain::flat(),
            vec![make_object(0, 500.0, 500.0, 10)],
            ReachableArea::All,
            GridSpec::covering(Vec2::ZERO, 10.0, 10.0, 1.0),
        );
    }
}
