//! Heightfield terrain.
//!
//! The paper's offline preprocessing uses ray tracing against the terrain
//! to find the player's foothold and adjust the camera height (§6). Our
//! terrain is an analytic fBm heightfield, so the "foothold" is a direct
//! evaluation, and the renderer ray-marches the same function for ground
//! pixels.

use crate::noise::{
    fbm, fbm_cached, value_noise, value_noise_cached, value_noise_cached_cross, NoiseCellCache,
};
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// Analytic heightfield terrain with deterministic albedo texture.
///
/// ```
/// use coterie_world::{Terrain, Vec2};
/// let t = Terrain::new(42, 8.0, 80.0);
/// let h = t.height(Vec2::new(10.0, 20.0));
/// assert!(h >= 0.0 && h <= 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Terrain {
    seed: u64,
    amplitude: f64,
    wavelength: f64,
}

impl Terrain {
    /// Creates a terrain with the given elevation amplitude (meters) and
    /// horizontal feature wavelength (meters).
    ///
    /// # Panics
    ///
    /// Panics if `wavelength` is not strictly positive or `amplitude` is
    /// negative.
    pub fn new(seed: u64, amplitude: f64, wavelength: f64) -> Self {
        assert!(wavelength > 0.0, "terrain wavelength must be positive");
        assert!(amplitude >= 0.0, "terrain amplitude must be non-negative");
        Terrain {
            seed,
            amplitude,
            wavelength,
        }
    }

    /// A perfectly flat terrain (used by the indoor games).
    pub fn flat() -> Self {
        Terrain {
            seed: 0,
            amplitude: 0.0,
            wavelength: 1.0,
        }
    }

    /// Elevation amplitude in meters.
    #[inline]
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Terrain elevation at a ground-plane position.
    #[inline]
    pub fn height(&self, p: Vec2) -> f64 {
        if self.amplitude == 0.0 {
            return 0.0;
        }
        self.amplitude * fbm(self.seed, p.x / self.wavelength, p.z / self.wavelength, 4)
    }

    /// The "foothold" of a player standing at `p`: ground position lifted
    /// to terrain height.
    #[inline]
    pub fn foothold(&self, p: Vec2) -> Vec3 {
        p.with_y(self.height(p))
    }

    /// Ground albedo (luma, `[0,1]`) at a position — grass/dirt/rock
    /// variation that gives the renderer's ground pixels real texture.
    #[inline]
    pub fn albedo(&self, p: Vec2) -> f64 {
        // Two scales: broad patches plus fine detail.
        let broad = value_noise(self.seed ^ 0xA1B2, p.x * 0.15, p.z * 0.15);
        let fine = value_noise(self.seed ^ 0xC3D4, p.x * 3.0, p.z * 3.0);
        0.22 + 0.42 * broad + 0.28 * fine
    }

    /// Approximate surface normal via central differences (used for
    /// shading slopes).
    #[inline]
    pub fn normal(&self, p: Vec2) -> Vec3 {
        let eps = 0.1;
        let hx1 = self.height(Vec2::new(p.x + eps, p.z));
        let hx0 = self.height(Vec2::new(p.x - eps, p.z));
        let hz1 = self.height(Vec2::new(p.x, p.z + eps));
        let hz0 = self.height(Vec2::new(p.x, p.z - eps));
        Vec3::new(-(hx1 - hx0) / (2.0 * eps), 1.0, -(hz1 - hz0) / (2.0 * eps)).normalized()
    }

    /// A stateful sampler for spatially coherent sweeps (renderer ground
    /// rows). Returns values bit-identical to the corresponding
    /// [`Terrain`] methods while memoizing noise-lattice corners across
    /// consecutive samples — the renderer hot path's biggest cost.
    pub fn sampler(&self) -> TerrainSampler<'_> {
        TerrainSampler {
            terrain: self,
            height_octaves: Default::default(),
            normal_octaves: Default::default(),
            albedo_broad: NoiseCellCache::new(),
            albedo_fine: NoiseCellCache::new(),
        }
    }
}

/// Cell-cached view of a [`Terrain`] (see [`Terrain::sampler`]).
///
/// Each noise call site gets its own [`NoiseCellCache`] so interleaved
/// queries (albedo then normal, per pixel) never evict each other.
#[derive(Debug, Clone)]
pub struct TerrainSampler<'t> {
    terrain: &'t Terrain,
    height_octaves: [NoiseCellCache; 4],
    normal_octaves: [NoiseCellCache; 4],
    albedo_broad: NoiseCellCache,
    albedo_fine: NoiseCellCache,
}

impl TerrainSampler<'_> {
    /// Cached [`Terrain::height`].
    #[inline]
    pub fn height(&mut self, p: Vec2) -> f64 {
        if self.terrain.amplitude == 0.0 {
            return 0.0;
        }
        self.terrain.amplitude
            * fbm_cached(
                &mut self.height_octaves,
                self.terrain.seed,
                p.x / self.terrain.wavelength,
                p.z / self.terrain.wavelength,
            )
    }

    /// Cached [`Terrain::albedo`].
    #[inline]
    pub fn albedo(&mut self, p: Vec2) -> f64 {
        let broad = value_noise_cached(
            &mut self.albedo_broad,
            self.terrain.seed ^ 0xA1B2,
            p.x * 0.15,
            p.z * 0.15,
        );
        let fine = value_noise_cached(
            &mut self.albedo_fine,
            self.terrain.seed ^ 0xC3D4,
            p.x * 3.0,
            p.z * 3.0,
        );
        0.22 + 0.42 * broad + 0.28 * fine
    }

    /// Cached [`Terrain::normal`]. The four central-difference height
    /// probes are evaluated octave by octave through
    /// [`value_noise_cached_cross`]: probes sit `2·eps` apart, so each
    /// octave almost always pays a single cell check and the probes
    /// share interpolation subexpressions. Every probe's value and
    /// per-octave accumulation order match [`Terrain::normal`] exactly,
    /// so the result is bit-identical.
    #[inline]
    pub fn normal(&mut self, p: Vec2) -> Vec3 {
        let eps = 0.1;
        let [hx1, hx0, hz1, hz0] = self.normal_probe_heights(p, eps);
        Vec3::new(-(hx1 - hx0) / (2.0 * eps), 1.0, -(hz1 - hz0) / (2.0 * eps)).normalized()
    }

    /// Heights at `(x±eps, z)` and `(x, z±eps)`, in that order —
    /// the same fBm each probe would compute through
    /// [`Terrain::height`], batched per octave.
    #[inline]
    fn normal_probe_heights(&mut self, p: Vec2, eps: f64) -> [f64; 4] {
        let t = self.terrain;
        if t.amplitude == 0.0 {
            return [0.0; 4];
        }
        let x1 = (p.x + eps) / t.wavelength;
        let x0 = (p.x - eps) / t.wavelength;
        let xc = p.x / t.wavelength;
        let z1 = (p.z + eps) / t.wavelength;
        let z0 = (p.z - eps) / t.wavelength;
        let zc = p.z / t.wavelength;
        let mut amp = 0.5;
        let mut freq = 1.0;
        let mut totals = [0.0f64; 4];
        let mut norm = 0.0;
        for (octave, cache) in self.normal_octaves.iter_mut().enumerate() {
            let vals = value_noise_cached_cross(
                cache,
                t.seed.wrapping_add(octave as u64),
                x1 * freq,
                x0 * freq,
                xc * freq,
                z1 * freq,
                z0 * freq,
                zc * freq,
            );
            for (total, v) in totals.iter_mut().zip(vals) {
                *total += amp * v;
            }
            norm += amp;
            amp *= 0.5;
            freq *= 2.0;
        }
        totals.map(|total| t.amplitude * (if norm > 0.0 { total / norm } else { 0.0 }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_terrain_is_zero() {
        let t = Terrain::flat();
        assert_eq!(t.height(Vec2::new(12.0, -7.0)), 0.0);
        assert_eq!(t.normal(Vec2::ZERO), Vec3::new(0.0, 1.0, 0.0));
    }

    #[test]
    fn height_within_amplitude() {
        let t = Terrain::new(3, 5.0, 40.0);
        for i in 0..50 {
            let p = Vec2::new(i as f64 * 3.1, i as f64 * -1.7);
            let h = t.height(p);
            assert!((0.0..=5.0).contains(&h), "height {h} out of range");
        }
    }

    #[test]
    fn foothold_lifts_to_height() {
        let t = Terrain::new(3, 5.0, 40.0);
        let p = Vec2::new(8.0, 9.0);
        let f = t.foothold(p);
        assert_eq!(f.ground(), p);
        assert_eq!(f.y, t.height(p));
    }

    #[test]
    fn albedo_in_unit_range() {
        let t = Terrain::new(9, 2.0, 30.0);
        for i in 0..100 {
            let a = t.albedo(Vec2::new(i as f64 * 0.9, i as f64 * 1.3));
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn normal_is_unit_and_upward() {
        let t = Terrain::new(5, 6.0, 20.0);
        for i in 0..20 {
            let n = t.normal(Vec2::new(i as f64 * 2.0, 5.0));
            assert!((n.length() - 1.0).abs() < 1e-9);
            assert!(n.y > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "wavelength must be positive")]
    fn invalid_wavelength_rejected() {
        let _ = Terrain::new(1, 1.0, 0.0);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = Terrain::new(7, 4.0, 25.0);
        let b = Terrain::new(7, 4.0, 25.0);
        let p = Vec2::new(13.0, 31.0);
        assert_eq!(a.height(p), b.height(p));
        assert_eq!(a.albedo(p), b.albedo(p));
    }

    #[test]
    fn sampler_matches_terrain_bit_for_bit() {
        let t = Terrain::new(42, 8.0, 80.0);
        let mut s = t.sampler();
        // A sweep resembling a renderer ground row: slowly drifting
        // positions with occasional jumps (new rows / bands).
        for i in 0..500 {
            let p = if i % 97 == 0 {
                Vec2::new(i as f64 * 3.7 - 200.0, i as f64 * -1.9)
            } else {
                Vec2::new(i as f64 * 0.11, (i as f64 * 0.05).sin() * 30.0)
            };
            assert_eq!(s.height(p), t.height(p), "height diverged at {p:?}");
            assert_eq!(s.albedo(p), t.albedo(p), "albedo diverged at {p:?}");
            assert_eq!(s.normal(p), t.normal(p), "normal diverged at {p:?}");
        }
    }

    #[test]
    fn sampler_on_flat_terrain() {
        let t = Terrain::flat();
        let mut s = t.sampler();
        let p = Vec2::new(3.0, -4.0);
        assert_eq!(s.height(p), 0.0);
        assert_eq!(s.normal(p), Vec3::new(0.0, 1.0, 0.0));
    }
}
