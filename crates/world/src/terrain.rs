//! Heightfield terrain.
//!
//! The paper's offline preprocessing uses ray tracing against the terrain
//! to find the player's foothold and adjust the camera height (§6). Our
//! terrain is an analytic fBm heightfield, so the "foothold" is a direct
//! evaluation, and the renderer ray-marches the same function for ground
//! pixels.

use crate::noise::{fbm, value_noise};
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// Analytic heightfield terrain with deterministic albedo texture.
///
/// ```
/// use coterie_world::{Terrain, Vec2};
/// let t = Terrain::new(42, 8.0, 80.0);
/// let h = t.height(Vec2::new(10.0, 20.0));
/// assert!(h >= 0.0 && h <= 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Terrain {
    seed: u64,
    amplitude: f64,
    wavelength: f64,
}

impl Terrain {
    /// Creates a terrain with the given elevation amplitude (meters) and
    /// horizontal feature wavelength (meters).
    ///
    /// # Panics
    ///
    /// Panics if `wavelength` is not strictly positive or `amplitude` is
    /// negative.
    pub fn new(seed: u64, amplitude: f64, wavelength: f64) -> Self {
        assert!(wavelength > 0.0, "terrain wavelength must be positive");
        assert!(amplitude >= 0.0, "terrain amplitude must be non-negative");
        Terrain {
            seed,
            amplitude,
            wavelength,
        }
    }

    /// A perfectly flat terrain (used by the indoor games).
    pub fn flat() -> Self {
        Terrain {
            seed: 0,
            amplitude: 0.0,
            wavelength: 1.0,
        }
    }

    /// Elevation amplitude in meters.
    #[inline]
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Terrain elevation at a ground-plane position.
    #[inline]
    pub fn height(&self, p: Vec2) -> f64 {
        if self.amplitude == 0.0 {
            return 0.0;
        }
        self.amplitude * fbm(self.seed, p.x / self.wavelength, p.z / self.wavelength, 4)
    }

    /// The "foothold" of a player standing at `p`: ground position lifted
    /// to terrain height.
    #[inline]
    pub fn foothold(&self, p: Vec2) -> Vec3 {
        p.with_y(self.height(p))
    }

    /// Ground albedo (luma, `[0,1]`) at a position — grass/dirt/rock
    /// variation that gives the renderer's ground pixels real texture.
    #[inline]
    pub fn albedo(&self, p: Vec2) -> f64 {
        // Two scales: broad patches plus fine detail.
        let broad = value_noise(self.seed ^ 0xA1B2, p.x * 0.15, p.z * 0.15);
        let fine = value_noise(self.seed ^ 0xC3D4, p.x * 3.0, p.z * 3.0);
        0.22 + 0.42 * broad + 0.28 * fine
    }

    /// Approximate surface normal via central differences (used for
    /// shading slopes).
    pub fn normal(&self, p: Vec2) -> Vec3 {
        let eps = 0.1;
        let hx1 = self.height(Vec2::new(p.x + eps, p.z));
        let hx0 = self.height(Vec2::new(p.x - eps, p.z));
        let hz1 = self.height(Vec2::new(p.x, p.z + eps));
        let hz0 = self.height(Vec2::new(p.x, p.z - eps));
        Vec3::new(-(hx1 - hx0) / (2.0 * eps), 1.0, -(hz1 - hz0) / (2.0 * eps)).normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_terrain_is_zero() {
        let t = Terrain::flat();
        assert_eq!(t.height(Vec2::new(12.0, -7.0)), 0.0);
        assert_eq!(t.normal(Vec2::ZERO), Vec3::new(0.0, 1.0, 0.0));
    }

    #[test]
    fn height_within_amplitude() {
        let t = Terrain::new(3, 5.0, 40.0);
        for i in 0..50 {
            let p = Vec2::new(i as f64 * 3.1, i as f64 * -1.7);
            let h = t.height(p);
            assert!((0.0..=5.0).contains(&h), "height {h} out of range");
        }
    }

    #[test]
    fn foothold_lifts_to_height() {
        let t = Terrain::new(3, 5.0, 40.0);
        let p = Vec2::new(8.0, 9.0);
        let f = t.foothold(p);
        assert_eq!(f.ground(), p);
        assert_eq!(f.y, t.height(p));
    }

    #[test]
    fn albedo_in_unit_range() {
        let t = Terrain::new(9, 2.0, 30.0);
        for i in 0..100 {
            let a = t.albedo(Vec2::new(i as f64 * 0.9, i as f64 * 1.3));
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn normal_is_unit_and_upward() {
        let t = Terrain::new(5, 6.0, 20.0);
        for i in 0..20 {
            let n = t.normal(Vec2::new(i as f64 * 2.0, 5.0));
            assert!((n.length() - 1.0).abs() < 1e-9);
            assert!(n.y > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "wavelength must be positive")]
    fn invalid_wavelength_rejected() {
        let _ = Terrain::new(1, 1.0, 0.0);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = Terrain::new(7, 4.0, 25.0);
        let b = Terrain::new(7, 4.0, 25.0);
        let p = Vec2::new(13.0, 31.0);
        assert_eq!(a.height(p), b.height(p));
        assert_eq!(a.albedo(p), b.albedo(p));
    }
}
