//! Head-orientation dynamics.
//!
//! The paper's panoramic prefetch exists because "after arriving at the
//! next grid point, the player may change her head orientation which is
//! hard to predict" (§2.2): a panorama serves *any* orientation at no
//! cost, while a prefetched FoV frame is stale the moment the head
//! turns. This model generates plausible head yaw/pitch over time —
//! smooth pursuit following the movement direction, interrupted by
//! saccade-like glances — to quantify exactly that effect.

use crate::noise::{fbm, SmallRng};
use crate::trajectory::Trajectory;
use serde::{Deserialize, Serialize};

/// Head orientation sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadPose {
    /// Yaw in radians (renderer azimuth convention).
    pub yaw: f64,
    /// Pitch in radians (positive = up).
    pub pitch: f64,
}

/// Generates head orientation over a trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadModel {
    seed: u64,
    /// RMS amplitude of slow gaze wandering around the heading, radians.
    pub wander_rad: f64,
    /// Mean interval between glances (quick large looks), seconds.
    pub glance_interval_s: f64,
    /// Maximum glance amplitude, radians.
    pub glance_rad: f64,
    /// Precomputed glance events: (start_s, duration_s, yaw offset).
    glances: Vec<(f64, f64, f64)>,
}

impl HeadModel {
    /// A typical player: ±12° wander, a glance of up to ±75° roughly
    /// every four seconds.
    pub fn typical(seed: u64, duration_s: f64) -> Self {
        Self::new(seed, duration_s, 0.21, 4.0, 1.3)
    }

    /// Creates a model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `glance_interval_s` is not positive.
    pub fn new(
        seed: u64,
        duration_s: f64,
        wander_rad: f64,
        glance_interval_s: f64,
        glance_rad: f64,
    ) -> Self {
        assert!(glance_interval_s > 0.0, "glance interval must be positive");
        let mut rng = SmallRng::new(seed ^ 0x4EAD);
        let mut glances = Vec::new();
        let mut t = rng.range(0.0, glance_interval_s);
        while t < duration_s {
            let duration = rng.range(0.4, 1.4);
            let offset = (rng.next_f64() * 2.0 - 1.0) * glance_rad;
            glances.push((t, duration, offset));
            t += duration + rng.range(0.5 * glance_interval_s, 1.5 * glance_interval_s);
        }
        HeadModel {
            seed,
            wander_rad,
            glance_interval_s,
            glance_rad,
            glances,
        }
    }

    /// Head pose at time `t` while following `trajectory`.
    pub fn pose(&self, trajectory: &Trajectory, t: f64) -> HeadPose {
        let heading = trajectory.heading(t);
        // Slow wander around the heading.
        let wander = (fbm(self.seed ^ 0x77, t * 0.35, 0.0, 3) - 0.5) * 2.0 * self.wander_rad;
        // Active glance, smoothly ramped in and out.
        let mut glance = 0.0;
        for &(start, duration, offset) in &self.glances {
            if t >= start && t <= start + duration {
                let phase = (t - start) / duration;
                // Raised-cosine envelope.
                let envelope = 0.5 * (1.0 - (std::f64::consts::TAU * phase).cos());
                glance = offset * envelope;
                break;
            }
        }
        let pitch = (fbm(self.seed ^ 0x88, t * 0.3, 1.0, 2) - 0.5) * 0.35;
        HeadPose {
            yaw: heading + wander + glance,
            pitch,
        }
    }

    /// The largest yaw deviation from the movement heading over a window
    /// `[t, t + window_s]` — how far a FoV frame prefetched for the
    /// heading direction can be off by display time.
    pub fn max_deviation(&self, trajectory: &Trajectory, t: f64, window_s: f64) -> f64 {
        let steps = 20;
        let mut max_dev = 0.0f64;
        for i in 0..=steps {
            let ti = t + window_s * i as f64 / steps as f64;
            let pose = self.pose(trajectory, ti);
            let heading = trajectory.heading(t);
            let mut d = pose.yaw - heading;
            while d > std::f64::consts::PI {
                d -= std::f64::consts::TAU;
            }
            while d < -std::f64::consts::PI {
                d += std::f64::consts::TAU;
            }
            max_dev = max_dev.max(d.abs());
        }
        max_dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::{GameId, GameSpec};

    fn traj() -> Trajectory {
        let spec = GameSpec::for_game(GameId::Fps);
        let scene = spec.build_scene(1);
        Trajectory::generate(&scene, &spec, 0, 1, 60.0, 5)
    }

    #[test]
    fn pose_is_finite_and_head_relative_motion_smooth() {
        // The *head-relative* gaze offset (pose minus body heading) must
        // be smooth; the body heading itself may turn sharply at
        // waypoints, which the head simply rides along with.
        let t = traj();
        let head = HeadModel::typical(3, 60.0);
        let offset_at = |ti: f64| {
            let p = head.pose(&t, ti);
            assert!(p.yaw.is_finite() && p.pitch.is_finite());
            p.yaw - t.heading(ti)
        };
        let mut prev = offset_at(0.0);
        for i in 1..600 {
            let o = offset_at(i as f64 * 0.1);
            let d = (o - prev).abs();
            assert!(d < 0.8, "head-relative gaze jumped {d:.2} rad in 100 ms");
            prev = o;
        }
    }

    #[test]
    fn glances_exceed_wander() {
        let t = traj();
        let head = HeadModel::typical(3, 60.0);
        let mut max_dev = 0.0f64;
        for i in 0..600 {
            max_dev = max_dev.max(head.max_deviation(&t, i as f64 * 0.1, 0.0));
        }
        assert!(
            max_dev > 0.5,
            "somewhere in a minute the player should glance far: {max_dev:.2}"
        );
    }

    #[test]
    fn deviation_grows_with_window() {
        let t = traj();
        let head = HeadModel::typical(9, 60.0);
        let mut sum_short = 0.0;
        let mut sum_long = 0.0;
        for i in 0..60 {
            let ti = i as f64;
            sum_short += head.max_deviation(&t, ti, 0.1);
            sum_long += head.max_deviation(&t, ti, 2.0);
        }
        assert!(sum_long > sum_short, "longer windows see more head motion");
    }

    #[test]
    fn deterministic() {
        let t = traj();
        let a = HeadModel::typical(4, 30.0);
        let b = HeadModel::typical(4, 30.0);
        for i in 0..100 {
            assert_eq!(a.pose(&t, i as f64 * 0.3), b.pose(&t, i as f64 * 0.3));
        }
    }

    #[test]
    #[should_panic(expected = "glance interval")]
    fn invalid_interval_rejected() {
        let _ = HeadModel::new(1, 10.0, 0.1, 0.0, 1.0);
    }
}
