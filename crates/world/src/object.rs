//! Scene objects: the "assets" of the virtual world.
//!
//! Each object carries a triangle count — the paper's proxy for rendering
//! cost (§4.3, "the rendering speed is correlated with the triangle count
//! of the objects") — plus the geometric and shading attributes needed by
//! the panoramic software renderer.

use crate::vec::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a scene object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Geometric archetype of an object, chosen to give the renderer distinct
/// silhouettes (spheres for rocks/props, cylinders for trees, boxes for
/// buildings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Roughly isotropic prop (rock, barrel, bush).
    Sphere,
    /// Tall object (tree trunk + canopy, lamp post, person).
    Cylinder,
    /// Axis-aligned building-like block.
    Box,
}

/// An asset placed in the virtual world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Stable identifier.
    pub id: ObjectId,
    /// Center of the object's footprint; `position.y` is the base height
    /// (on the terrain).
    pub position: Vec3,
    /// Horizontal radius of the bounding volume, in meters.
    pub radius: f64,
    /// Height of the object above its base, in meters.
    pub height: f64,
    /// Triangle count of the mesh (render-cost proxy).
    pub triangles: u32,
    /// Base surface brightness in `[0, 1]` (luma albedo).
    pub albedo: f64,
    /// Shape archetype.
    pub kind: ObjectKind,
    /// Seed for surface-texture noise so the renderer gives each object
    /// pixel-level detail (needed for meaningful SSIM).
    pub texture_seed: u64,
}

impl SceneObject {
    /// Vertical center of the bounding volume.
    #[inline]
    pub fn center(&self) -> Vec3 {
        Vec3::new(
            self.position.x,
            self.position.y + self.height * 0.5,
            self.position.z,
        )
    }

    /// Radius of a bounding sphere enclosing the object.
    #[inline]
    pub fn bounding_radius(&self) -> f64 {
        // Conservative: horizontal radius and half-height combined.
        self.radius.hypot(self.height * 0.5)
    }

    /// Ground-plane distance from a viewpoint to the object center.
    #[inline]
    pub fn ground_distance(&self, from: Vec3) -> f64 {
        self.position.ground_distance(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> SceneObject {
        SceneObject {
            id: ObjectId(7),
            position: Vec3::new(3.0, 1.0, 4.0),
            radius: 1.0,
            height: 4.0,
            triangles: 1200,
            albedo: 0.5,
            kind: ObjectKind::Cylinder,
            texture_seed: 99,
        }
    }

    #[test]
    fn center_is_mid_height() {
        let o = obj();
        assert_eq!(o.center(), Vec3::new(3.0, 3.0, 4.0));
    }

    #[test]
    fn bounding_radius_encloses_extents() {
        let o = obj();
        let br = o.bounding_radius();
        assert!(br >= o.radius);
        assert!(br >= o.height * 0.5);
    }

    #[test]
    fn ground_distance_ignores_height() {
        let o = obj();
        let d = o.ground_distance(Vec3::new(0.0, 100.0, 0.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn object_id_display() {
        assert_eq!(format!("{}", ObjectId(3)), "obj#3");
    }
}
