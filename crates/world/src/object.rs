//! Scene objects: the "assets" of the virtual world.
//!
//! Each object carries a triangle count — the paper's proxy for rendering
//! cost (§4.3, "the rendering speed is correlated with the triangle count
//! of the objects") — plus the geometric and shading attributes needed by
//! the panoramic software renderer.

use crate::vec::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a scene object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Geometric archetype of an object, chosen to give the renderer distinct
/// silhouettes (spheres for rocks/props, cylinders for trees, boxes for
/// buildings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Roughly isotropic prop (rock, barrel, bush).
    Sphere,
    /// Tall object (tree trunk + canopy, lamp post, person).
    Cylinder,
    /// Axis-aligned building-like block.
    Box,
}

/// An asset placed in the virtual world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Stable identifier.
    pub id: ObjectId,
    /// Center of the object's footprint; `position.y` is the base height
    /// (on the terrain).
    pub position: Vec3,
    /// Horizontal radius of the bounding volume, in meters.
    pub radius: f64,
    /// Height of the object above its base, in meters.
    pub height: f64,
    /// Triangle count of the mesh (render-cost proxy).
    pub triangles: u32,
    /// Base surface brightness in `[0, 1]` (luma albedo).
    pub albedo: f64,
    /// Shape archetype.
    pub kind: ObjectKind,
    /// Seed for surface-texture noise so the renderer gives each object
    /// pixel-level detail (needed for meaningful SSIM).
    pub texture_seed: u64,
}

/// Angular extent of an object's silhouette as seen from an eye point.
///
/// The renderer bins objects into the panorama rows/columns they can
/// touch before rasterizing; this is the pure-geometry half of that
/// computation, independent of any pixel grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngularExtent {
    /// Azimuthal half-width of the silhouette, radians.
    pub half_width: f64,
    /// Elevation of the silhouette's base, radians.
    pub base_elevation: f64,
    /// Elevation of the silhouette's top, radians.
    pub top_elevation: f64,
    /// Azimuth of the object center, radians in `(-π, π]`.
    pub center_azimuth: f64,
    /// Euclidean distance from the eye to the bounding-volume center,
    /// meters.
    pub distance: f64,
}

impl SceneObject {
    /// Vertical center of the bounding volume.
    #[inline]
    pub fn center(&self) -> Vec3 {
        Vec3::new(
            self.position.x,
            self.position.y + self.height * 0.5,
            self.position.z,
        )
    }

    /// Radius of a bounding sphere enclosing the object.
    #[inline]
    pub fn bounding_radius(&self) -> f64 {
        // Conservative: horizontal radius and half-height combined.
        self.radius.hypot(self.height * 0.5)
    }

    /// Ground-plane distance from a viewpoint to the object center.
    #[inline]
    pub fn ground_distance(&self, from: Vec3) -> f64 {
        self.position.ground_distance(from)
    }

    /// Angular extent of the object's silhouette as seen from `eye`, or
    /// `None` when the eye sits inside the bounding volume's center
    /// (degenerate projection).
    ///
    /// Spheres subtend a symmetric cap around the center direction;
    /// cylinders and boxes project as azimuthal slabs between the base
    /// and top elevations (boxes are widened by 1.3× to approximate
    /// their diagonal).
    pub fn angular_extent(&self, eye: Vec3) -> Option<AngularExtent> {
        let v = self.center() - eye;
        let dist = v.length();
        if dist < 1e-6 {
            return None;
        }
        let (half_width, base_elevation, top_elevation) = match self.kind {
            ObjectKind::Sphere => {
                let a = (self.radius / dist).min(1.0).asin();
                let ce = (v.y / dist).asin();
                (a, ce - a, ce + a)
            }
            ObjectKind::Cylinder | ObjectKind::Box => {
                let ground_dist = v.ground().length().max(1e-6);
                let widen = if self.kind == ObjectKind::Box {
                    1.3
                } else {
                    1.0
                };
                let a = ((self.radius * widen / ground_dist).min(1.0)).asin();
                let base = (self.position.y - eye.y).atan2(ground_dist);
                let top = (self.position.y + self.height - eye.y).atan2(ground_dist);
                (a, base, top)
            }
        };
        Some(AngularExtent {
            half_width,
            base_elevation,
            top_elevation,
            center_azimuth: v.x.atan2(v.z),
            distance: dist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> SceneObject {
        SceneObject {
            id: ObjectId(7),
            position: Vec3::new(3.0, 1.0, 4.0),
            radius: 1.0,
            height: 4.0,
            triangles: 1200,
            albedo: 0.5,
            kind: ObjectKind::Cylinder,
            texture_seed: 99,
        }
    }

    #[test]
    fn center_is_mid_height() {
        let o = obj();
        assert_eq!(o.center(), Vec3::new(3.0, 3.0, 4.0));
    }

    #[test]
    fn bounding_radius_encloses_extents() {
        let o = obj();
        let br = o.bounding_radius();
        assert!(br >= o.radius);
        assert!(br >= o.height * 0.5);
    }

    #[test]
    fn ground_distance_ignores_height() {
        let o = obj();
        let d = o.ground_distance(Vec3::new(0.0, 100.0, 0.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn object_id_display() {
        assert_eq!(format!("{}", ObjectId(3)), "obj#3");
    }

    #[test]
    fn angular_extent_spans_the_silhouette() {
        let o = obj();
        // Eye 5 m away on the ground axis, level with the base.
        let eye = Vec3::new(0.0, 1.0, 0.0);
        let e = o.angular_extent(eye).expect("extent");
        // The cylinder's top (4 m up at 5 m range) is above the base.
        assert!(e.top_elevation > e.base_elevation);
        assert!((e.base_elevation - 0.0).abs() < 1e-12);
        // 1 m radius at 5 m ground distance: asin(0.2).
        assert!((e.half_width - 0.2f64.asin()).abs() < 1e-12);
        // Center azimuth points toward (3, 4).
        assert!((e.center_azimuth - 3.0f64.atan2(4.0)).abs() < 1e-12);
        assert!(e.distance > 5.0);
    }

    #[test]
    fn angular_extent_degenerate_when_eye_at_center() {
        let o = obj();
        assert!(o.angular_extent(o.center()).is_none());
    }

    #[test]
    fn sphere_extent_is_symmetric_cap() {
        let o = SceneObject {
            kind: ObjectKind::Sphere,
            position: Vec3::new(0.0, 0.0, 10.0),
            height: 0.0,
            ..obj()
        };
        let e = o.angular_extent(Vec3::new(0.0, 0.0, 0.0)).expect("extent");
        let center_elev = (e.base_elevation + e.top_elevation) * 0.5;
        assert!((e.top_elevation - center_elev - e.half_width).abs() < 1e-12);
        assert!((e.center_azimuth - 0.0).abs() < 1e-12);
    }
}
