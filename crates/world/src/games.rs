//! The nine-game catalog of the paper (Table 2 / Table 3).
//!
//! Each [`GameSpec`] mirrors one of the paper's Unity games: same world
//! dimensions and grid-point scale (Table 3), same genre and movement type
//! (Table 2), plus a procedural object-density field whose *character*
//! matches the paper's description — e.g. Viking Village's highly
//! non-uniform density (deep quadtree, 2–28 m cutoffs), DS's dense
//! start/finish areas, Racing Mountain's track-side forest.

use crate::grid::GridSpec;
use crate::noise::{fbm, SmallRng};
use crate::object::{ObjectId, ObjectKind, SceneObject};
use crate::quadtree::Rect;
use crate::scene::{ReachableArea, Scene};
use crate::terrain::Terrain;
use crate::vec::Vec2;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The nine games studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GameId {
    /// Racing Mountain — racing/chasing, outdoor (evaluated on testbed).
    RacingMountain,
    /// DS — racing/chasing, outdoor.
    Ds,
    /// Viking Village — competing shooting, outdoor (evaluated on testbed).
    VikingVillage,
    /// CTS Procedural World — group adventure/mission, outdoor (testbed).
    Cts,
    /// FPS — competing shooting, outdoor.
    Fps,
    /// Soccer — group adventure/mission, outdoor.
    Soccer,
    /// Pool — static sports, indoor.
    Pool,
    /// Bowling — static sports, indoor.
    Bowling,
    /// Corridor — group adventure, indoor.
    Corridor,
}

impl GameId {
    /// All nine games, outdoor first, as listed in Table 2.
    pub const ALL: [GameId; 9] = [
        GameId::RacingMountain,
        GameId::Ds,
        GameId::VikingVillage,
        GameId::Cts,
        GameId::Fps,
        GameId::Soccer,
        GameId::Pool,
        GameId::Bowling,
        GameId::Corridor,
    ];

    /// The three games used in the end-to-end testbed evaluation (§7).
    pub const TESTBED: [GameId; 3] = [GameId::VikingVillage, GameId::Cts, GameId::RacingMountain];

    /// Short display name as used in the paper's tables.
    pub fn short_name(self) -> &'static str {
        match self {
            GameId::RacingMountain => "Racing",
            GameId::Ds => "DS",
            GameId::VikingVillage => "Viking",
            GameId::Cts => "CTS",
            GameId::Fps => "FPS",
            GameId::Soccer => "Soccer",
            GameId::Pool => "Pool",
            GameId::Bowling => "Bowling",
            GameId::Corridor => "Corridor",
        }
    }
}

impl fmt::Display for GameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Genre of a game (Table 2's "Genre" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GameGenre {
    /// Cars chase each other on a closed track.
    RacingChasing,
    /// Players roam freely and fight.
    CompetingShooting,
    /// A party travels together through the world.
    GroupAdventure,
    /// Players stay near a fixed play area.
    StaticSports,
}

impl GameGenre {
    /// Genre label as printed in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            GameGenre::RacingChasing => "racing/chasing",
            GameGenre::CompetingShooting => "competing shooting",
            GameGenre::GroupAdventure => "group adventure/mission",
            GameGenre::StaticSports => "static sports",
        }
    }
}

/// Density-field shape driving procedural object placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum DensityProfile {
    /// Strong clustered hotspots over a sparse base (Viking).
    Village {
        hotspots: usize,
        hotspot_sigma: f64,
        contrast: f64,
    },
    /// Broad noise-modulated spread (CTS, FPS, Soccer).
    Rolling { contrast: f64 },
    /// Objects concentrated near the track with a few dense pockets
    /// (Racing Mountain's track-side forest, DS's stadium at start/finish).
    TrackSide {
        pocket_count: usize,
        pocket_sigma: f64,
        pocket_weight: f64,
    },
    /// Indoor room: furniture around walls and play area.
    Indoor,
}

/// Full specification of one game's world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameSpec {
    /// Which game.
    pub id: GameId,
    /// Genre per Table 2.
    pub genre: GameGenre,
    /// Foreground-interaction description per Table 2.
    pub fi_description: &'static str,
    /// Indoor or outdoor.
    pub indoor: bool,
    /// World width (x), meters — Table 3 "Game Dimension".
    pub width: f64,
    /// World depth (z), meters.
    pub depth: f64,
    /// Grid spacing in meters (1/32 m for walkable games; coarser for the
    /// large racing worlds where only the track is gridded).
    pub grid_spacing: f64,
    /// Number of objects to place.
    pub object_count: usize,
    /// Mean triangle count per object.
    pub mean_triangles: u32,
    /// Upper bound on FI render time on the reference device, ms (< 4 ms
    /// per §4.3).
    pub fi_render_ms: f64,
    /// Typical player speed, m/s.
    pub player_speed: f64,
    /// Terrain amplitude, m.
    terrain_amplitude: f64,
    /// Density field shape.
    density: DensityProfile,
    /// Track corridor half-width for racing games, if any.
    track_half_width: Option<f64>,
}

impl GameSpec {
    /// The specification for a given game.
    pub fn for_game(id: GameId) -> GameSpec {
        match id {
            GameId::VikingVillage => GameSpec {
                id,
                genre: GameGenre::CompetingShooting,
                fi_description: "roaming and killing enemies",
                indoor: false,
                width: 187.0,
                depth: 130.0,
                grid_spacing: 1.0 / 32.0,
                object_count: 1400,
                mean_triangles: 16_000,
                fi_render_ms: 3.5,
                player_speed: 2.5,
                terrain_amplitude: 5.0,
                density: DensityProfile::Village {
                    hotspots: 10,
                    hotspot_sigma: 11.0,
                    contrast: 24.0,
                },
                track_half_width: None,
            },
            GameId::Cts => GameSpec {
                id,
                genre: GameGenre::GroupAdventure,
                fi_description: "walking and jumping",
                indoor: false,
                width: 512.0,
                depth: 512.0,
                grid_spacing: 1.0 / 32.0,
                object_count: 2600,
                mean_triangles: 14_000,
                fi_render_ms: 3.0,
                player_speed: 2.0,
                terrain_amplitude: 14.0,
                density: DensityProfile::Rolling { contrast: 3.0 },
                track_half_width: None,
            },
            GameId::RacingMountain => GameSpec {
                id,
                genre: GameGenre::RacingChasing,
                fi_description: "racing car movement",
                indoor: false,
                width: 1090.0,
                depth: 1096.0,
                grid_spacing: 0.39,
                object_count: 900,
                mean_triangles: 30_000,
                fi_render_ms: 3.8,
                player_speed: 22.0,
                terrain_amplitude: 35.0,
                density: DensityProfile::TrackSide {
                    pocket_count: 5,
                    pocket_sigma: 45.0,
                    pocket_weight: 16.0,
                },
                track_half_width: Some(9.0),
            },
            GameId::Ds => GameSpec {
                id,
                genre: GameGenre::RacingChasing,
                fi_description: "racing car movement",
                indoor: false,
                width: 1286.0,
                depth: 361.0,
                grid_spacing: 0.39,
                object_count: 700,
                mean_triangles: 30_000,
                fi_render_ms: 3.8,
                player_speed: 25.0,
                terrain_amplitude: 10.0,
                density: DensityProfile::TrackSide {
                    pocket_count: 2,
                    pocket_sigma: 60.0,
                    pocket_weight: 40.0,
                },
                track_half_width: Some(10.0),
            },
            GameId::Fps => GameSpec {
                id,
                genre: GameGenre::CompetingShooting,
                fi_description: "roaming and killing enemies",
                indoor: false,
                width: 71.0,
                depth: 70.0,
                grid_spacing: 1.0 / 32.0,
                object_count: 500,
                mean_triangles: 12_000,
                fi_render_ms: 3.5,
                player_speed: 3.0,
                terrain_amplitude: 1.5,
                density: DensityProfile::Rolling { contrast: 4.0 },
                track_half_width: None,
            },
            GameId::Soccer => GameSpec {
                id,
                genre: GameGenre::GroupAdventure,
                fi_description: "moving and hitting balls",
                indoor: false,
                width: 104.0,
                depth: 140.0,
                grid_spacing: 1.0 / 32.0,
                object_count: 420,
                mean_triangles: 10_000,
                fi_render_ms: 3.2,
                player_speed: 4.0,
                terrain_amplitude: 0.5,
                density: DensityProfile::Rolling { contrast: 2.0 },
                track_half_width: None,
            },
            GameId::Pool => GameSpec {
                id,
                genre: GameGenre::StaticSports,
                fi_description: "walking and hitting balls",
                indoor: true,
                width: 10.0,
                depth: 13.0,
                grid_spacing: 1.0 / 32.0,
                object_count: 110,
                mean_triangles: 14_000,
                fi_render_ms: 2.5,
                player_speed: 1.0,
                terrain_amplitude: 0.0,
                density: DensityProfile::Indoor,
                track_half_width: None,
            },
            GameId::Bowling => GameSpec {
                id,
                genre: GameGenre::StaticSports,
                fi_description: "walking and throwing balls",
                indoor: true,
                width: 34.0,
                depth: 41.0,
                grid_spacing: 1.0 / 32.0,
                object_count: 160,
                mean_triangles: 7000,
                fi_render_ms: 2.5,
                player_speed: 1.2,
                terrain_amplitude: 0.0,
                density: DensityProfile::Indoor,
                track_half_width: None,
            },
            GameId::Corridor => GameSpec {
                id,
                genre: GameGenre::GroupAdventure,
                fi_description: "roaming",
                indoor: true,
                width: 50.0,
                depth: 30.0,
                grid_spacing: 1.0 / 32.0,
                object_count: 220,
                mean_triangles: 8000,
                fi_render_ms: 2.8,
                player_speed: 1.5,
                terrain_amplitude: 0.0,
                density: DensityProfile::Indoor,
                track_half_width: None,
            },
        }
    }

    /// World rectangle.
    pub fn bounds(&self) -> Rect {
        Rect::from_size(self.width, self.depth)
    }

    /// The track centerline for racing games: a closed loop inset from the
    /// world edge with noise wiggle. `None` for non-track games.
    pub fn track_centerline(&self, seed: u64) -> Option<Vec<Vec2>> {
        let half_width = self.track_half_width?;
        let cx = self.width * 0.5;
        let cz = self.depth * 0.5;
        let rx = self.width * 0.5 - half_width * 2.0 - self.width * 0.08;
        let rz = self.depth * 0.5 - half_width * 2.0 - self.depth * 0.08;
        let n = 160;
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            let theta = i as f64 / n as f64 * std::f64::consts::TAU;
            // Radial wiggle makes the track non-circular but still closed.
            let wiggle = 0.75
                + 0.25
                    * fbm(
                        seed ^ 0x70,
                        theta.cos() * 2.0 + 7.0,
                        theta.sin() * 2.0 + 3.0,
                        3,
                    );
            pts.push(Vec2::new(
                cx + rx * wiggle * theta.sin(),
                cz + rz * wiggle * theta.cos(),
            ));
        }
        Some(pts)
    }

    /// Evaluates the (unnormalized) object-density field at a position.
    fn density_at(&self, seed: u64, p: Vec2, track: Option<&[Vec2]>) -> f64 {
        let noise = fbm(seed ^ 0xDE_5317, p.x / 23.0, p.z / 23.0, 3);
        match &self.density {
            DensityProfile::Village {
                hotspots,
                hotspot_sigma,
                contrast,
            } => {
                let mut rng = SmallRng::new(seed ^ 0x7077);
                let mut d = 1.0 + 0.8 * noise;
                for _ in 0..*hotspots {
                    let hx = rng.range(self.width * 0.1, self.width * 0.9);
                    let hz = rng.range(self.depth * 0.1, self.depth * 0.9);
                    let dist_sq = p.distance_sq(Vec2::new(hx, hz));
                    d += contrast * (-dist_sq / (2.0 * hotspot_sigma * hotspot_sigma)).exp();
                }
                d
            }
            DensityProfile::Rolling { contrast } => 1.0 + contrast * noise,
            DensityProfile::TrackSide {
                pocket_count,
                pocket_sigma,
                pocket_weight,
            } => {
                let track = track.expect("track games must have a centerline");
                // Base density concentrated near the track corridor.
                let mut nearest = f64::INFINITY;
                for w in track.iter().step_by(4) {
                    nearest = nearest.min(p.distance_sq(*w));
                }
                let _ = nearest;
                // The paper describes these worlds as sparse almost
                // everywhere — "a few regions along the track are very
                // close to a forest of trees while other regions are
                // sparsely populated with few assets" — so the base is a
                // thin uniform scatter and the dense pockets below carry
                // nearly all the geometry.
                let mut d = 0.04 * (0.5 + noise);
                // Dense pockets along the track (stadium / forest).
                let n = track.len();
                let pockets = (*pocket_count).max(1);
                for k in 0..*pocket_count {
                    let anchor = track[(k * n / pockets) % n];
                    let dist_sq = p.distance_sq(anchor);
                    d += pocket_weight * (-dist_sq / (2.0 * pocket_sigma * pocket_sigma)).exp();
                }
                d
            }
            DensityProfile::Indoor => {
                // Furniture hugs the walls; play area in the middle is
                // clearer.
                let margin_x = (p.x.min(self.width - p.x)) / self.width;
                let margin_z = (p.z.min(self.depth - p.z)) / self.depth;
                let wall = 1.0 - margin_x.min(margin_z) * 2.0;
                0.6 + 1.6 * wall.max(0.0) + 0.5 * noise
            }
        }
    }

    /// Builds the procedural scene for this game, deterministically from
    /// `seed`.
    pub fn build_scene(&self, seed: u64) -> Scene {
        let bounds = self.bounds();
        let terrain = if self.terrain_amplitude > 0.0 {
            Terrain::new(
                seed ^ 0x7E44,
                self.terrain_amplitude,
                self.width.max(60.0) / 6.0,
            )
        } else {
            Terrain::flat()
        };
        let track = self.track_centerline(seed);
        let reachable = match (&track, self.track_half_width) {
            (Some(centerline), Some(half_width)) => ReachableArea::Track {
                centerline: centerline.clone(),
                half_width,
            },
            _ => ReachableArea::All,
        };

        // Rejection-sample object positions against the density field.
        let mut rng = SmallRng::new(seed ^ 0x00B7_EC75);
        let mut max_density: f64 = 0.0;
        for _ in 0..400 {
            let p = Vec2::new(rng.range(0.0, self.width), rng.range(0.0, self.depth));
            max_density = max_density.max(self.density_at(seed, p, track.as_deref()));
        }
        max_density = max_density.max(1e-6) * 1.3;

        let mut objects = Vec::with_capacity(self.object_count);
        let mut id = 0u32;
        let mut attempts = 0usize;
        let max_attempts = self.object_count * 400;
        while objects.len() < self.object_count && attempts < max_attempts {
            attempts += 1;
            let p = Vec2::new(rng.range(0.0, self.width), rng.range(0.0, self.depth));
            let d = self.density_at(seed, p, track.as_deref());
            if rng.next_f64() * max_density > d {
                continue;
            }
            // Keep the drivable corridor itself clear for track games.
            if let (Some(centerline), Some(hw)) = (&track, self.track_half_width) {
                let area = ReachableArea::Track {
                    centerline: centerline.clone(),
                    half_width: hw,
                };
                if area.contains(&bounds, p) {
                    continue;
                }
            }
            let size_u = rng.next_f64();
            let kind = match rng.below(3) {
                0 => ObjectKind::Sphere,
                1 => ObjectKind::Cylinder,
                _ => ObjectKind::Box,
            };
            let (radius, height) = match kind {
                ObjectKind::Sphere => {
                    let r = 0.3 + 1.2 * size_u;
                    (r, r * 2.0)
                }
                ObjectKind::Cylinder => (0.3 + 0.9 * size_u, 2.0 + 8.0 * size_u),
                ObjectKind::Box => (0.8 + 3.0 * size_u, 2.0 + 6.0 * size_u),
            };
            let tris = (self.mean_triangles as f64 * (0.3 + 1.6 * size_u * size_u)) as u32;
            objects.push(SceneObject {
                id: ObjectId(id),
                position: terrain.foothold(p),
                radius,
                height,
                triangles: tris.max(50),
                albedo: 0.2 + 0.6 * rng.next_f64(),
                kind,
                texture_seed: seed ^ ((id as u64) << 17),
            });
            id += 1;
        }

        let grid = GridSpec::covering(Vec2::ZERO, self.width, self.depth, self.grid_spacing);
        Scene::new(bounds, terrain, objects, reachable, grid)
    }
}

/// Convenience accessor over all nine game specifications.
#[derive(Debug, Clone)]
pub struct GameCatalog;

impl GameCatalog {
    /// Specs for all nine games in Table 2 order.
    pub fn all() -> Vec<GameSpec> {
        GameId::ALL
            .iter()
            .map(|&id| GameSpec::for_game(id))
            .collect()
    }

    /// Specs for the three testbed games (§7).
    pub fn testbed() -> Vec<GameSpec> {
        GameId::TESTBED
            .iter()
            .map(|&id| GameSpec::for_game(id))
            .collect()
    }

    /// Specs for the six outdoor games.
    pub fn outdoor() -> Vec<GameSpec> {
        Self::all().into_iter().filter(|s| !s.indoor).collect()
    }

    /// Specs for the three indoor games.
    pub fn indoor() -> Vec<GameSpec> {
        Self::all().into_iter().filter(|s| s.indoor).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_nine_games() {
        assert_eq!(GameCatalog::all().len(), 9);
        assert_eq!(GameCatalog::outdoor().len(), 6);
        assert_eq!(GameCatalog::indoor().len(), 3);
        assert_eq!(GameCatalog::testbed().len(), 3);
    }

    #[test]
    fn dimensions_match_table3() {
        let viking = GameSpec::for_game(GameId::VikingVillage);
        assert_eq!((viking.width, viking.depth), (187.0, 130.0));
        let cts = GameSpec::for_game(GameId::Cts);
        assert_eq!((cts.width, cts.depth), (512.0, 512.0));
        let racing = GameSpec::for_game(GameId::RacingMountain);
        assert_eq!((racing.width, racing.depth), (1090.0, 1096.0));
        let pool = GameSpec::for_game(GameId::Pool);
        assert_eq!((pool.width, pool.depth), (10.0, 13.0));
    }

    #[test]
    fn grid_points_match_table3_scale() {
        // Table 3: Viking 24.9M, CTS 268.4M, Racing 7.7M, DS 3.0M,
        // Pool 0.13M. Allow +-25% (procedural tracks vary in length).
        let check = |id: GameId, expected_millions: f64| {
            let spec = GameSpec::for_game(id);
            let scene = spec.build_scene(1);
            let points = scene.reachable_grid_points() as f64 / 1e6;
            assert!(
                (points / expected_millions - 1.0).abs() < 0.35,
                "{id}: {points:.2}M grid points, expected ~{expected_millions}M"
            );
        };
        check(GameId::VikingVillage, 24.9);
        check(GameId::Pool, 0.13);
        check(GameId::Corridor, 1.54);
    }

    #[test]
    fn fi_render_time_bounded_by_4ms() {
        for spec in GameCatalog::all() {
            assert!(spec.fi_render_ms < 4.0, "{}: FI > 4ms", spec.id);
        }
    }

    #[test]
    fn build_scene_is_deterministic() {
        let spec = GameSpec::for_game(GameId::Fps);
        let a = spec.build_scene(5);
        let b = spec.build_scene(5);
        assert_eq!(a.objects().len(), b.objects().len());
        assert_eq!(a.objects()[0], b.objects()[0]);
        let c = spec.build_scene(6);
        // Different seed gives different placement.
        assert_ne!(a.objects()[0].position, c.objects()[0].position);
    }

    #[test]
    fn racing_games_have_tracks() {
        for id in [GameId::RacingMountain, GameId::Ds] {
            let spec = GameSpec::for_game(id);
            let track = spec.track_centerline(3).expect("racing game needs track");
            assert!(track.len() >= 32);
            // Track stays in bounds.
            let bounds = spec.bounds();
            for p in &track {
                assert!(bounds.contains(*p), "{id}: track point {p} out of bounds");
            }
        }
        assert!(GameSpec::for_game(GameId::Pool)
            .track_centerline(3)
            .is_none());
    }

    #[test]
    fn track_corridor_is_reachable_and_clear_of_objects() {
        let spec = GameSpec::for_game(GameId::RacingMountain);
        let scene = spec.build_scene(2);
        let track = spec.track_centerline(2).unwrap();
        // Points on the centerline are reachable.
        let mut reachable = 0;
        for p in track.iter().step_by(10) {
            if scene.is_reachable(*p) {
                reachable += 1;
            }
        }
        assert!(
            reachable >= 14,
            "most centerline points reachable: {reachable}"
        );
        // No objects sit inside the corridor.
        for p in track.iter().step_by(10) {
            let blocking = scene
                .objects_within(*p, 2.0)
                .filter(|o| scene.is_reachable(o.position.ground()))
                .count();
            assert_eq!(blocking, 0, "object blocking track at {p}");
        }
    }

    #[test]
    fn viking_density_is_nonuniform() {
        // The paper attributes Viking's deep quadtree to high density
        // variance. Check our field reproduces a large spread.
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(7);
        let mut densities = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let p = Vec2::new(
                    spec.width * (i as f64 + 0.5) / 12.0,
                    spec.depth * (j as f64 + 0.5) / 12.0,
                );
                densities.push(scene.triangles_within(p, 8.0) as f64);
            }
        }
        let max = densities.iter().cloned().fold(0.0, f64::max);
        let mean = densities.iter().sum::<f64>() / densities.len() as f64;
        assert!(
            max > mean * 4.0,
            "expected strong hotspots: max={max} mean={mean}"
        );
    }

    #[test]
    fn object_count_reached() {
        for spec in GameCatalog::all() {
            let scene = spec.build_scene(3);
            let placed = scene.objects().len();
            assert!(
                placed as f64 >= spec.object_count as f64 * 0.5,
                "{}: placed {placed} of {}",
                spec.id,
                spec.object_count
            );
        }
    }

    #[test]
    fn genre_labels() {
        assert_eq!(GameGenre::RacingChasing.label(), "racing/chasing");
        assert_eq!(
            GameSpec::for_game(GameId::VikingVillage).genre.label(),
            "competing shooting"
        );
    }
}
