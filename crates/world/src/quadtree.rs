//! 2-D region quadtree.
//!
//! The adaptive cutoff scheme (§4.3) recursively partitions the game's
//! 2-D movement plane into four equal subregions until a caller-supplied
//! uniformity test passes; the unpartitioned subregions are the paper's
//! "leaf regions". This module provides the generic spatial structure; the
//! cutoff-specific decision logic lives in `coterie-core`.

use crate::vec::Vec2;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle on the ground plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner (inclusive).
    pub min: Vec2,
    /// Maximum corner (exclusive for point-location purposes).
    pub max: Vec2,
}

impl Rect {
    /// Creates a rectangle from corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not component-wise `<= max`.
    pub fn new(min: Vec2, max: Vec2) -> Self {
        assert!(
            min.x <= max.x && min.z <= max.z,
            "degenerate rect {min} .. {max}"
        );
        Rect { min, max }
    }

    /// Rectangle anchored at the origin with the given extent.
    pub fn from_size(width: f64, depth: f64) -> Self {
        Rect::new(Vec2::ZERO, Vec2::new(width, depth))
    }

    /// Width along x, in meters.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Depth along z, in meters.
    #[inline]
    pub fn depth(&self) -> f64 {
        self.max.z - self.min.z
    }

    /// Area in square meters.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.depth()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Vec2 {
        Vec2::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.z + self.max.z) * 0.5,
        )
    }

    /// Whether the rectangle contains a point (min-inclusive,
    /// max-exclusive, so quadrant tiles partition the parent exactly).
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x < self.max.x && p.z >= self.min.z && p.z < self.max.z
    }

    /// Splits into four equal quadrants, ordered `[SW, SE, NW, NE]`
    /// (min-z/min-x first).
    pub fn quadrants(&self) -> [Rect; 4] {
        let c = self.center();
        [
            Rect::new(self.min, c),
            Rect::new(Vec2::new(c.x, self.min.z), Vec2::new(self.max.x, c.z)),
            Rect::new(Vec2::new(self.min.x, c.z), Vec2::new(c.x, self.max.z)),
            Rect::new(c, self.max),
        ]
    }

    /// A deterministic interior sample point parameterized by `(u, v)` in
    /// `[0, 1)` — used for sampling `K` locations in a region.
    #[inline]
    pub fn sample(&self, u: f64, v: f64) -> Vec2 {
        Vec2::new(
            self.min.x + u.clamp(0.0, 1.0) * self.width(),
            self.min.z + v.clamp(0.0, 1.0) * self.depth(),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

/// Identifier of a quadtree leaf region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LeafId(pub u32);

impl fmt::Display for LeafId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "leaf#{}", self.0)
    }
}

/// A leaf region of the quadtree with its associated payload (for the
/// adaptive cutoff scheme: the region's cutoff radius and distance
/// threshold).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Leaf<T> {
    /// Leaf identifier (dense, 0-based).
    pub id: LeafId,
    /// The region covered by this leaf.
    pub rect: Rect,
    /// Depth in the tree (root = 0).
    pub depth: u32,
    /// Caller payload.
    pub value: T,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Internal { children: [u32; 4] },
    Leaf { leaf: u32 },
}

/// The outcome of the partitioning decision for one region.
#[derive(Debug, Clone, PartialEq)]
pub enum Partition<T> {
    /// Stop here; the region becomes a leaf with this payload.
    Stop(T),
    /// Recurse into four quadrants.
    Split,
}

/// A region quadtree whose shape is driven by a caller decision function.
///
/// ```
/// use coterie_world::{Quadtree, Rect};
/// use coterie_world::quadtree::Partition;
///
/// // Split twice everywhere -> 16 uniform leaves.
/// let qt = Quadtree::build(Rect::from_size(16.0, 16.0), 8, &mut |_r, depth| {
///     if depth < 2 { Partition::<u32>::Split } else { Partition::Stop(depth) }
/// });
/// assert_eq!(qt.leaves().len(), 16);
/// assert_eq!(qt.stats().max_depth, 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Quadtree<T> {
    root_rect: Rect,
    nodes: Vec<Node>,
    leaves: Vec<Leaf<T>>,
}

impl<T> Quadtree<T> {
    /// Builds the tree by recursive descent. `decide` is called with each
    /// region and its depth; returning [`Partition::Split`] recurses (until
    /// `max_depth`, where the region is forced into a leaf by calling
    /// `decide` once more and using its payload even if it asks to split —
    /// in that case `decide` must return `Stop` at `max_depth`).
    ///
    /// # Panics
    ///
    /// Panics if `decide` returns [`Partition::Split`] at `max_depth`.
    pub fn build(
        root: Rect,
        max_depth: u32,
        decide: &mut dyn FnMut(&Rect, u32) -> Partition<T>,
    ) -> Self {
        let mut tree = Quadtree {
            root_rect: root,
            nodes: Vec::new(),
            leaves: Vec::new(),
        };
        tree.build_node(root, 0, max_depth, decide);
        tree
    }

    fn build_node(
        &mut self,
        rect: Rect,
        depth: u32,
        max_depth: u32,
        decide: &mut dyn FnMut(&Rect, u32) -> Partition<T>,
    ) -> u32 {
        let idx = self.nodes.len() as u32;
        match decide(&rect, depth) {
            Partition::Stop(value) => {
                let leaf_idx = self.leaves.len() as u32;
                self.leaves.push(Leaf {
                    id: LeafId(leaf_idx),
                    rect,
                    depth,
                    value,
                });
                self.nodes.push(Node::Leaf { leaf: leaf_idx });
                idx
            }
            Partition::Split => {
                assert!(
                    depth < max_depth,
                    "decision function requested split at max depth {max_depth}"
                );
                self.nodes.push(Node::Internal { children: [0; 4] });
                let mut children = [0u32; 4];
                for (i, q) in rect.quadrants().into_iter().enumerate() {
                    children[i] = self.build_node(q, depth + 1, max_depth, decide);
                }
                if let Node::Internal { children: slot } = &mut self.nodes[idx as usize] {
                    *slot = children;
                }
                idx
            }
        }
    }

    /// The region covered by the whole tree.
    #[inline]
    pub fn root_rect(&self) -> Rect {
        self.root_rect
    }

    /// All leaf regions, in creation (depth-first SW→NE) order.
    #[inline]
    pub fn leaves(&self) -> &[Leaf<T>] {
        &self.leaves
    }

    /// The leaf containing a point, or `None` if the point is outside the
    /// root region (points exactly on the max edge are clamped inward).
    pub fn locate(&self, p: Vec2) -> Option<&Leaf<T>> {
        // Clamp points on the outer max edge inward so the whole closed
        // world rectangle resolves to some leaf.
        let eps = 1e-9;
        let p = Vec2::new(
            p.x.min(self.root_rect.max.x - eps)
                .max(self.root_rect.min.x),
            p.z.min(self.root_rect.max.z - eps)
                .max(self.root_rect.min.z),
        );
        if !self.root_rect.contains(p) {
            return None;
        }
        let mut node = 0u32;
        let mut rect = self.root_rect;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { leaf } => return Some(&self.leaves[*leaf as usize]),
                Node::Internal { children } => {
                    let c = rect.center();
                    let east = p.x >= c.x;
                    let north = p.z >= c.z;
                    let quad = match (east, north) {
                        (false, false) => 0,
                        (true, false) => 1,
                        (false, true) => 2,
                        (true, true) => 3,
                    };
                    node = children[quad];
                    rect = rect.quadrants()[quad];
                }
            }
        }
    }

    /// Mutable access to a leaf's payload by id.
    pub fn leaf_mut(&mut self, id: LeafId) -> Option<&mut Leaf<T>> {
        self.leaves.get_mut(id.0 as usize)
    }

    /// Leaf by id.
    pub fn leaf(&self, id: LeafId) -> Option<&Leaf<T>> {
        self.leaves.get(id.0 as usize)
    }

    /// Aggregate statistics matching the paper's Table 3 columns
    /// (average/maximum leaf depth, leaf count).
    pub fn stats(&self) -> QuadtreeStats {
        let leaf_count = self.leaves.len();
        let max_depth = self.leaves.iter().map(|l| l.depth).max().unwrap_or(0);
        let avg_depth = if leaf_count == 0 {
            0.0
        } else {
            self.leaves.iter().map(|l| l.depth as f64).sum::<f64>() / leaf_count as f64
        };
        QuadtreeStats {
            leaf_count,
            avg_depth,
            max_depth,
        }
    }
}

/// Shape statistics of a built quadtree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadtreeStats {
    /// Number of leaf regions.
    pub leaf_count: usize,
    /// Mean depth across leaves.
    pub avg_depth: f64,
    /// Maximum leaf depth.
    pub max_depth: u32,
}

impl fmt::Display for QuadtreeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} leaves, depth {:.2}/{}",
            self.leaf_count, self.avg_depth, self.max_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_tree(levels: u32) -> Quadtree<u32> {
        Quadtree::build(Rect::from_size(64.0, 64.0), 10, &mut |_r, d| {
            if d < levels {
                Partition::Split
            } else {
                Partition::Stop(d)
            }
        })
    }

    #[test]
    fn single_leaf_tree() {
        let qt = Quadtree::build(Rect::from_size(10.0, 10.0), 4, &mut |_r, _d| {
            Partition::Stop(42u32)
        });
        assert_eq!(qt.leaves().len(), 1);
        assert_eq!(qt.stats().max_depth, 0);
        assert_eq!(qt.locate(Vec2::new(5.0, 5.0)).unwrap().value, 42);
    }

    #[test]
    fn uniform_split_counts() {
        for levels in 0..4 {
            let qt = uniform_tree(levels);
            assert_eq!(qt.leaves().len(), 4usize.pow(levels));
            let stats = qt.stats();
            assert_eq!(stats.max_depth, levels);
            assert!((stats.avg_depth - levels as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn locate_finds_correct_quadrant() {
        let qt = uniform_tree(1);
        // 4 leaves in SW, SE, NW, NE order.
        let sw = qt.locate(Vec2::new(1.0, 1.0)).unwrap();
        let ne = qt.locate(Vec2::new(63.0, 63.0)).unwrap();
        assert!(sw.rect.contains(Vec2::new(1.0, 1.0)));
        assert!(ne.rect.contains(Vec2::new(63.0, 63.0)));
        assert_ne!(sw.id, ne.id);
    }

    #[test]
    fn locate_outside_is_none_inside_edges_clamped() {
        let qt = uniform_tree(2);
        assert!(qt.locate(Vec2::new(-1.0, 5.0)).is_some()); // clamped to min edge
                                                            // Max edge is clamped inward rather than rejected:
        assert!(qt.locate(Vec2::new(64.0, 64.0)).is_some());
        assert!(qt.locate(Vec2::new(200.0, 5.0)).is_some()); // clamped
    }

    #[test]
    fn leaves_partition_root_exactly() {
        let qt = uniform_tree(3);
        let total: f64 = qt.leaves().iter().map(|l| l.rect.area()).sum();
        assert!((total - 64.0 * 64.0).abs() < 1e-6);
    }

    #[test]
    fn every_interior_point_locates_to_containing_leaf() {
        let qt = Quadtree::build(Rect::from_size(32.0, 32.0), 6, &mut |r, d| {
            // Irregular: split only the SW-ish regions.
            if d < 3 && r.min.x < 8.0 && r.min.z < 8.0 {
                Partition::Split
            } else {
                Partition::Stop(d)
            }
        });
        for i in 0..32 {
            for j in 0..32 {
                let p = Vec2::new(i as f64 + 0.5, j as f64 + 0.5);
                let leaf = qt.locate(p).expect("point must land in a leaf");
                assert!(leaf.rect.contains(p), "{p} not in {}", leaf.rect);
            }
        }
    }

    #[test]
    fn quadrants_tile_parent() {
        let r = Rect::new(Vec2::new(-2.0, 4.0), Vec2::new(6.0, 12.0));
        let quads = r.quadrants();
        let area: f64 = quads.iter().map(Rect::area).sum();
        assert!((area - r.area()).abs() < 1e-9);
        // Each point belongs to exactly one quadrant.
        let p = Vec2::new(1.9, 7.9);
        let owners = quads.iter().filter(|q| q.contains(p)).count();
        assert_eq!(owners, 1);
    }

    #[test]
    fn rect_sample_inside() {
        let r = Rect::new(Vec2::new(1.0, 2.0), Vec2::new(3.0, 8.0));
        for i in 0..10 {
            let p = r.sample(i as f64 / 10.0, (9 - i) as f64 / 10.0);
            assert!(p.x >= r.min.x && p.x <= r.max.x);
            assert!(p.z >= r.min.z && p.z <= r.max.z);
        }
    }

    #[test]
    #[should_panic(expected = "split at max depth")]
    fn split_at_max_depth_panics() {
        let _ = Quadtree::build(Rect::from_size(4.0, 4.0), 1, &mut |_r, _d| {
            Partition::<()>::Split
        });
    }

    #[test]
    fn leaf_lookup_by_id() {
        let mut qt = uniform_tree(1);
        let id = qt.leaves()[2].id;
        qt.leaf_mut(id).unwrap().value = 99;
        assert_eq!(qt.leaf(id).unwrap().value, 99);
        assert!(qt.leaf(LeafId(1000)).is_none());
    }

    #[test]
    fn stats_display() {
        let qt = uniform_tree(2);
        let s = format!("{}", qt.stats());
        assert!(s.contains("16 leaves"));
    }
}
