//! Deterministic value noise and fractional Brownian motion.
//!
//! Used for terrain heightfields, ground albedo texture, object surface
//! detail, and per-game object-density fields. Everything is seeded so each
//! experiment is exactly reproducible.

/// Fast deterministic integer hash (SplitMix64 finalizer).
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a 2-D integer lattice coordinate with a seed into `[0, 1)`.
#[inline]
pub fn lattice(seed: u64, ix: i64, iz: i64) -> f64 {
    let h = hash64(seed ^ hash64(ix as u64).wrapping_mul(0x9E37_79B9) ^ hash64(iz as u64));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Smoothstep interpolation weight.
#[inline(always)]
fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Inline `f64::floor`. The workspace targets baseline x86-64 (SSE2, no
/// `roundsd`), where `f64::floor` lowers to an out-of-line libm call —
/// and the noise hot path calls it twice per evaluation. Truncating via
/// `i64` and correcting negatives gives the same value with two cheap
/// conversions. Exact for `|x| < 2^53`; above that every `f64` is an
/// integer, and infinities/NaN take the libm path unchanged.
#[inline(always)]
fn fast_floor(x: f64) -> f64 {
    if x.abs() < 9_007_199_254_740_992.0 {
        let t = x as i64 as f64;
        if t > x {
            t - 1.0
        } else {
            t
        }
    } else {
        x.floor()
    }
}

/// Bilinear value noise in `[0, 1)` at a continuous 2-D coordinate.
///
/// The lattice has unit spacing; scale the inputs to change frequency.
///
/// ```
/// use coterie_world::noise::value_noise;
/// let a = value_noise(1, 0.5, 0.5);
/// let b = value_noise(1, 0.5, 0.5);
/// assert_eq!(a, b); // deterministic
/// assert!((0.0..1.0).contains(&a));
/// ```
#[inline]
pub fn value_noise(seed: u64, x: f64, z: f64) -> f64 {
    let x0 = fast_floor(x);
    let z0 = fast_floor(z);
    let fx = smooth(x - x0);
    let fz = smooth(z - z0);
    let (ix, iz) = (x0 as i64, z0 as i64);
    let v00 = lattice(seed, ix, iz);
    let v10 = lattice(seed, ix + 1, iz);
    let v01 = lattice(seed, ix, iz + 1);
    let v11 = lattice(seed, ix + 1, iz + 1);
    let a = v00 + (v10 - v00) * fx;
    let b = v01 + (v11 - v01) * fx;
    a + (b - a) * fz
}

/// One-cell memo for spatially coherent [`value_noise`] sweeps.
///
/// `value_noise` spends nearly all its time hashing the four lattice
/// corners of the cell containing the sample point. Renderer sweeps
/// (ground rows, sky columns) move through cells slowly — tens to
/// hundreds of consecutive samples share a cell — so remembering the
/// last cell's corners skips the hashes entirely on a hit. The
/// interpolation path is unchanged, so [`value_noise_cached`] returns
/// results bit-identical to [`value_noise`] regardless of hit pattern.
#[derive(Debug, Clone, Default)]
pub struct NoiseCellCache {
    valid: bool,
    seed: u64,
    ix: i64,
    iz: i64,
    v00: f64,
    v10: f64,
    v01: f64,
    v11: f64,
}

impl NoiseCellCache {
    /// An empty cache (first lookup always misses).
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`value_noise`] with a one-cell corner memo; bit-identical results.
///
/// ```
/// use coterie_world::noise::{value_noise, value_noise_cached, NoiseCellCache};
/// let mut cache = NoiseCellCache::new();
/// for i in 0..100 {
///     let x = i as f64 * 0.071;
///     assert_eq!(value_noise_cached(&mut cache, 9, x, 0.4), value_noise(9, x, 0.4));
/// }
/// ```
#[inline(always)]
pub fn value_noise_cached(cache: &mut NoiseCellCache, seed: u64, x: f64, z: f64) -> f64 {
    let x0 = fast_floor(x);
    let z0 = fast_floor(z);
    let fx = smooth(x - x0);
    let fz = smooth(z - z0);
    let (ix, iz) = (x0 as i64, z0 as i64);
    if !(cache.valid && cache.seed == seed && cache.ix == ix && cache.iz == iz) {
        fill_cell(cache, seed, ix, iz);
    }
    let a = cache.v00 + (cache.v10 - cache.v00) * fx;
    let b = cache.v01 + (cache.v11 - cache.v01) * fx;
    a + (b - a) * fz
}

#[inline(always)]
fn fill_cell(cache: &mut NoiseCellCache, seed: u64, ix: i64, iz: i64) {
    cache.valid = true;
    cache.seed = seed;
    cache.ix = ix;
    cache.iz = iz;
    cache.v00 = lattice(seed, ix, iz);
    cache.v10 = lattice(seed, ix + 1, iz);
    cache.v01 = lattice(seed, ix, iz + 1);
    cache.v11 = lattice(seed, ix + 1, iz + 1);
}

/// Evaluates the four points of a central-difference cross — `(x1, zc)`,
/// `(x0, zc)`, `(xc, z1)`, `(xc, z0)` — against one cache, in that
/// order. Bit-identical to four [`value_noise_cached`] calls.
///
/// The terrain normal's probes sit `2·eps` apart, so almost always in
/// one lattice cell: the cell is then checked and filled once, the two
/// x-probes share their column weight, and the two z-probes share their
/// row interpolants. Probes straddling a cell edge fall back to
/// independent cached evaluation (same values, by [`value_noise_cached`]'s
/// own guarantee).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn value_noise_cached_cross(
    cache: &mut NoiseCellCache,
    seed: u64,
    x1: f64,
    x0: f64,
    xc: f64,
    z1: f64,
    z0: f64,
    zc: f64,
) -> [f64; 4] {
    let x1f = fast_floor(x1);
    let x0f = fast_floor(x0);
    let xcf = fast_floor(xc);
    let z1f = fast_floor(z1);
    let z0f = fast_floor(z0);
    let zcf = fast_floor(zc);
    let (ix1, ix0, ixc) = (x1f as i64, x0f as i64, xcf as i64);
    let (iz1, iz0, izc) = (z1f as i64, z0f as i64, zcf as i64);
    if ix1 == ixc && ix0 == ixc && iz1 == izc && iz0 == izc {
        if !(cache.valid && cache.seed == seed && cache.ix == ixc && cache.iz == izc) {
            fill_cell(cache, seed, ixc, izc);
        }
        let fx1 = smooth(x1 - x1f);
        let fx0 = smooth(x0 - x0f);
        let fxc = smooth(xc - xcf);
        let fz1 = smooth(z1 - z1f);
        let fz0 = smooth(z0 - z0f);
        let fzc = smooth(zc - zcf);
        let a1 = cache.v00 + (cache.v10 - cache.v00) * fx1;
        let b1 = cache.v01 + (cache.v11 - cache.v01) * fx1;
        let a0 = cache.v00 + (cache.v10 - cache.v00) * fx0;
        let b0 = cache.v01 + (cache.v11 - cache.v01) * fx0;
        let ac = cache.v00 + (cache.v10 - cache.v00) * fxc;
        let bc = cache.v01 + (cache.v11 - cache.v01) * fxc;
        [
            a1 + (b1 - a1) * fzc,
            a0 + (b0 - a0) * fzc,
            ac + (bc - ac) * fz1,
            ac + (bc - ac) * fz0,
        ]
    } else {
        [
            value_noise_cached(cache, seed, x1, zc),
            value_noise_cached(cache, seed, x0, zc),
            value_noise_cached(cache, seed, xc, z1),
            value_noise_cached(cache, seed, xc, z0),
        ]
    }
}

/// [`fbm`] with one [`NoiseCellCache`] per octave (`caches.len()` is the
/// octave count); bit-identical to the uncached evaluation.
#[inline(always)]
pub fn fbm_cached(caches: &mut [NoiseCellCache], seed: u64, x: f64, z: f64) -> f64 {
    let mut amp = 0.5;
    let mut freq = 1.0;
    let mut total = 0.0;
    let mut norm = 0.0;
    for (octave, cache) in caches.iter_mut().enumerate() {
        total +=
            amp * value_noise_cached(cache, seed.wrapping_add(octave as u64), x * freq, z * freq);
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    if norm > 0.0 {
        total / norm
    } else {
        0.0
    }
}

/// Fractional Brownian motion: `octaves` layers of [`value_noise`] with
/// per-octave frequency doubling and amplitude halving. Output in `[0, 1)`.
///
/// ```
/// use coterie_world::noise::fbm;
/// let v = fbm(42, 3.25, -1.5, 4);
/// assert!((0.0..1.0).contains(&v));
/// ```
pub fn fbm(seed: u64, x: f64, z: f64, octaves: u32) -> f64 {
    let mut amp = 0.5;
    let mut freq = 1.0;
    let mut total = 0.0;
    let mut norm = 0.0;
    for octave in 0..octaves {
        total += amp * value_noise(seed.wrapping_add(octave as u64), x * freq, z * freq);
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    if norm > 0.0 {
        total / norm
    } else {
        0.0
    }
}

/// A tiny deterministic PRNG (xorshift*) for procedural placement where we
/// want cheap, seedable, dependency-free streams.
///
/// ```
/// use coterie_world::noise::SmallRng;
/// let mut a = SmallRng::new(9);
/// let mut b = SmallRng::new(9);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed. A zero seed is remapped internally.
    pub fn new(seed: u64) -> Self {
        SmallRng {
            state: hash64(seed).max(1),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_distinct_inputs() {
        assert_ne!(hash64(1), hash64(2));
        assert_ne!(hash64(0), hash64(u64::MAX));
    }

    #[test]
    fn lattice_in_unit_interval() {
        for i in -10..10 {
            for j in -10..10 {
                let v = lattice(5, i, j);
                assert!((0.0..1.0).contains(&v), "lattice out of range: {v}");
            }
        }
    }

    #[test]
    fn value_noise_matches_lattice_at_integers() {
        let v = value_noise(3, 4.0, 7.0);
        assert!((v - lattice(3, 4, 7)).abs() < 1e-12);
    }

    #[test]
    fn value_noise_is_continuous() {
        // Sample two very close points; noise must not jump.
        let a = value_noise(3, 1.5, 2.5);
        let b = value_noise(3, 1.5 + 1e-6, 2.5);
        assert!((a - b).abs() < 1e-4);
    }

    #[test]
    fn fast_floor_matches_floor() {
        let mut cases = vec![
            0.0,
            -0.0,
            0.5,
            -0.5,
            1.0,
            -1.0,
            1.999_999_9,
            -1.999_999_9,
            9_007_199_254_740_991.5,
            -9_007_199_254_740_991.5,
            9_007_199_254_740_992.0,
            1e300,
            -1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for i in -1000..1000 {
            cases.push(i as f64 * 0.137);
        }
        for x in cases {
            assert_eq!(fast_floor(x), x.floor(), "fast_floor diverged at {x}");
        }
        assert!(fast_floor(f64::NAN).is_nan());
    }

    #[test]
    fn cached_noise_is_bit_identical_across_cells_and_seeds() {
        let mut cache = NoiseCellCache::new();
        // Sweep across many cell boundaries, interleaving two seeds so
        // every kind of cache miss (cell change, seed change) is hit.
        for i in -300..300 {
            let x = i as f64 * 0.173;
            let z = (i as f64 * 0.091).sin() * 5.0;
            for seed in [3u64, 9] {
                assert_eq!(
                    value_noise_cached(&mut cache, seed, x, z),
                    value_noise(seed, x, z),
                    "diverged at seed {seed}, ({x}, {z})"
                );
            }
        }
    }

    #[test]
    fn cross_matches_independent_evaluation() {
        let mut cache = NoiseCellCache::new();
        let eps = 0.04;
        // Sweep the cross straight through lattice lines so both the
        // shared-cell fast path and the straddling fallback are hit.
        for i in 0..4000 {
            let x = -2.0 + i as f64 * 0.001;
            let z = 1.5 + (i as f64 * 0.0007).sin();
            let got =
                value_noise_cached_cross(&mut cache, 7, x + eps, x - eps, x, z + eps, z - eps, z);
            let want = [
                value_noise(7, x + eps, z),
                value_noise(7, x - eps, z),
                value_noise(7, x, z + eps),
                value_noise(7, x, z - eps),
            ];
            assert_eq!(got, want, "cross diverged at ({x}, {z})");
        }
    }

    #[test]
    fn cached_fbm_matches_fbm() {
        let mut caches = [
            NoiseCellCache::new(),
            NoiseCellCache::new(),
            NoiseCellCache::new(),
            NoiseCellCache::new(),
        ];
        for i in 0..200 {
            let x = i as f64 * 0.083 - 7.0;
            let z = i as f64 * 0.031 + 2.0;
            assert_eq!(fbm_cached(&mut caches, 11, x, z), fbm(11, x, z, 4));
        }
        assert_eq!(fbm_cached(&mut [], 11, 0.5, 0.5), fbm(11, 0.5, 0.5, 0));
    }

    #[test]
    fn fbm_range_and_determinism() {
        for i in 0..100 {
            let x = i as f64 * 0.37;
            let v = fbm(11, x, -x * 0.5, 5);
            assert!((0.0..1.0).contains(&v));
            assert_eq!(v, fbm(11, x, -x * 0.5, 5));
        }
    }

    #[test]
    fn fbm_zero_octaves_is_zero() {
        assert_eq!(fbm(1, 0.3, 0.4, 0), 0.0);
    }

    #[test]
    fn fbm_differs_across_seeds() {
        assert_ne!(fbm(1, 0.3, 0.4, 4), fbm(2, 0.3, 0.4, 4));
    }

    #[test]
    fn small_rng_uniformish() {
        let mut rng = SmallRng::new(77);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn small_rng_range_and_below() {
        let mut rng = SmallRng::new(5);
        for _ in 0..1000 {
            let v = rng.range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            let k = rng.below(7);
            assert!(k < 7);
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn small_rng_range_panics_on_reversed_bounds() {
        SmallRng::new(1).range(1.0, 0.0);
    }

    #[test]
    fn small_rng_zero_seed_ok() {
        let mut rng = SmallRng::new(0);
        let _ = rng.next_u64();
    }
}
