//! Deterministic value noise and fractional Brownian motion.
//!
//! Used for terrain heightfields, ground albedo texture, object surface
//! detail, and per-game object-density fields. Everything is seeded so each
//! experiment is exactly reproducible.

/// Fast deterministic integer hash (SplitMix64 finalizer).
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a 2-D integer lattice coordinate with a seed into `[0, 1)`.
#[inline]
pub fn lattice(seed: u64, ix: i64, iz: i64) -> f64 {
    let h = hash64(seed ^ hash64(ix as u64).wrapping_mul(0x9E37_79B9) ^ hash64(iz as u64));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Smoothstep interpolation weight.
#[inline]
fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Bilinear value noise in `[0, 1)` at a continuous 2-D coordinate.
///
/// The lattice has unit spacing; scale the inputs to change frequency.
///
/// ```
/// use coterie_world::noise::value_noise;
/// let a = value_noise(1, 0.5, 0.5);
/// let b = value_noise(1, 0.5, 0.5);
/// assert_eq!(a, b); // deterministic
/// assert!((0.0..1.0).contains(&a));
/// ```
pub fn value_noise(seed: u64, x: f64, z: f64) -> f64 {
    let x0 = x.floor();
    let z0 = z.floor();
    let fx = smooth(x - x0);
    let fz = smooth(z - z0);
    let (ix, iz) = (x0 as i64, z0 as i64);
    let v00 = lattice(seed, ix, iz);
    let v10 = lattice(seed, ix + 1, iz);
    let v01 = lattice(seed, ix, iz + 1);
    let v11 = lattice(seed, ix + 1, iz + 1);
    let a = v00 + (v10 - v00) * fx;
    let b = v01 + (v11 - v01) * fx;
    a + (b - a) * fz
}

/// Fractional Brownian motion: `octaves` layers of [`value_noise`] with
/// per-octave frequency doubling and amplitude halving. Output in `[0, 1)`.
///
/// ```
/// use coterie_world::noise::fbm;
/// let v = fbm(42, 3.25, -1.5, 4);
/// assert!((0.0..1.0).contains(&v));
/// ```
pub fn fbm(seed: u64, x: f64, z: f64, octaves: u32) -> f64 {
    let mut amp = 0.5;
    let mut freq = 1.0;
    let mut total = 0.0;
    let mut norm = 0.0;
    for octave in 0..octaves {
        total += amp * value_noise(seed.wrapping_add(octave as u64), x * freq, z * freq);
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    if norm > 0.0 {
        total / norm
    } else {
        0.0
    }
}

/// A tiny deterministic PRNG (xorshift*) for procedural placement where we
/// want cheap, seedable, dependency-free streams.
///
/// ```
/// use coterie_world::noise::SmallRng;
/// let mut a = SmallRng::new(9);
/// let mut b = SmallRng::new(9);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed. A zero seed is remapped internally.
    pub fn new(seed: u64) -> Self {
        SmallRng {
            state: hash64(seed).max(1),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_distinct_inputs() {
        assert_ne!(hash64(1), hash64(2));
        assert_ne!(hash64(0), hash64(u64::MAX));
    }

    #[test]
    fn lattice_in_unit_interval() {
        for i in -10..10 {
            for j in -10..10 {
                let v = lattice(5, i, j);
                assert!((0.0..1.0).contains(&v), "lattice out of range: {v}");
            }
        }
    }

    #[test]
    fn value_noise_matches_lattice_at_integers() {
        let v = value_noise(3, 4.0, 7.0);
        assert!((v - lattice(3, 4, 7)).abs() < 1e-12);
    }

    #[test]
    fn value_noise_is_continuous() {
        // Sample two very close points; noise must not jump.
        let a = value_noise(3, 1.5, 2.5);
        let b = value_noise(3, 1.5 + 1e-6, 2.5);
        assert!((a - b).abs() < 1e-4);
    }

    #[test]
    fn fbm_range_and_determinism() {
        for i in 0..100 {
            let x = i as f64 * 0.37;
            let v = fbm(11, x, -x * 0.5, 5);
            assert!((0.0..1.0).contains(&v));
            assert_eq!(v, fbm(11, x, -x * 0.5, 5));
        }
    }

    #[test]
    fn fbm_zero_octaves_is_zero() {
        assert_eq!(fbm(1, 0.3, 0.4, 0), 0.0);
    }

    #[test]
    fn fbm_differs_across_seeds() {
        assert_ne!(fbm(1, 0.3, 0.4, 4), fbm(2, 0.3, 0.4, 4));
    }

    #[test]
    fn small_rng_uniformish() {
        let mut rng = SmallRng::new(77);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn small_rng_range_and_below() {
        let mut rng = SmallRng::new(5);
        for _ in 0..1000 {
            let v = rng.range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            let k = rng.below(7);
            assert!(k < 7);
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn small_rng_range_panics_on_reversed_bounds() {
        SmallRng::new(1).range(1.0, 0.0);
    }

    #[test]
    fn small_rng_zero_seed_ok() {
        let mut rng = SmallRng::new(0);
        let _ = rng.next_u64();
    }
}
