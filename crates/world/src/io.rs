//! Compact binary serialization for movement traces.
//!
//! The paper's workflow records player trajectories during live play and
//! replays them offline — for the similarity study (§4.1), the caching
//! emulation (§4.6) and the user study (§7.4). This module provides a
//! self-contained binary trace format so recorded sessions can be saved
//! and replayed across runs without external serializers.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   u32  = 0x43545243  ("CTRC")
//! version u16  = 1
//! players u16
//! per player:
//!   interval f64
//!   count    u64
//!   count x (time f64, x f64, z f64, yaw f64)
//! ```

use crate::trace::{Trace, TracePoint, TraceSet};
use crate::vec::Vec2;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

const MAGIC: u32 = 0x4354_5243;
const VERSION: u16 = 1;

/// Errors decoding a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceIoError {
    /// The buffer is not a trace file.
    BadMagic,
    /// The format version is unsupported.
    UnsupportedVersion(u16),
    /// The buffer ended prematurely.
    Truncated,
    /// A decoded field is impossible (non-finite time, absurd count).
    Corrupt(&'static str),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::BadMagic => write!(f, "not a coterie trace file"),
            TraceIoError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceIoError::Truncated => write!(f, "trace file ended unexpectedly"),
            TraceIoError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl Error for TraceIoError {}

/// Serializes a trace set into the binary format.
pub fn encode_traces(set: &TraceSet) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        16 + set
            .traces()
            .iter()
            .map(|t| 16 + t.points().len() * 32)
            .sum::<usize>(),
    );
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(set.player_count() as u16);
    for trace in set.traces() {
        buf.put_f64_le(trace.interval());
        buf.put_u64_le(trace.points().len() as u64);
        for p in trace.points() {
            buf.put_f64_le(p.time);
            buf.put_f64_le(p.position.x);
            buf.put_f64_le(p.position.z);
            buf.put_f64_le(p.yaw);
        }
    }
    buf.freeze()
}

/// Deserializes a trace set from the binary format.
///
/// # Errors
///
/// Returns [`TraceIoError`] when the buffer is not a well-formed trace
/// file.
pub fn decode_traces(mut data: &[u8]) -> Result<TraceSet, TraceIoError> {
    if data.remaining() < 8 {
        return Err(TraceIoError::Truncated);
    }
    if data.get_u32_le() != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let players = data.get_u16_le() as usize;
    if players > 64 {
        return Err(TraceIoError::Corrupt("implausible player count"));
    }
    let mut traces = Vec::with_capacity(players);
    for _ in 0..players {
        if data.remaining() < 16 {
            return Err(TraceIoError::Truncated);
        }
        let interval = data.get_f64_le();
        if !(interval.is_finite() && interval > 0.0) {
            return Err(TraceIoError::Corrupt("invalid sampling interval"));
        }
        let count = data.get_u64_le() as usize;
        if data.remaining() < count.saturating_mul(32) {
            return Err(TraceIoError::Truncated);
        }
        let mut points = Vec::with_capacity(count);
        for _ in 0..count {
            let time = data.get_f64_le();
            let x = data.get_f64_le();
            let z = data.get_f64_le();
            let yaw = data.get_f64_le();
            if !(time.is_finite() && x.is_finite() && z.is_finite() && yaw.is_finite()) {
                return Err(TraceIoError::Corrupt("non-finite sample"));
            }
            points.push(TracePoint {
                time,
                position: Vec2::new(x, z),
                yaw,
            });
        }
        traces.push(Trace::from_parts(points, interval));
    }
    Ok(traces.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::{GameId, GameSpec};

    fn sample_set() -> TraceSet {
        let spec = GameSpec::for_game(GameId::Fps);
        let scene = spec.build_scene(3);
        TraceSet::generate(&scene, &spec, 3, 5.0, 0.1, 3)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let set = sample_set();
        let encoded = encode_traces(&set);
        let decoded = decode_traces(&encoded).expect("round trip");
        assert_eq!(set, decoded);
    }

    #[test]
    fn empty_set_roundtrips() {
        let set: TraceSet = std::iter::empty::<Trace>().collect();
        let decoded = decode_traces(&encode_traces(&set)).expect("round trip");
        assert_eq!(decoded.player_count(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_traces(&[0u8; 32]).unwrap_err();
        assert_eq!(err, TraceIoError::BadMagic);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let encoded = encode_traces(&sample_set());
        for cut in [0, 4, 7, 9, 20, encoded.len() / 2, encoded.len() - 1] {
            let result = decode_traces(&encoded[..cut]);
            assert!(result.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode_traces(&sample_set()).to_vec();
        bytes[4] = 99;
        assert_eq!(
            decode_traces(&bytes).unwrap_err(),
            TraceIoError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn corrupt_float_rejected() {
        let mut bytes = encode_traces(&sample_set()).to_vec();
        // Overwrite the first sample's time with NaN.
        let nan = f64::NAN.to_le_bytes();
        bytes[24..32].copy_from_slice(&nan);
        assert!(matches!(
            decode_traces(&bytes).unwrap_err(),
            TraceIoError::Corrupt(_)
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(format!("{}", TraceIoError::BadMagic).contains("trace file"));
        assert!(format!("{}", TraceIoError::UnsupportedVersion(2)).contains('2'));
    }
}
