//! Virtual-world discretization into grid points.
//!
//! Following Furion and Coterie (§2.2), the continuous virtual world is
//! discretized into a finite lattice of *grid points*; the server
//! pre-renders panoramic frames only at grid points, and the client snaps
//! the player position to the nearest grid point when requesting frames.

use crate::vec::Vec2;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a grid point in the world lattice.
///
/// Grid points are identified by integer lattice coordinates `(ix, iz)`;
/// the [`GridSpec`] maps them to world-space positions.
///
/// ```
/// use coterie_world::{GridPoint, GridSpec, Vec2};
/// let spec = GridSpec::new(Vec2::ZERO, 0.5, 10, 10);
/// let gp = spec.snap(Vec2::new(1.2, 3.4));
/// assert_eq!(gp, GridPoint::new(2, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GridPoint {
    /// Lattice index along x.
    pub ix: i32,
    /// Lattice index along z.
    pub iz: i32,
}

impl GridPoint {
    /// Creates a grid point from lattice indices.
    #[inline]
    pub const fn new(ix: i32, iz: i32) -> Self {
        GridPoint { ix, iz }
    }

    /// Chebyshev (grid-hop) distance to another grid point.
    #[inline]
    pub fn hops(self, other: GridPoint) -> u32 {
        let dx = (self.ix - other.ix).unsigned_abs();
        let dz = (self.iz - other.iz).unsigned_abs();
        dx.max(dz)
    }

    /// Manhattan distance in lattice steps.
    #[inline]
    pub fn manhattan(self, other: GridPoint) -> u32 {
        (self.ix - other.ix).unsigned_abs() + (self.iz - other.iz).unsigned_abs()
    }

    /// The 8 neighbouring lattice points (Moore neighbourhood).
    pub fn neighbors8(self) -> [GridPoint; 8] {
        [
            GridPoint::new(self.ix - 1, self.iz - 1),
            GridPoint::new(self.ix, self.iz - 1),
            GridPoint::new(self.ix + 1, self.iz - 1),
            GridPoint::new(self.ix - 1, self.iz),
            GridPoint::new(self.ix + 1, self.iz),
            GridPoint::new(self.ix - 1, self.iz + 1),
            GridPoint::new(self.ix, self.iz + 1),
            GridPoint::new(self.ix + 1, self.iz + 1),
        ]
    }

    /// A stable 64-bit key for use in hash maps and caches.
    #[inline]
    pub fn key(self) -> u64 {
        ((self.ix as u32 as u64) << 32) | (self.iz as u32 as u64)
    }
}

impl fmt::Display for GridPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g({}, {})", self.ix, self.iz)
    }
}

/// Lattice specification: origin, spacing and extent.
///
/// The paper's worlds use a very fine lattice — e.g. Viking Village packs
/// 24.9 million grid points into 187 m × 130 m, i.e. one point every
/// 1/32 m (Table 3). The spacing here is configurable per game.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    origin: Vec2,
    spacing: f64,
    nx: u32,
    nz: u32,
}

impl GridSpec {
    /// Creates a lattice with `nx × nz` points starting at `origin` with
    /// the given spacing in meters.
    ///
    /// # Panics
    ///
    /// Panics if `spacing` is not strictly positive or a dimension is zero.
    pub fn new(origin: Vec2, spacing: f64, nx: u32, nz: u32) -> Self {
        assert!(spacing > 0.0, "grid spacing must be positive");
        assert!(
            nx > 0 && nz > 0,
            "grid must have at least one point per axis"
        );
        GridSpec {
            origin,
            spacing,
            nx,
            nz,
        }
    }

    /// Builds the lattice covering a world of `width × depth` meters with
    /// the given spacing, anchored at `origin`.
    pub fn covering(origin: Vec2, width: f64, depth: f64, spacing: f64) -> Self {
        let nx = (width / spacing).floor().max(1.0) as u32 + 1;
        let nz = (depth / spacing).floor().max(1.0) as u32 + 1;
        GridSpec::new(origin, spacing, nx, nz)
    }

    /// Lattice origin in world space.
    #[inline]
    pub fn origin(&self) -> Vec2 {
        self.origin
    }

    /// Spacing between adjacent grid points, in meters.
    #[inline]
    pub fn spacing(&self) -> f64 {
        self.spacing
    }

    /// Number of lattice points along x.
    #[inline]
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of lattice points along z.
    #[inline]
    pub fn nz(&self) -> u32 {
        self.nz
    }

    /// Total number of grid points in the lattice.
    #[inline]
    pub fn point_count(&self) -> u64 {
        self.nx as u64 * self.nz as u64
    }

    /// World-space position of a grid point (on the ground plane).
    #[inline]
    pub fn position(&self, gp: GridPoint) -> Vec2 {
        Vec2::new(
            self.origin.x + gp.ix as f64 * self.spacing,
            self.origin.z + gp.iz as f64 * self.spacing,
        )
    }

    /// Snaps a world-space position to the nearest grid point, clamped to
    /// the lattice extent.
    pub fn snap(&self, p: Vec2) -> GridPoint {
        let fx = (p.x - self.origin.x) / self.spacing;
        let fz = (p.z - self.origin.z) / self.spacing;
        let ix = fx.round().clamp(0.0, (self.nx - 1) as f64) as i32;
        let iz = fz.round().clamp(0.0, (self.nz - 1) as f64) as i32;
        GridPoint::new(ix, iz)
    }

    /// Whether a grid point lies inside the lattice extent.
    #[inline]
    pub fn contains(&self, gp: GridPoint) -> bool {
        gp.ix >= 0 && gp.iz >= 0 && (gp.ix as u32) < self.nx && (gp.iz as u32) < self.nz
    }

    /// Euclidean world-space distance between two grid points.
    #[inline]
    pub fn distance(&self, a: GridPoint, b: GridPoint) -> f64 {
        self.position(a).distance(self.position(b))
    }
}

impl fmt::Display for GridSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grid {}x{} @ {:.4} m from {}",
            self.nx, self.nz, self.spacing, self.origin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_rounds_to_nearest() {
        let spec = GridSpec::new(Vec2::ZERO, 1.0, 100, 100);
        assert_eq!(spec.snap(Vec2::new(0.4, 0.6)), GridPoint::new(0, 1));
        assert_eq!(spec.snap(Vec2::new(2.5, 2.49)), GridPoint::new(3, 2));
    }

    #[test]
    fn snap_clamps_to_extent() {
        let spec = GridSpec::new(Vec2::ZERO, 1.0, 10, 10);
        assert_eq!(spec.snap(Vec2::new(-5.0, 100.0)), GridPoint::new(0, 9));
    }

    #[test]
    fn position_roundtrip() {
        let spec = GridSpec::new(Vec2::new(-3.0, 2.0), 0.25, 40, 40);
        let gp = GridPoint::new(7, 13);
        assert_eq!(spec.snap(spec.position(gp)), gp);
    }

    #[test]
    fn covering_matches_paper_scale() {
        // Viking Village: 187 x 130 m at 1/32 m spacing -> about 24.9 M points.
        let spec = GridSpec::covering(Vec2::ZERO, 187.0, 130.0, 1.0 / 32.0);
        let count = spec.point_count();
        assert!(
            (24_000_000..26_000_000).contains(&count),
            "unexpected point count {count}"
        );
    }

    #[test]
    fn neighbors8_are_adjacent() {
        let gp = GridPoint::new(5, 5);
        for n in gp.neighbors8() {
            assert_eq!(gp.hops(n), 1);
            assert_ne!(n, gp);
        }
    }

    #[test]
    fn hops_and_manhattan() {
        let a = GridPoint::new(0, 0);
        let b = GridPoint::new(3, -4);
        assert_eq!(a.hops(b), 4);
        assert_eq!(a.manhattan(b), 7);
    }

    #[test]
    fn contains_checks_bounds() {
        let spec = GridSpec::new(Vec2::ZERO, 1.0, 4, 4);
        assert!(spec.contains(GridPoint::new(0, 0)));
        assert!(spec.contains(GridPoint::new(3, 3)));
        assert!(!spec.contains(GridPoint::new(4, 0)));
        assert!(!spec.contains(GridPoint::new(-1, 2)));
    }

    #[test]
    fn key_is_injective_for_distinct_points() {
        let a = GridPoint::new(1, 2).key();
        let b = GridPoint::new(2, 1).key();
        assert_ne!(a, b);
        let c = GridPoint::new(-1, 0).key();
        let d = GridPoint::new(0, -1).key();
        assert_ne!(c, d);
    }

    #[test]
    fn grid_distance_is_euclidean() {
        let spec = GridSpec::new(Vec2::ZERO, 0.5, 100, 100);
        let d = spec.distance(GridPoint::new(0, 0), GridPoint::new(3, 4));
        assert!((d - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "spacing must be positive")]
    fn zero_spacing_rejected() {
        let _ = GridSpec::new(Vec2::ZERO, 0.0, 1, 1);
    }
}
