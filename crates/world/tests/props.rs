//! Property-based tests for world geometry, grids and quadtrees.

use coterie_world::quadtree::Partition;
use coterie_world::{GridSpec, Quadtree, Rect, Vec2};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn grid_snap_is_idempotent(
        ox in -100.0f64..100.0, oz in -100.0f64..100.0,
        spacing in 0.01f64..2.0,
        px in -50.0f64..150.0, pz in -50.0f64..150.0,
    ) {
        let spec = GridSpec::new(Vec2::new(ox, oz), spacing, 200, 200);
        let gp = spec.snap(Vec2::new(px, pz));
        prop_assert!(spec.contains(gp));
        // Snapping the snapped position is a fixed point.
        prop_assert_eq!(spec.snap(spec.position(gp)), gp);
    }

    #[test]
    fn grid_snap_minimizes_distance(
        spacing in 0.05f64..1.0,
        fx in 0.0f64..1.0, fz in 0.0f64..1.0,
    ) {
        let spec = GridSpec::new(Vec2::ZERO, spacing, 1000, 1000);
        // Stay inside the lattice extent so clamping never applies.
        let extent = spacing * 999.0;
        let p = Vec2::new(fx * extent, fz * extent);
        let gp = spec.snap(p);
        let d = spec.position(gp).distance(p);
        // Nearest lattice point is at most half a diagonal away.
        prop_assert!(d <= spacing * std::f64::consts::SQRT_2 / 2.0 + 1e-9);
    }

    #[test]
    fn neighbors8_are_symmetric(ix in -1000i32..1000, iz in -1000i32..1000) {
        let gp = coterie_world::GridPoint::new(ix, iz);
        for n in gp.neighbors8() {
            prop_assert!(n.neighbors8().contains(&gp), "{gp} <-> {n}");
        }
    }

    #[test]
    fn quadtree_locate_always_contains_point(
        split_mask in 0u32..4096,
        px in 0.0f64..64.0, pz in 0.0f64..64.0,
    ) {
        // Irregular tree: split pattern driven by the mask bits.
        let mut counter = 0u32;
        let qt = Quadtree::build(Rect::from_size(64.0, 64.0), 4, &mut |_r, depth| {
            counter = counter.wrapping_add(1);
            if depth < 3 && (split_mask >> (counter % 12)) & 1 == 1 {
                Partition::Split
            } else {
                Partition::Stop(depth)
            }
        });
        let p = Vec2::new(px.min(63.999), pz.min(63.999));
        let leaf = qt.locate(p).expect("interior point must resolve");
        prop_assert!(leaf.rect.contains(p), "{p} not inside {}", leaf.rect);
    }

    #[test]
    fn quadtree_leaves_tile_root(split_mask in 0u32..4096) {
        let mut counter = 0u32;
        let qt = Quadtree::build(Rect::from_size(32.0, 32.0), 4, &mut |_r, depth| {
            counter = counter.wrapping_add(1);
            if depth < 3 && (split_mask >> (counter % 12)) & 1 == 1 {
                Partition::Split
            } else {
                Partition::Stop(())
            }
        });
        let area: f64 = qt.leaves().iter().map(|l| l.rect.area()).sum();
        prop_assert!((area - 32.0 * 32.0).abs() < 1e-6);
        // Leaf count is consistent with a quadtree (1 mod 3).
        prop_assert_eq!(qt.leaves().len() % 3, 1);
    }

    #[test]
    fn rect_quadrants_partition_points(
        w in 1.0f64..100.0, d in 1.0f64..100.0,
        fx in 0.0f64..1.0, fz in 0.0f64..1.0,
    ) {
        let r = Rect::from_size(w, d);
        let p = r.sample(fx.min(0.9999), fz.min(0.9999));
        let owners = r.quadrants().iter().filter(|q| q.contains(p)).count();
        prop_assert_eq!(owners, 1, "point {} owned by {} quadrants", p, owners);
    }

    #[test]
    fn vec2_rotation_preserves_length(x in -100.0f64..100.0, z in -100.0f64..100.0, angle in -7.0f64..7.0) {
        let v = Vec2::new(x, z);
        let r = v.rotated(angle);
        prop_assert!((v.length() - r.length()).abs() < 1e-9 * (1.0 + v.length()));
    }

    #[test]
    fn vec2_triangle_inequality(ax in -50.0f64..50.0, az in -50.0f64..50.0, bx in -50.0f64..50.0, bz in -50.0f64..50.0, cx in -50.0f64..50.0, cz in -50.0f64..50.0) {
        let a = Vec2::new(ax, az);
        let b = Vec2::new(bx, bz);
        let c = Vec2::new(cx, cz);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }
}
