//! Minimal data-parallel map built on crossbeam's scoped threads.
//!
//! The similarity experiments render and SSIM-compare tens of thousands
//! of frame pairs; this helper spreads independent work items across the
//! machine's cores without pulling in a full task-pool dependency.

/// Applies `f` to every item, fanning out across up to
/// `available_parallelism` threads, and returns results in input order.
///
/// Items are distributed in contiguous chunks, so `f` should have
/// roughly uniform cost per item.
///
/// # Example
///
/// ```
/// use coterie_sim::parallel::par_map;
/// let squares = par_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    crossbeam::thread::scope(|scope| {
        let mut rest = results.as_mut_slice();
        for (i, chunk_items) in items.chunks(chunk).enumerate() {
            let (head, tail) = rest.split_at_mut(chunk_items.len().min(rest.len()));
            rest = tail;
            let f = &f;
            let offset = i * chunk;
            let _ = offset;
            scope.spawn(move |_| {
                for (slot, item) in head.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("parallel workers must not panic");

    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out = par_map(&input, |&x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matches_serial_map() {
        let input: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let serial: Vec<f64> = input.iter().map(|&x| x.sin()).collect();
        let parallel = par_map(&input, |&x| x.sin());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn heavy_closure_with_captured_state() {
        let factor = 3u64;
        let input: Vec<u64> = (0..64).collect();
        let out = par_map(&input, |&x| x * factor);
        assert_eq!(out[10], 30);
    }
}
