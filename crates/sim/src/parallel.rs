//! Re-export shim for the shared data-parallel substrate.
//!
//! `par_map`/`par_map_ws` started life here; they now live in the
//! [`coterie_parallel`] crate so the renderer (band-parallel panoramas),
//! the frame crate (separable SSIM) and the serve fleet share one pool
//! abstraction instead of growing private thread code. This module
//! remains so existing `coterie_sim::parallel::*` callers keep working.
//!
//! ```
//! use coterie_sim::parallel::par_map;
//! let squares = par_map(&[1, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

pub use coterie_parallel::{par_for_each, par_map, par_map_ws};
