//! # coterie-sim
//!
//! End-to-end testbed simulation for the Coterie reproduction.
//!
//! The paper evaluates four system designs on a physical testbed (four
//! Pixel 2 phones, a GTX 1080 Ti render server, 802.11ac WiFi):
//!
//! * **Mobile** — everything rendered on the phone (Table 1),
//! * **Thin-client** — everything rendered on the server and streamed,
//! * **Multi-Furion** — Furion's split rendering replicated per player:
//!   FI local, whole-BE panoramas prefetched per frame,
//! * **Coterie** — near BE local, far BE prefetched through the
//!   similarity-exploiting frame cache.
//!
//! [`Session`] reproduces those experiments in simulation: player
//! movement comes from the genre trajectory models, frame content and
//! sizes from the software renderer + codec, transfer latency from the
//! shared-link model, and per-frame timing from the paper's task
//! equation (Eq. 2):
//!
//! `T = max(T_render_FI+nearBE, T_decode_farBE, T_prefetch, T_sync_FI) + T_merge`
//!
//! # Example
//!
//! ```no_run
//! use coterie_sim::{Session, SessionConfig, SystemKind};
//! use coterie_world::GameId;
//!
//! let config = SessionConfig::new(GameId::VikingVillage, SystemKind::coterie(), 2)
//!     .with_duration_s(60.0);
//! let report = Session::new(config).run();
//! assert!(report.aggregate().avg_fps > 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fi;
pub mod metrics;
pub mod parallel;
pub mod prerender;
pub mod quality;
pub mod server;
pub mod session;
pub mod study;

pub use fi::{
    dead_reckon, sync_with_retries, FiSync, FiSyncAttempt, DEAD_RECKON_CAP_MS, FI_RETRY_ATTEMPTS,
    FI_RETRY_BACKOFF_MS, FI_RETRY_TIMEOUT_MS, FI_SYNC_LATENCY_MS,
};
pub use metrics::{percentile, FiReport, PlayerMetrics, ResourceSeries, SessionReport};
pub use prerender::{prerender_patch, storage_estimate, PrerenderBatch, StorageEstimate};
pub use server::RenderServer;
pub use session::{
    FarRequest, FarResponse, Session, SessionConfig, SessionSim, StepEvent, SystemKind,
};
pub use study::{run_study, StudyConfig, StudyOutcome};
