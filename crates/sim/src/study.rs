//! User-study model (Table 10).
//!
//! The paper's IRB-approved study has 12 participants watch six 20-second
//! single-player trace replays (two per testbed game) under Multi-Furion
//! and Coterie, grading the difference from 1 (very annoying) to 5
//! (imperceptible). A human study cannot be reproduced in software; this
//! module provides a documented *perceptual model* instead:
//!
//! * the objective stimulus is the frame discontinuity Coterie introduces
//!   when it substitutes a cached far-BE frame — measured as
//!   `1 − SSIM(far(p), far(p + reuse displacement))` along the replayed
//!   trace,
//! * each simulated participant maps the mean stimulus to a 1–5 score
//!   through thresholds jittered per participant (perceptual variance).
//!
//! The paper's own observation anchors the model: participants noticed
//! slight stutter "at locations where the cutoff radius was small and a
//! few objects were visually large in far BE" — exactly where the
//! measured discontinuity is largest.

use coterie_core::{CutoffConfig, CutoffMap};
use coterie_device::DeviceProfile;
use coterie_frame::{ssim_with, SsimOptions};
use coterie_render::{RenderFilter, RenderOptions, Renderer};
use coterie_world::noise::SmallRng;
use coterie_world::{GameId, GameSpec, Trajectory, Vec2};
use serde::{Deserialize, Serialize};

/// Study configuration mirroring §7.4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Number of simulated participants (paper: 12).
    pub participants: usize,
    /// Replay traces (paper: 6 — two per testbed game).
    pub traces: usize,
    /// Seconds of movement per trace (paper: 20 s).
    pub trace_seconds: f64,
    /// Discontinuity probes per trace.
    pub probes: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            participants: 12,
            traces: 6,
            trace_seconds: 20.0,
            probes: 5,
            seed: 7,
        }
    }
}

/// Result of the simulated study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyOutcome {
    /// Number of (participant, trace) gradings per score 1..=5
    /// (`counts[0]` is score 1).
    pub counts: [usize; 5],
    /// Mean score over all gradings.
    pub mean_score: f64,
    /// Mean objective discontinuity stimulus per trace.
    pub trace_stimuli: Vec<f64>,
}

impl StudyOutcome {
    /// Fraction of gradings at the given score (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `score` is not in `1..=5`.
    pub fn fraction(&self, score: usize) -> f64 {
        assert!((1..=5).contains(&score), "scores are 1..=5");
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.counts[score - 1] as f64 / total as f64
        }
    }
}

/// Runs the simulated user study.
pub fn run_study(config: &StudyConfig) -> StudyOutcome {
    let renderer = Renderer::new(RenderOptions::fast());
    let device = DeviceProfile::pixel2();
    let games = GameId::TESTBED;
    let mut stimuli = Vec::with_capacity(config.traces);
    let mut rng = SmallRng::new(config.seed ^ 0x57D7);

    for t in 0..config.traces {
        let game = games[t % games.len()];
        let spec = GameSpec::for_game(game);
        let scene = spec.build_scene(config.seed ^ (t as u64) << 8);
        let cutoff_cfg = CutoffConfig::for_spec(&spec);
        let map = CutoffMap::compute(&scene, &device, &cutoff_cfg, config.seed);
        let traj = Trajectory::generate(
            &scene,
            &spec,
            0,
            1,
            config.trace_seconds,
            config.seed ^ t as u64,
        );

        // Probe the reuse discontinuity at several points of the replay.
        let mut d_sum = 0.0;
        let mut n = 0usize;
        for k in 0..config.probes {
            let time = config.trace_seconds * (k as f64 + 0.5) / config.probes as f64;
            let pos = traj.position(time);
            let (_, radius, dist_thresh) = map.lookup_params(pos);
            // Typical reuse displacement is ~60% of the threshold (the
            // closest qualifying frame wins, so reuse rarely happens at
            // the full radius).
            let mut reused = pos + Vec2::new(dist_thresh * 0.6, 0.0);
            reused.x = reused
                .x
                .clamp(scene.bounds().min.x, scene.bounds().max.x - 1e-6);
            let a = renderer.render_panorama(
                &scene,
                scene.eye(pos),
                RenderFilter::FarOnly { cutoff: radius },
            );
            let b = renderer.render_panorama(
                &scene,
                scene.eye(reused),
                RenderFilter::FarOnly { cutoff: radius },
            );
            d_sum += 1.0 - ssim_with(&a.frame, &b.frame, &SsimOptions::fast());
            n += 1;
        }
        stimuli.push(if n > 0 { d_sum / n as f64 } else { 0.0 });
    }

    // Map stimuli to scores per participant. Thresholds follow the SSIM
    // quality bands (a <1% structural change is imperceptible; a few
    // percent is visible but acceptable), jittered ±30% per participant.
    let mut counts = [0usize; 5];
    let mut total = 0usize;
    let mut score_sum = 0usize;
    for _ in 0..config.participants {
        let sensitivity = 0.7 + 0.6 * rng.next_f64();
        for &stimulus in &stimuli {
            let s = stimulus * sensitivity;
            let score = if s < 0.012 {
                5
            } else if s < 0.040 {
                4
            } else if s < 0.10 {
                3
            } else if s < 0.18 {
                2
            } else {
                1
            };
            counts[score - 1] += 1;
            score_sum += score;
            total += 1;
        }
    }
    StudyOutcome {
        counts,
        mean_score: if total == 0 {
            0.0
        } else {
            score_sum as f64 / total as f64
        },
        trace_stimuli: stimuli,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> StudyConfig {
        StudyConfig {
            participants: 6,
            traces: 3,
            trace_seconds: 8.0,
            probes: 2,
            seed: 11,
        }
    }

    #[test]
    fn study_scores_skew_high() {
        // Table 10: 0% score 1-2, ~5.5% score 3, most gradings 4-5 with
        // means 4.5-4.75 per trace.
        let outcome = run_study(&small_config());
        let total: usize = outcome.counts.iter().sum();
        assert_eq!(total, 6 * 3);
        assert!(
            outcome.mean_score >= 4.0,
            "mean score {:.2}",
            outcome.mean_score
        );
        let low = outcome.fraction(1) + outcome.fraction(2);
        assert!(low < 0.15, "low scores {low:.2}");
    }

    #[test]
    fn stimuli_are_small_discontinuities() {
        let outcome = run_study(&small_config());
        for &s in &outcome.trace_stimuli {
            assert!((0.0..0.4).contains(&s), "stimulus {s}");
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let outcome = run_study(&small_config());
        let sum: f64 = (1..=5).map(|s| outcome.fraction(s)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scores are 1..=5")]
    fn invalid_score_rejected() {
        let outcome = run_study(&small_config());
        let _ = outcome.fraction(0);
    }
}
