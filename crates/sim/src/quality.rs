//! Displayed-frame visual quality measurement (Table 7).
//!
//! The paper measures SSIM between the frames each system displays and
//! frames "directly generated on the client" at display resolution. We
//! reconstruct each system's displayed frame faithfully:
//!
//! * **Thin-client** — the whole view suffers encode/decode loss.
//! * **Multi-Furion** — FI is rendered locally (lossless), the whole BE
//!   panorama is decoded from the codec.
//! * **Coterie** — FI *and* near BE are local; only the far BE passes
//!   through the codec, and cache reuse may source it from a nearby grid
//!   point (a `dist_thresh`-bounded displacement).
//!
//! This ordering is why Coterie scores highest in Table 7: less of its
//! frame ever touches the codec.

use crate::fi::FiSync;
use crate::server::RenderServer;
use crate::session::SystemKind;
use coterie_core::CutoffMap;
use coterie_frame::{ssim_with, LumaFrame, SsimOptions};
use coterie_render::{merge, Panorama, RenderFilter};
use coterie_world::{Scene, TraceSet, Vec2};

/// Wraps a decoded luma frame as a fully covered panorama layer.
fn full_layer(frame: LumaFrame) -> Panorama {
    let mask = vec![1u8; frame.pixel_count()];
    Panorama { frame, mask }
}

/// Models the effective-resolution loss of *streamed* content.
///
/// A 4K panorama cropped to a ~100° FoV yields far fewer source pixels
/// per display pixel than a native local render, so everything that
/// arrives over the network is effectively a 2× upsampled image. Locally
/// rendered FI and near BE never pass through this operator — which is
/// precisely why Coterie "achieves higher SSIM than Multi-Furion and
/// Thin-client ... it renders both FI and near BE locally without
/// suffering encoding and decoding loss" (§7.1).
fn stream_degrade(frame: &LumaFrame) -> LumaFrame {
    let w = frame.width();
    let h = frame.height();
    if !w.is_multiple_of(2) || !h.is_multiple_of(2) {
        return frame.clone();
    }
    let half = frame.downsample(2);
    LumaFrame::from_fn(w, h, |x, y| {
        half.sample_bilinear((x as f32 - 0.5) / 2.0, (y as f32 - 0.5) / 2.0)
    })
}

/// Mean SSIM of displayed frames against ground truth over sampled trace
/// positions of player 0.
#[allow(clippy::too_many_arguments)]
pub fn measure_visual_quality(
    scene: &Scene,
    server: &RenderServer<'_>,
    cutoffs: Option<&CutoffMap>,
    system: SystemKind,
    traces: &TraceSet,
    fi: &FiSync,
    samples: usize,
    seed: u64,
) -> f64 {
    let trace = match traces.player(0) {
        Some(t) => t,
        None => return 0.0,
    };
    let pts = trace.points();
    if pts.is_empty() || samples == 0 {
        return 0.0;
    }
    let stride = (pts.len() / samples.max(1)).max(1);
    let ssim_opts = SsimOptions::fast();
    let renderer = server.renderer();
    let mut total = 0.0;
    let mut count = 0usize;
    for p in pts.iter().step_by(stride).take(samples) {
        let pos = p.position;
        let yaw = p.yaw;
        // Other players' positions at the same time drive the FI avatars.
        let others: Vec<Vec2> = (0..traces.player_count())
            .map(|i| {
                let tr = traces.player(i).expect("player exists");
                let idx = ((p.time / tr.interval()) as usize).min(tr.points().len() - 1);
                tr.points()[idx].position
            })
            .collect();
        let avatars = fi.remote_avatars(&others, 0);
        let eye = scene.eye(pos);

        // Ground truth: everything rendered locally at full quality. The
        // comparison runs at panorama level — the panorama is our native
        // full-detail representation (the analogue of the paper's 4K
        // frame); the displayed FoV is a crop of it.
        let gt_pano = renderer.render_panorama_with(scene, eye, RenderFilter::All, &avatars);
        let gt = &gt_pano.frame;

        let displayed = match system {
            SystemKind::Mobile => gt.clone(),
            SystemKind::ThinClient => {
                // The entire view is encoded, streamed and upsampled.
                let encoded = server.encoder().encode(gt);
                let decoded = server.encoder().decode(&encoded).expect("round trip");
                stream_degrade(&decoded)
            }
            SystemKind::MultiFurion { .. } => {
                // Whole BE through the codec; FI composited locally.
                let served = server.whole_be(pos);
                let be = full_layer(stream_degrade(&server.decode(&served)));
                let fi_layer = renderer.render_panorama_with(
                    scene,
                    eye,
                    RenderFilter::NearOnly { cutoff: 0.0 },
                    &avatars,
                );
                merge(&fi_layer, &be)
            }
            SystemKind::Coterie { cache } => {
                let map = cutoffs.expect("coterie quality needs cutoffs");
                let (_, radius, dist_thresh) = map.lookup_params(pos);
                // Far BE possibly reused from a nearby grid point.
                let src_pos = if cache {
                    let offset = Vec2::new(dist_thresh * 0.7, 0.0);
                    let candidate = pos + offset;
                    if scene.bounds().contains(candidate) {
                        candidate
                    } else {
                        pos
                    }
                } else {
                    pos
                };
                let served = server.far_be(src_pos, radius);
                let far = full_layer(stream_degrade(&server.decode(&served)));
                let near = renderer.render_panorama_with(
                    scene,
                    eye,
                    RenderFilter::NearOnly { cutoff: radius },
                    &avatars,
                );
                merge(&near, &far)
            }
        };
        total += ssim_with(gt, &displayed, &ssim_opts);
        count += 1;
        let _ = (seed, yaw);
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, SessionConfig};
    use coterie_world::GameId;

    #[test]
    fn coterie_quality_beats_thin_client() {
        // Table 7's ordering: Coterie > Multi-Furion ≈ Thin-client.
        let base = |system| {
            SessionConfig::new(GameId::VikingVillage, system, 2)
                .with_duration_s(10.0)
                .with_seed(3)
                .with_quality_samples(4)
        };
        let thin = Session::new(base(SystemKind::ThinClient)).run().aggregate();
        let coterie = Session::new(base(SystemKind::coterie())).run().aggregate();
        assert!(thin.visual_ssim > 0.5, "thin SSIM {:.3}", thin.visual_ssim);
        assert!(
            coterie.visual_ssim > thin.visual_ssim,
            "Coterie {:.3} must beat Thin-client {:.3}",
            coterie.visual_ssim,
            thin.visual_ssim
        );
        assert!(
            coterie.visual_ssim > 0.9,
            "Coterie SSIM {:.3}",
            coterie.visual_ssim
        );
    }
}
