//! Displayed-frame visual quality measurement (Table 7).
//!
//! The paper measures SSIM between the frames each system displays and
//! frames "directly generated on the client" at display resolution. We
//! reconstruct each system's displayed frame faithfully:
//!
//! * **Thin-client** — the whole view suffers encode/decode loss.
//! * **Multi-Furion** — FI is rendered locally (lossless), the whole BE
//!   panorama is decoded from the codec.
//! * **Coterie** — FI *and* near BE are local; only the far BE passes
//!   through the codec, and cache reuse may source it from a nearby grid
//!   point (a `dist_thresh`-bounded displacement).
//!
//! This ordering is why Coterie scores highest in Table 7: less of its
//! frame ever touches the codec.

use crate::fi::FiSync;
use crate::server::RenderServer;
use crate::session::SystemKind;
use coterie_core::CutoffMap;
use coterie_frame::{ssim_with, LumaFrame, SsimOptions};
use coterie_render::{merge, Panorama, RenderFilter};
use coterie_world::{Scene, TraceSet, Vec2};

/// Wraps a decoded luma frame as a fully covered panorama layer.
fn full_layer(frame: LumaFrame) -> Panorama {
    let mask = vec![1u8; frame.pixel_count()];
    Panorama { frame, mask }
}

/// Models the effective-resolution loss of *streamed* content.
///
/// A 4K panorama cropped to a ~100° FoV yields far fewer source pixels
/// per display pixel than a native local render, so everything that
/// arrives over the network is effectively a 2× upsampled image. Locally
/// rendered FI and near BE never pass through this operator — which is
/// precisely why Coterie "achieves higher SSIM than Multi-Furion and
/// Thin-client ... it renders both FI and near BE locally without
/// suffering encoding and decoding loss" (§7.1).
fn stream_degrade(frame: &LumaFrame) -> LumaFrame {
    let w = frame.width();
    let h = frame.height();
    // `downsample(2)` needs even dimensions; degrade the largest even
    // sub-region and let the clamped bilinear reconstruction extend the
    // loss over any odd border row/column — streamed content must never
    // silently skip the resolution loss.
    let ew = w & !1;
    let eh = h & !1;
    if ew == 0 || eh == 0 {
        return frame.clone();
    }
    let even = if ew == w && eh == h {
        frame.clone()
    } else {
        LumaFrame::from_fn(ew, eh, |x, y| frame.get(x, y))
    };
    let half = even.downsample(2);
    LumaFrame::from_fn(w, h, |x, y| {
        half.sample_bilinear((x as f32 - 0.5) / 2.0, (y as f32 - 0.5) / 2.0)
    })
}

/// Mean SSIM of displayed frames against ground truth over sampled trace
/// positions of player 0.
#[allow(clippy::too_many_arguments)]
pub fn measure_visual_quality(
    scene: &Scene,
    server: &RenderServer<'_>,
    cutoffs: Option<&CutoffMap>,
    system: SystemKind,
    traces: &TraceSet,
    fi: &FiSync,
    samples: usize,
    seed: u64,
) -> f64 {
    let trace = match traces.player(0) {
        Some(t) => t,
        None => return 0.0,
    };
    let pts = trace.points();
    if pts.is_empty() || samples == 0 {
        return 0.0;
    }
    let stride = (pts.len() / samples.max(1)).max(1);
    let ssim_opts = SsimOptions::fast();
    let renderer = server.renderer();
    let mut total = 0.0;
    let mut count = 0usize;
    for p in pts.iter().step_by(stride).take(samples) {
        let pos = p.position;
        let yaw = p.yaw;
        // Other players' positions at the same time drive the FI
        // avatars. Players with empty traces contribute no avatar
        // (rather than underflowing the index math); player 0's trace is
        // non-empty here, so the viewer stays at index 0.
        let others: Vec<Vec2> = (0..traces.player_count())
            .filter_map(|i| {
                let tr = traces.player(i)?;
                let tr_pts = tr.points();
                if tr_pts.is_empty() {
                    return None;
                }
                let idx = ((p.time / tr.interval()) as usize).min(tr_pts.len() - 1);
                Some(tr_pts[idx].position)
            })
            .collect();
        let avatars = fi.remote_avatars(&others, 0);
        let eye = scene.eye(pos);

        // Ground truth: everything rendered locally at full quality. The
        // comparison runs at panorama level — the panorama is our native
        // full-detail representation (the analogue of the paper's 4K
        // frame); the displayed FoV is a crop of it.
        let gt_pano = renderer.render_panorama_with(scene, eye, RenderFilter::All, &avatars);
        let gt = &gt_pano.frame;

        let displayed = match system {
            SystemKind::Mobile => gt.clone(),
            SystemKind::ThinClient => {
                // The entire view is encoded, streamed and upsampled.
                let encoded = server.encoder().encode(gt);
                let decoded = server.encoder().decode(&encoded).expect("round trip");
                stream_degrade(&decoded)
            }
            SystemKind::MultiFurion { .. } => {
                // Whole BE through the codec; FI composited locally.
                let served = server.whole_be(pos);
                let be = full_layer(stream_degrade(&server.decode(&served)));
                let fi_layer = renderer.render_panorama_with(
                    scene,
                    eye,
                    RenderFilter::NearOnly { cutoff: 0.0 },
                    &avatars,
                );
                merge(&fi_layer, &be)
            }
            SystemKind::Coterie { cache } => {
                let map = cutoffs.expect("coterie quality needs cutoffs");
                let (_, radius, dist_thresh) = map.lookup_params(pos);
                // Far BE possibly reused from a nearby grid point.
                let src_pos = if cache {
                    let offset = Vec2::new(dist_thresh * 0.7, 0.0);
                    let candidate = pos + offset;
                    if scene.bounds().contains(candidate) {
                        candidate
                    } else {
                        pos
                    }
                } else {
                    pos
                };
                let served = server.far_be(src_pos, radius);
                let far = full_layer(stream_degrade(&server.decode(&served)));
                let near = renderer.render_panorama_with(
                    scene,
                    eye,
                    RenderFilter::NearOnly { cutoff: radius },
                    &avatars,
                );
                merge(&near, &far)
            }
        };
        total += ssim_with(gt, &displayed, &ssim_opts);
        count += 1;
        let _ = (seed, yaw);
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, SessionConfig};
    use coterie_render::{RenderOptions, Renderer};
    use coterie_world::{GameId, GameSpec, Trace};

    #[test]
    fn stream_degrade_applies_loss_to_odd_dimensions() {
        // A high-frequency checkerboard loses contrast under the 2×
        // round trip; odd-dimension frames must not skip that loss.
        let board = |w, h| LumaFrame::from_fn(w, h, |x, y| ((x + y) % 2) as f32);
        for (w, h) in [(8, 8), (7, 5), (8, 5), (7, 8)] {
            let frame = board(w, h);
            let degraded = stream_degrade(&frame);
            assert_eq!(degraded.width(), w);
            assert_eq!(degraded.height(), h);
            let mut changed = 0usize;
            for y in 0..h {
                for x in 0..w {
                    if (degraded.get(x, y) - frame.get(x, y)).abs() > 0.05 {
                        changed += 1;
                    }
                }
            }
            assert!(
                changed > (w * h) as usize / 2,
                "{w}x{h}: only {changed} pixels degraded"
            );
        }
        // Degenerate frames (too small to halve) pass through unscathed.
        let tiny = board(1, 4);
        assert_eq!(stream_degrade(&tiny), tiny);
    }

    #[test]
    fn quality_pass_tolerates_empty_remote_traces() {
        // Regression: an empty remote trace used to underflow
        // `points().len() - 1` and panic the quality pass.
        let spec = GameSpec::for_game(GameId::Pool);
        let scene = spec.build_scene(2);
        let generated = TraceSet::generate(&scene, &spec, 1, 2.0, 0.5, 2);
        let t0 = generated.player(0).expect("player 0").clone();
        let traces: TraceSet = [t0, Trace::from_parts(vec![], 0.5)].into_iter().collect();
        let server = RenderServer::new(&scene, Renderer::new(RenderOptions::fast()));
        let ssim = measure_visual_quality(
            &scene,
            &server,
            None,
            SystemKind::Mobile,
            &traces,
            &FiSync::new(2),
            1,
            2,
        );
        assert!(ssim > 0.99, "mobile displays ground truth: {ssim:.3}");
    }

    #[test]
    fn coterie_quality_beats_thin_client() {
        // Table 7's ordering: Coterie > Multi-Furion ≈ Thin-client.
        let base = |system| {
            SessionConfig::new(GameId::VikingVillage, system, 2)
                .with_duration_s(10.0)
                .with_seed(3)
                .with_quality_samples(4)
        };
        let thin = Session::new(base(SystemKind::ThinClient)).run().aggregate();
        let coterie = Session::new(base(SystemKind::coterie())).run().aggregate();
        assert!(thin.visual_ssim > 0.5, "thin SSIM {:.3}", thin.visual_ssim);
        assert!(
            coterie.visual_ssim > thin.visual_ssim,
            "Coterie {:.3} must beat Thin-client {:.3}",
            coterie.visual_ssim,
            thin.visual_ssim
        );
        assert!(
            coterie.visual_ssim > 0.9,
            "Coterie SSIM {:.3}",
            coterie.visual_ssim
        );
    }
}
