//! Offline pre-rendering pipeline and storage accounting.
//!
//! The Coterie server "pre-renders and pre-encodes ... panoramic far BE
//! frames for all the grid points the player can reach" (§5.1). This
//! module implements that batch pipeline (parallelized across cores with
//! crossbeam) and exposes the storage arithmetic it implies — which is
//! itself an interesting reproduction observation: at the paper's
//! full lattice density the frame store would be petabytes, so a real
//! deployment necessarily renders at reuse granularity (one frame per
//! `dist_thresh` disc), which the accounting below also reports.

use crate::parallel::par_map;
use crate::server::RenderServer;
use coterie_core::CutoffMap;
use coterie_world::{GridPoint, Scene, Vec2};
use serde::{Deserialize, Serialize};

/// One pre-rendered cell: the grid point, its position, and the encoded
/// frame's size (payload bytes at 4K equivalence).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrerenderedCell {
    /// Anchor grid point of the cell.
    pub grid: GridPoint,
    /// World position.
    pub pos: (f64, f64),
    /// 4K-equivalent encoded size, bytes.
    pub bytes: u64,
}

/// Result of pre-rendering a region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrerenderBatch {
    /// Every rendered cell.
    pub cells: Vec<PrerenderedCell>,
    /// Sum of all encoded sizes, bytes.
    pub total_bytes: u64,
}

/// Storage estimate for serving a whole game (Table-3-scale lattices).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageEstimate {
    /// Frames if every lattice point were materialized.
    pub full_lattice_frames: u64,
    /// Bytes if every lattice point were materialized.
    pub full_lattice_bytes: u64,
    /// Frames at reuse granularity (one per `dist_thresh` disc).
    pub reuse_granularity_frames: u64,
    /// Bytes at reuse granularity.
    pub reuse_granularity_bytes: u64,
}

/// Pre-renders the far-BE frames of a rectangular patch at reuse
/// granularity: one frame per `dist_thresh` step, which is the coarsest
/// spacing the frame cache can fully exploit.
pub fn prerender_patch(
    server: &RenderServer<'_>,
    cutoffs: &CutoffMap,
    center: Vec2,
    extent_m: f64,
) -> PrerenderBatch {
    let scene = server.scene();
    let (_, _, dist_thresh) = cutoffs.lookup_params(center);
    let step = dist_thresh.max(scene.grid().spacing());
    let n = ((extent_m / step).ceil() as i32).max(1);
    let mut targets = Vec::new();
    for iz in -n..=n {
        for ix in -n..=n {
            let p = Vec2::new(center.x + ix as f64 * step, center.z + iz as f64 * step);
            if scene.bounds().contains(p) {
                targets.push(p);
            }
        }
    }
    let cells = par_map(&targets, |&p| {
        let (_, radius, _) = cutoffs.lookup_params(p);
        let frame = server.far_be(p, radius);
        PrerenderedCell {
            grid: scene.grid().snap(p),
            pos: (p.x, p.z),
            bytes: frame.transfer_bytes,
        }
    });
    let total_bytes = cells.iter().map(|c| c.bytes).sum();
    PrerenderBatch { cells, total_bytes }
}

/// Storage arithmetic for one game: full-lattice materialization vs
/// reuse-granularity materialization, using a mean frame size measured
/// from a small sample.
pub fn storage_estimate(
    scene: &Scene,
    cutoffs: &CutoffMap,
    mean_frame_bytes: u64,
) -> StorageEstimate {
    let full = scene.reachable_grid_points();
    // Reuse granularity: one frame covers a disc of radius dist_thresh;
    // integrate disc areas over the leaf regions.
    let mut reuse_frames = 0.0f64;
    for (_, rect, cutoff) in cutoffs.leaves() {
        let thresh = cutoff
            .dist_thresh_m
            .unwrap_or_else(|| cutoffs.default_dist_thresh(cutoff.radius_m));
        let per_frame_area = std::f64::consts::PI * thresh * thresh;
        reuse_frames += (rect.area() / per_frame_area).max(1.0);
    }
    let reuse_frames = reuse_frames.round() as u64;
    StorageEstimate {
        full_lattice_frames: full,
        full_lattice_bytes: full.saturating_mul(mean_frame_bytes),
        reuse_granularity_frames: reuse_frames,
        reuse_granularity_bytes: reuse_frames.saturating_mul(mean_frame_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_core::cutoff::CutoffConfig;
    use coterie_device::DeviceProfile;
    use coterie_render::{RenderOptions, Renderer};
    use coterie_world::{GameId, GameSpec};

    #[test]
    fn patch_prerender_covers_and_sums() {
        let spec = GameSpec::for_game(GameId::Bowling);
        let scene = spec.build_scene(3);
        let cutoffs = CutoffMap::compute(
            &scene,
            &DeviceProfile::pixel2(),
            &CutoffConfig::for_spec(&spec),
            3,
        );
        let server = RenderServer::new(&scene, Renderer::new(RenderOptions::fast()));
        let batch = prerender_patch(&server, &cutoffs, scene.bounds().center(), 1.0);
        assert!(!batch.cells.is_empty());
        let sum: u64 = batch.cells.iter().map(|c| c.bytes).sum();
        assert_eq!(sum, batch.total_bytes);
        for c in &batch.cells {
            assert!(c.bytes > 1000, "implausibly small frame: {}", c.bytes);
            assert!(scene.bounds().contains(Vec2::new(c.pos.0, c.pos.1)));
        }
    }

    #[test]
    fn full_lattice_storage_is_infeasible_but_reuse_is_not() {
        // The observation: materializing every Viking grid point at
        // ~250 KB would need petabytes; one frame per reuse disc is
        // gigabytes — deployable.
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(3);
        let cutoffs = CutoffMap::compute(
            &scene,
            &DeviceProfile::pixel2(),
            &CutoffConfig::for_spec(&spec),
            3,
        );
        let est = storage_estimate(&scene, &cutoffs, 250_000);
        assert!(
            est.full_lattice_bytes > 1_000_000_000_000,
            "full lattice should be TB-scale+: {}",
            est.full_lattice_bytes
        );
        assert!(
            est.reuse_granularity_frames < est.full_lattice_frames / 10,
            "reuse granularity must shrink the store"
        );
        assert!(
            est.reuse_granularity_bytes < 1_000_000_000_000,
            "reuse-granularity store should be sub-TB: {}",
            est.reuse_granularity_bytes
        );
    }
}
