//! Session metrics: the quantities the paper's tables and figures report.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregated per-player results over a session — one row of Tables 1/7/8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlayerMetrics {
    /// Average displayed frames per second (capped at the 60 Hz vsync).
    pub avg_fps: f64,
    /// Mean inter-frame latency, ms.
    pub inter_frame_ms: f64,
    /// Mean motion-to-photon responsiveness, ms (the uncapped critical
    /// path of the frame pipeline).
    pub responsiveness_ms: f64,
    /// Mean phone CPU utilization, fraction of all cores `[0, 1]`.
    pub cpu_load: f64,
    /// Mean phone GPU utilization `[0, 1]`.
    pub gpu_load: f64,
    /// Mean transferred frame size, bytes (0 for Mobile).
    pub frame_bytes: f64,
    /// Mean per-transfer network latency, ms (0 for Mobile).
    pub net_delay_ms: f64,
    /// Per-player BE bandwidth, Mbps.
    pub be_mbps: f64,
    /// FI exchange bandwidth attributed to the session, Kbps.
    pub fi_kbps: f64,
    /// Frame-cache hit ratio (0 when the system has no cache).
    pub cache_hit_ratio: f64,
    /// Mean SSIM of displayed frames against the locally rendered ground
    /// truth (only measured when quality sampling is enabled; 0 when
    /// skipped).
    pub visual_ssim: f64,
}

impl PlayerMetrics {
    /// Averages a set of player metrics (e.g. across the players of one
    /// session). Returns zeros for an empty input.
    pub fn mean(metrics: &[PlayerMetrics]) -> PlayerMetrics {
        let n = metrics.len().max(1) as f64;
        let mut out = PlayerMetrics::zero();
        for m in metrics {
            out.avg_fps += m.avg_fps / n;
            out.inter_frame_ms += m.inter_frame_ms / n;
            out.responsiveness_ms += m.responsiveness_ms / n;
            out.cpu_load += m.cpu_load / n;
            out.gpu_load += m.gpu_load / n;
            out.frame_bytes += m.frame_bytes / n;
            out.net_delay_ms += m.net_delay_ms / n;
            out.be_mbps += m.be_mbps / n;
            out.fi_kbps += m.fi_kbps / n;
            out.cache_hit_ratio += m.cache_hit_ratio / n;
            out.visual_ssim += m.visual_ssim / n;
        }
        out
    }

    /// All-zero metrics — also the documented sentinel for a player
    /// that displayed no frames: every field is finite (no `1000/0`
    /// FPS artifacts), and downstream percentile/mean reductions treat
    /// the zeros like any other sample.
    pub fn zero() -> PlayerMetrics {
        PlayerMetrics {
            avg_fps: 0.0,
            inter_frame_ms: 0.0,
            responsiveness_ms: 0.0,
            cpu_load: 0.0,
            gpu_load: 0.0,
            frame_bytes: 0.0,
            net_delay_ms: 0.0,
            be_mbps: 0.0,
            fi_kbps: 0.0,
            cache_hit_ratio: 0.0,
            visual_ssim: 0.0,
        }
    }
}

impl fmt::Display for PlayerMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} FPS, {:.1} ms inter-frame, {:.1} ms resp, CPU {:.0}%, GPU {:.0}%, \
             {:.0} KB/frame, {:.1} ms net, {:.1} Mbps BE",
            self.avg_fps,
            self.inter_frame_ms,
            self.responsiveness_ms,
            self.cpu_load * 100.0,
            self.gpu_load * 100.0,
            self.frame_bytes / 1000.0,
            self.net_delay_ms,
            self.be_mbps
        )
    }
}

/// Minute-resolution resource usage over a session (Figure 12's series).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceSeries {
    /// Sample timestamps, minutes from session start.
    pub minutes: Vec<f64>,
    /// CPU utilization per sample `[0, 1]`.
    pub cpu: Vec<f64>,
    /// GPU utilization per sample `[0, 1]`.
    pub gpu: Vec<f64>,
    /// SoC temperature per sample, °C.
    pub temperature_c: Vec<f64>,
    /// Battery power draw per sample, W.
    pub power_w: Vec<f64>,
}

impl ResourceSeries {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.minutes.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.minutes.is_empty()
    }

    /// Maximum temperature reached, °C (0 when empty).
    pub fn peak_temperature_c(&self) -> f64 {
        self.temperature_c.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean power draw, W (0 when empty).
    pub fn mean_power_w(&self) -> f64 {
        if self.power_w.is_empty() {
            0.0
        } else {
            self.power_w.iter().sum::<f64>() / self.power_w.len() as f64
        }
    }
}

/// `p`-th percentile (0–100) of `samples` under linear interpolation
/// between closest ranks. NaN samples sort last (`f64::total_cmp`), so
/// the function never panics; deterministic for identical inputs.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

/// Loss-aware accounting of the session's FI synchronization path.
///
/// All-zero when the session ran without a fault scenario (the lossless
/// constant-latency model) — the fault plane then never touches the
/// simulation, keeping lossless results bit-for-bit identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FiReport {
    /// FI sync rounds attempted on the lossy path (one per interval of
    /// every player of a multiplayer session).
    pub syncs: u64,
    /// Retransmissions spent across all rounds.
    pub retries: u64,
    /// Intervals where retries exhausted and the remote avatars were
    /// dead-reckoned instead.
    pub stale_frames: u64,
    /// Stale intervals at or beyond the dead-reckoning staleness cap
    /// (each one is a consistency penalty: the avatar froze).
    pub cap_violations: u64,
    /// Maximum *displayed* avatar staleness, ms (clamped at the
    /// dead-reckoning cap by construction).
    pub max_staleness_ms: f64,
    /// Mean per-interval sync latency actually charged to Eq. 2, ms.
    pub mean_sync_ms: f64,
    /// 95th percentile of dead-reckoned avatar position error over
    /// stale frames, meters.
    pub desync_p95_m: f64,
    /// 99th percentile of dead-reckoned avatar position error over
    /// stale frames, meters.
    pub desync_p99_m: f64,
}

/// Full result of one simulated session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Per-player aggregates.
    pub players: Vec<PlayerMetrics>,
    /// Resource time series of player 0's phone.
    pub resources: ResourceSeries,
    /// Total session duration, seconds.
    pub duration_s: f64,
    /// FI loss/recovery accounting (all-zero for lossless runs).
    pub fi: FiReport,
}

impl SessionReport {
    /// Cross-player mean metrics over the players who actually played.
    ///
    /// Under churn a roster slot may never have been filled (its
    /// metrics are the [`PlayerMetrics::zero`] sentinel); averaging
    /// those in would drag every mean toward zero, so they are skipped
    /// when at least one player displayed a frame. Without churn no
    /// sentinel exists and this is exactly the mean over all players.
    /// All-sentinel (or empty) rosters return the zero sentinel —
    /// never NaN.
    pub fn aggregate(&self) -> PlayerMetrics {
        let zero = PlayerMetrics::zero();
        let active: Vec<PlayerMetrics> = self
            .players
            .iter()
            .filter(|m| **m != zero)
            .copied()
            .collect();
        if active.is_empty() {
            zero
        } else {
            PlayerMetrics::mean(&active)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(fps: f64) -> PlayerMetrics {
        PlayerMetrics {
            avg_fps: fps,
            ..PlayerMetrics::zero()
        }
    }

    #[test]
    fn mean_averages_fields() {
        let m = PlayerMetrics::mean(&[sample(30.0), sample(60.0)]);
        assert!((m.avg_fps - 45.0).abs() < 1e-9);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let m = PlayerMetrics::mean(&[]);
        assert_eq!(m.avg_fps, 0.0);
    }

    #[test]
    fn display_contains_key_numbers() {
        let mut m = PlayerMetrics::zero();
        m.avg_fps = 60.0;
        m.inter_frame_ms = 16.7;
        let s = format!("{m}");
        assert!(s.contains("60 FPS"));
        assert!(s.contains("16.7 ms"));
    }

    #[test]
    fn resource_series_peaks() {
        let r = ResourceSeries {
            minutes: vec![0.0, 1.0, 2.0],
            cpu: vec![0.3, 0.35, 0.32],
            gpu: vec![0.5, 0.6, 0.55],
            temperature_c: vec![25.0, 40.0, 45.0],
            power_w: vec![4.0, 4.2, 3.8],
        };
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.peak_temperature_c(), 45.0);
        assert!((r.mean_power_w() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_series_is_safe() {
        let r = ResourceSeries::default();
        assert!(r.is_empty());
        assert_eq!(r.peak_temperature_c(), 0.0);
        assert_eq!(r.mean_power_w(), 0.0);
    }

    #[test]
    fn report_aggregate() {
        let report = SessionReport {
            players: vec![sample(50.0), sample(60.0)],
            resources: ResourceSeries::default(),
            duration_s: 600.0,
            fi: FiReport::default(),
        };
        assert!((report.aggregate().avg_fps - 55.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates_linearly() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // Linear interpolation: p50 of 1..=100 is 50.5, not 51.
        assert_eq!(percentile(&samples, 50.0), 50.5);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&samples, 95.0), 95.05);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
        // A quartile landing between ranks interpolates.
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0), 2.5);
    }

    #[test]
    fn percentile_tolerates_nan_without_panicking() {
        let samples = [3.0, f64::NAN, 1.0, 2.0];
        // total_cmp sorts NaN last; finite percentiles stay meaningful.
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(
            percentile(&samples, 33.0),
            percentile(&[1.0, 2.0, 3.0, f64::NAN], 33.0)
        );
    }
}
