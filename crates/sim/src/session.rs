//! End-to-end session simulation of the four system designs.
//!
//! One [`Session`] reproduces one testbed run of the paper: N players
//! play one game for a fixed duration under one system design, and the
//! report carries every quantity Tables 1/7/8/9 and Figures 11/12 need.
//!
//! ## How a session runs
//!
//! 1. **World + traces** — the game's procedural scene is built and each
//!    player's movement is generated from the genre model.
//! 2. **Offline preprocessing** — for Coterie systems, the adaptive
//!    cutoff scheme partitions the world and (optionally) `dist_thresh`
//!    is calibrated on the leaves the traces visit (§4.3, §5.3).
//! 3. **Measurement pass** — frame content is rendered and encoded at
//!    sampled trace positions to obtain true content-dependent frame
//!    sizes and triangle loads.
//! 4. **Timing pass** — every display interval of every player is
//!    simulated against the shared 802.11ac link, the device timing
//!    model and the frame cache, using the paper's task equation
//!    (Eq. 2) for the critical path.
//! 5. **Quality pass** — optionally, displayed frames are reconstructed
//!    (including codec loss and cache-displacement) and compared by SSIM
//!    against locally rendered ground truth (Table 7).

use crate::fi::FiSync;
use crate::metrics::{PlayerMetrics, ResourceSeries, SessionReport};
use crate::parallel::par_map;
use crate::quality;
use crate::server::RenderServer;
use coterie_core::{
    CacheConfig, CacheQuery, CacheVersion, CutoffConfig, CutoffMap, DistThreshCalibrator,
    EvictionPolicy, FrameCache, FrameMeta, FrameSource,
};
use coterie_device::{DeviceProfile, PowerModel, ThermalModel, FRAME_BUDGET_MS};
use coterie_net::SharedLink;
use coterie_render::{RenderOptions, Renderer};
use coterie_world::{GameId, GameSpec, GridPoint, Scene, TraceSet, Vec2};
use serde::{Deserialize, Serialize};

/// Which system design a session runs (§3, §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Everything rendered on the phone.
    Mobile,
    /// Everything rendered on the server, streamed as FoV frames.
    ThinClient,
    /// Furion replicated per player: FI local, whole-BE panoramas
    /// prefetched. `cache` adds exact-match frame caching (Figure 11).
    MultiFurion {
        /// Whether locally prefetched frames are cached (exact match).
        cache: bool,
    },
    /// The paper's system: FI + near BE local, far BE prefetched.
    /// `cache` enables the similar-frame cache (the full design).
    Coterie {
        /// Whether the similarity frame cache is enabled.
        cache: bool,
    },
}

impl SystemKind {
    /// The full Coterie design (similar-frame cache enabled).
    pub fn coterie() -> Self {
        SystemKind::Coterie { cache: true }
    }

    /// Multi-Furion as evaluated in §3 (no cache).
    pub fn multi_furion() -> Self {
        SystemKind::MultiFurion { cache: false }
    }

    /// Display label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Mobile => "Mobile",
            SystemKind::ThinClient => "Thin-client",
            SystemKind::MultiFurion { cache: false } => "Multi-Furion",
            SystemKind::MultiFurion { cache: true } => "Multi-Furion+cache",
            SystemKind::Coterie { cache: false } => "Coterie w/o cache",
            SystemKind::Coterie { cache: true } => "Coterie",
        }
    }
}

/// Configuration of one simulated session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// The game to play.
    pub game: GameId,
    /// The system design under test.
    pub system: SystemKind,
    /// Number of players (the paper tests 1–4).
    pub players: usize,
    /// Simulated session length, seconds (the paper plays 10–30 min).
    pub duration_s: f64,
    /// Master seed for world, traces and sampling.
    pub seed: u64,
    /// Trace positions per player where frames are actually rendered and
    /// encoded to measure sizes and triangle loads.
    pub size_samples: usize,
    /// Positions per session where displayed-frame SSIM is measured
    /// (0 disables the quality pass).
    pub quality_samples: usize,
    /// Frame cache capacity, bytes.
    pub cache_bytes: u64,
    /// Cache replacement policy.
    pub eviction: EvictionPolicy,
    /// Whether to calibrate per-leaf `dist_thresh` by rendering + SSIM
    /// (slow); otherwise the geometric default (2 % of the cutoff
    /// radius) is used.
    pub calibrate_dist_thresh: bool,
    /// SSIM threshold for `dist_thresh` calibration. See the calibrator
    /// docs for why this is resolution-compensated relative to the
    /// paper's 0.9.
    pub ssim_threshold: f64,
}

impl SessionConfig {
    /// A session with the paper's defaults.
    pub fn new(game: GameId, system: SystemKind, players: usize) -> Self {
        SessionConfig {
            game,
            system,
            players,
            duration_s: 120.0,
            seed: 7,
            size_samples: 16,
            quality_samples: 0,
            cache_bytes: 512 * 1024 * 1024,
            eviction: EvictionPolicy::Lru,
            calibrate_dist_thresh: false,
            ssim_threshold: 0.99,
        }
    }

    /// Sets the simulated duration.
    pub fn with_duration_s(mut self, duration_s: f64) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the quality (SSIM) pass with the given sample count.
    pub fn with_quality_samples(mut self, samples: usize) -> Self {
        self.quality_samples = samples;
        self
    }
}

/// Sampled per-player frame-content profile from the measurement pass.
#[derive(Debug, Clone, Default)]
struct Profile {
    times_s: Vec<f64>,
    whole_bytes: Vec<u64>,
    far_bytes: Vec<u64>,
    fov_bytes: Vec<u64>,
    near_tris: Vec<u64>,
    visible_tris: Vec<u64>,
}

impl Profile {
    fn index_at(&self, t_s: f64) -> usize {
        if self.times_s.is_empty() {
            return 0;
        }
        let idx = self.times_s.partition_point(|&v| v <= t_s);
        idx.min(self.times_s.len() - 1)
    }
}

/// Mutable per-player state during the timing pass.
struct PlayerState {
    t_ms: f64,
    cache: Option<FrameCache<()>>,
    frames: u64,
    interval_sum_ms: f64,
    critical_sum_ms: f64,
    cpu_busy_core_ms: f64,
    gpu_busy_ms: f64,
    fetch_bytes: u64,
    fetch_count: u64,
    net_delay_sum_ms: f64,
    prev_gp: Option<GridPoint>,
}

/// One simulated testbed run.
#[derive(Debug)]
pub struct Session {
    config: SessionConfig,
}

impl Session {
    /// Prepares a session.
    pub fn new(config: SessionConfig) -> Self {
        assert!(config.players >= 1, "sessions need at least one player");
        assert!(config.duration_s > 0.0, "duration must be positive");
        Session { config }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Runs the session end to end.
    pub fn run(&self) -> SessionReport {
        let cfg = &self.config;
        let spec = GameSpec::for_game(cfg.game);
        let scene = spec.build_scene(cfg.seed);
        let renderer = Renderer::new(RenderOptions::fast());
        let server = RenderServer::new(&scene, renderer.clone());
        let device = DeviceProfile::pixel2();
        let fi = FiSync::new(cfg.players);
        let traces = TraceSet::generate(
            &scene,
            &spec,
            cfg.players,
            cfg.duration_s,
            1.0 / 60.0,
            cfg.seed,
        );

        // Offline preprocessing: adaptive cutoff (Coterie systems only).
        let needs_cutoffs = matches!(cfg.system, SystemKind::Coterie { .. });
        let cutoff_config = CutoffConfig::for_spec(&spec);
        let mut cutoffs = if needs_cutoffs {
            Some(CutoffMap::compute(&scene, &device, &cutoff_config, cfg.seed))
        } else {
            None
        };
        if let (Some(map), true) = (&mut cutoffs, cfg.calibrate_dist_thresh) {
            let mut calibrator = DistThreshCalibrator::new(renderer.clone());
            calibrator.ssim_threshold = cfg.ssim_threshold;
            for trace in traces.traces() {
                let positions = trace.points().iter().step_by(120).map(|p| p.position);
                calibrator.calibrate_path(&scene, map, positions, cfg.seed);
            }
        }

        // Measurement pass: render + encode at sampled positions.
        let profiles = self.measure_profiles(&scene, &server, &traces, cutoffs.as_ref());

        // Timing pass.
        let mut link = SharedLink::wifi_80211ac(cfg.players);
        // Thin-client server GPU: a FIFO "link" whose service time is the
        // full-quality 4K frame render+encode (~26 ms on the 1080 Ti,
        // which is what caps Thin-client at 20-24 FPS in Table 1).
        let mut server_gpu_busy_until = 0.0f64;
        const THIN_SERVER_FRAME_MS: f64 = 26.0;

        let duration_ms = cfg.duration_s * 1000.0;
        let mut states: Vec<PlayerState> = (0..cfg.players)
            .map(|_| PlayerState {
                t_ms: 0.0,
                cache: self.make_cache(),
                frames: 0,
                interval_sum_ms: 0.0,
                critical_sum_ms: 0.0,
                cpu_busy_core_ms: 0.0,
                gpu_busy_ms: 0.0,
                fetch_bytes: 0,
                fetch_count: 0,
                net_delay_sum_ms: 0.0,
                prev_gp: None,
            })
            .collect();

        // Resource series for player 0, per simulated minute.
        let mut resources = ResourceSeries::default();
        let mut thermal = ThermalModel::pixel2();
        let power = PowerModel::pixel2();
        let mut window_start_ms = 0.0;
        let mut window_cpu = 0.0f64;
        let mut window_gpu = 0.0f64;
        let mut window_time = 0.0f64;
        let mut window_bytes = 0u64;
        const WINDOW_MS: f64 = 60_000.0;

        // Advance the player whose clock is furthest behind until every
        // clock passes the session end.
        while let Some(pi) = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.t_ms < duration_ms)
            .min_by(|a, b| a.1.t_ms.partial_cmp(&b.1.t_ms).expect("finite times"))
            .map(|(i, _)| i)
        {
            let now = states[pi].t_ms;
            let t_s = now / 1000.0;
            let trace = traces.player(pi).expect("trace exists");
            let pos = trace_position(trace, t_s);
            let profile = &profiles[pi];
            let sample = profile.index_at(t_s);
            let gp = scene.grid().snap(pos);

            // Per-system task timing (Eq. 2).
            let mut fetched: Option<(u64, f64)> = None; // (bytes, latency)
            let mut hit = None;
            let (critical_ms, cpu_core_ms, gpu_ms) = match cfg.system {
                SystemKind::Mobile => {
                    let tris = profile.visible_tris[sample] + fi.fi_triangles();
                    let render = device.render_ms(tris);
                    (render, device.cpu_base_ms_per_frame, render)
                }
                SystemKind::ThinClient => {
                    let bytes = profile.fov_bytes[sample];
                    // Server renders this player's frame when its GPU
                    // frees up…
                    let render_start = server_gpu_busy_until.max(now);
                    server_gpu_busy_until = render_start + THIN_SERVER_FRAME_MS;
                    // …then streams it over the shared link.
                    let render_done = server_gpu_busy_until;
                    let tx = link.transfer(render_done, bytes);
                    let decode = device.decode_ms(bytes);
                    let ready = tx.completed_at_ms + decode;
                    let critical = ready - now;
                    // Table 1 reports the pure network transfer latency.
                    fetched = Some((bytes, tx.completed_at_ms - render_done));
                    let cpu = device.cpu_base_ms_per_frame + device.net_cpu_ms(bytes) + 1.0;
                    // GPU only composites the decoded stream.
                    (critical, cpu, 1.4)
                }
                SystemKind::MultiFurion { cache } => {
                    let bytes = profile.whole_bytes[sample];
                    let render_fi = device.render_ms(fi.fi_triangles());
                    let decode = device.decode_ms(bytes);
                    let new_grid_point = states[pi].prev_gp != Some(gp);
                    let prefetch = if !new_grid_point {
                        // Still at the same grid point: the current frame
                        // remains valid, nothing to prefetch.
                        0.0
                    } else if cache {
                        let state = &mut states[pi];
                        let cache_ref = state.cache.as_mut().expect("cache enabled");
                        let query = exact_query(gp, pos);
                        if cache_ref.lookup(&query).is_some() {
                            hit = Some(true);
                            0.3
                        } else {
                            hit = Some(false);
                            let tx = link.transfer(now, bytes);
                            cache_ref.insert(
                                FrameMeta { grid: gp, pos, leaf: coterie_world::LeafId(0), near_hash: 0 },
                                FrameSource::SelfPrefetch,
                                (),
                                bytes,
                                pos,
                            );
                            fetched = Some((bytes, tx.completed_at_ms - now));
                            tx.completed_at_ms - now
                        }
                    } else {
                        let tx = link.transfer(now, bytes);
                        fetched = Some((bytes, tx.completed_at_ms - now));
                        tx.completed_at_ms - now
                    };
                    let critical = render_fi
                        .max(decode)
                        .max(prefetch)
                        .max(fi.sync_latency_ms())
                        + device.merge_ms;
                    let cpu = device.cpu_base_ms_per_frame + device.net_cpu_ms(bytes) + 1.0;
                    (critical, cpu, render_fi + 1.0)
                }
                SystemKind::Coterie { cache } => {
                    let bytes = profile.far_bytes[sample];
                    let map = cutoffs.as_ref().expect("coterie needs cutoffs");
                    let (leaf, radius, dist_thresh) = map.lookup_params(pos);
                    let near_render =
                        device.render_ms(profile.near_tris[sample] + fi.fi_triangles());
                    let decode = device.decode_ms(bytes);
                    let new_grid_point = states[pi].prev_gp != Some(gp);
                    let prefetch = if !new_grid_point {
                        0.0
                    } else if cache {
                        let near_hash = scene.near_set_hash(pos, radius);
                        let state = &mut states[pi];
                        let cache_ref = state.cache.as_mut().expect("cache enabled");
                        let query = CacheQuery { grid: gp, pos, leaf, near_hash, dist_thresh };
                        if cache_ref.lookup(&query).is_some() {
                            hit = Some(true);
                            0.3
                        } else {
                            hit = Some(false);
                            let tx = link.transfer(now, bytes);
                            cache_ref.insert(
                                FrameMeta { grid: gp, pos, leaf, near_hash },
                                FrameSource::SelfPrefetch,
                                (),
                                bytes,
                                pos,
                            );
                            fetched = Some((bytes, tx.completed_at_ms - now));
                            tx.completed_at_ms - now
                        }
                    } else {
                        let tx = link.transfer(now, bytes);
                        fetched = Some((bytes, tx.completed_at_ms - now));
                        tx.completed_at_ms - now
                    };
                    let critical = near_render
                        .max(decode)
                        .max(prefetch)
                        .max(fi.sync_latency_ms())
                        + device.merge_ms;
                    // Cache maintenance + merge adds steady CPU work.
                    let cpu = device.cpu_base_ms_per_frame
                        + device.net_cpu_ms(if fetched.is_some() { bytes } else { 0 })
                        + 2.5;
                    (critical, cpu, near_render + 1.0)
                }
            };

            let state = &mut states[pi];
            let interval = critical_ms.max(FRAME_BUDGET_MS);
            state.frames += 1;
            state.interval_sum_ms += interval;
            state.critical_sum_ms += critical_ms;
            state.cpu_busy_core_ms += cpu_core_ms;
            state.gpu_busy_ms += gpu_ms;
            if let Some((bytes, latency)) = fetched {
                state.fetch_bytes += bytes;
                state.fetch_count += 1;
                state.net_delay_sum_ms += latency;
            }
            match hit {
                Some(true) | Some(false) => {} // counted inside the cache
                None => {}
            }
            state.prev_gp = Some(gp);
            state.t_ms += interval;

            // Resource windows track player 0.
            if pi == 0 {
                window_cpu += cpu_core_ms;
                window_gpu += gpu_ms.min(interval);
                window_time += interval;
                if let Some((bytes, _)) = fetched {
                    window_bytes += bytes;
                }
                if now - window_start_ms >= WINDOW_MS || states[0].t_ms >= duration_ms {
                    if window_time > 0.0 {
                        let cpu_util = device.cpu_utilization(window_cpu, window_time);
                        let gpu_util = device.gpu_utilization(window_gpu, window_time);
                        let mbps = window_bytes as f64 * 8.0 / 1000.0 / window_time;
                        let watts = power.draw_w(cpu_util, gpu_util, mbps);
                        thermal.step(watts, window_time / 1000.0);
                        resources.minutes.push(states[0].t_ms / 60_000.0);
                        resources.cpu.push(cpu_util);
                        resources.gpu.push(gpu_util);
                        resources.temperature_c.push(thermal.temperature_c());
                        resources.power_w.push(watts);
                    }
                    window_start_ms = states[0].t_ms;
                    window_cpu = 0.0;
                    window_gpu = 0.0;
                    window_time = 0.0;
                    window_bytes = 0;
                }
            }
        }

        // Quality pass.
        let visual_ssim = if cfg.quality_samples > 0 {
            quality::measure_visual_quality(
                &scene,
                &server,
                cutoffs.as_ref(),
                cfg.system,
                &traces,
                &fi,
                cfg.quality_samples,
                cfg.seed,
            )
        } else {
            0.0
        };

        let players = states
            .iter()
            .map(|s| {
                let frames = s.frames.max(1) as f64;
                let total_ms = s.interval_sum_ms.max(1e-9);
                PlayerMetrics {
                    avg_fps: (1000.0 / (s.interval_sum_ms / frames)).min(60.0),
                    inter_frame_ms: s.interval_sum_ms / frames,
                    // Motion-to-photon: for the vsync-locked local
                    // pipelines (Mobile / Multi-Furion / Coterie) input is
                    // sampled at one vsync and the photon leaves at the
                    // next, so responsiveness is the frame interval; the
                    // thin client's asynchronous stream shows its full
                    // pipeline latency.
                    responsiveness_ms: match cfg.system {
                        SystemKind::ThinClient => s.critical_sum_ms / frames,
                        _ => (s.critical_sum_ms / frames).max(
                            0.95 * FRAME_BUDGET_MS,
                        ),
                    },
                    cpu_load: device.cpu_utilization(s.cpu_busy_core_ms, total_ms),
                    gpu_load: device.gpu_utilization(
                        s.gpu_busy_ms.min(total_ms),
                        total_ms,
                    ),
                    frame_bytes: if s.fetch_count > 0 {
                        s.fetch_bytes as f64 / s.fetch_count as f64
                    } else {
                        0.0
                    },
                    net_delay_ms: if s.fetch_count > 0 {
                        s.net_delay_sum_ms / s.fetch_count as f64
                    } else {
                        0.0
                    },
                    be_mbps: s.fetch_bytes as f64 * 8.0 / 1000.0 / total_ms,
                    fi_kbps: fi.server_kbps(),
                    cache_hit_ratio: s
                        .cache
                        .as_ref()
                        .map(|c| c.stats().hit_ratio())
                        .unwrap_or(0.0),
                    visual_ssim,
                }
            })
            .collect();

        SessionReport { players, resources, duration_s: cfg.duration_s }
    }

    fn make_cache(&self) -> Option<FrameCache<()>> {
        let version = match self.config.system {
            SystemKind::MultiFurion { cache: true } => Some(CacheVersion::V1),
            SystemKind::Coterie { cache: true } => Some(CacheVersion::V3),
            _ => None,
        };
        version.map(|v| {
            FrameCache::new(CacheConfig {
                capacity_bytes: self.config.cache_bytes,
                policy: self.config.eviction,
                version: v,
            })
        })
    }

    /// Measurement pass: true rendered+encoded sizes at sampled trace
    /// positions, parallelized across cores.
    fn measure_profiles(
        &self,
        scene: &Scene,
        server: &RenderServer<'_>,
        traces: &TraceSet,
        cutoffs: Option<&CutoffMap>,
    ) -> Vec<Profile> {
        let cfg = &self.config;
        let render_distance = server.renderer().options().render_distance;
        traces
            .traces()
            .iter()
            .map(|trace| {
                let n = cfg.size_samples.max(1);
                let pts = trace.points();
                let stride = (pts.len() / n).max(1);
                let samples: Vec<(f64, Vec2, f64)> = pts
                    .iter()
                    .step_by(stride)
                    .take(n)
                    .map(|p| (p.time, p.position, p.yaw))
                    .collect();
                let measured = par_map(&samples, |&(_, pos, yaw)| {
                    let (whole, fov) = match cfg.system {
                        SystemKind::Mobile => (0, 0),
                        SystemKind::ThinClient => {
                            (0, server.thin_client_frame(pos, yaw, &[]).transfer_bytes)
                        }
                        SystemKind::MultiFurion { .. } => {
                            (server.whole_be(pos).transfer_bytes, 0)
                        }
                        SystemKind::Coterie { .. } => (0, 0),
                    };
                    let (far, near_tris) = if let Some(map) = cutoffs {
                        let (_, radius, _) = map.lookup_params(pos);
                        (
                            server.far_be(pos, radius).transfer_bytes,
                            scene.triangles_within(pos, radius),
                        )
                    } else {
                        (0, 0)
                    };
                    let visible = if matches!(cfg.system, SystemKind::Mobile) {
                        mobile_render_tris(scene, pos, render_distance)
                    } else {
                        0
                    };
                    (whole, far, fov, near_tris, visible)
                });
                let mut profile = Profile::default();
                for ((t, _, _), (whole, far, fov, near, visible)) in
                    samples.iter().zip(measured)
                {
                    profile.times_s.push(*t);
                    profile.whole_bytes.push(whole);
                    profile.far_bytes.push(far);
                    profile.fov_bytes.push(fov);
                    profile.near_tris.push(near);
                    profile.visible_tris.push(visible);
                }
                profile
            })
            .collect()
    }
}

/// LOD-weighted triangle cost of rendering the whole scene locally (the
/// Mobile baseline). Real engines render distant objects at reduced
/// level-of-detail (cost falls off with distance cubed beyond the
/// full-detail radius) and tessellate terrain at roughly constant screen
/// cost, scaled here by relief. Calibrated so the testbed games land at
/// Table 1's 24-27 FPS on the Pixel-2 profile.
fn mobile_render_tris(scene: &Scene, pos: Vec2, render_distance: f64) -> u64 {
    const LOD_FULL_DETAIL_M: f64 = 14.0;
    const TERRAIN_BASE_TRIS: f64 = 200_000.0;
    const INDOOR_ROOM_TRIS: f64 = 120_000.0;
    let objects: f64 = scene
        .objects_within(pos, render_distance)
        .map(|o| {
            let d = o.position.ground_distance(pos.with_y(0.0)).max(1.0);
            let lod = (LOD_FULL_DETAIL_M / d).powi(3).min(1.0);
            o.triangles as f64 * lod
        })
        .sum();
    let amplitude = scene.terrain().amplitude();
    let terrain = if amplitude == 0.0 {
        INDOOR_ROOM_TRIS
    } else {
        TERRAIN_BASE_TRIS * (1.0 + amplitude / 12.0)
    };
    (objects + terrain) as u64
}

/// Position along a recorded trace at an arbitrary time (linear
/// interpolation between samples).
fn trace_position(trace: &coterie_world::Trace, t_s: f64) -> Vec2 {
    let pts = trace.points();
    if pts.is_empty() {
        return Vec2::ZERO;
    }
    let interval = trace.interval();
    let f = (t_s / interval).clamp(0.0, (pts.len() - 1) as f64);
    let i = f.floor() as usize;
    let frac = f - i as f64;
    if i + 1 >= pts.len() {
        pts[pts.len() - 1].position
    } else {
        pts[i].position.lerp(pts[i + 1].position, frac)
    }
}

fn exact_query(gp: GridPoint, pos: Vec2) -> CacheQuery {
    CacheQuery {
        grid: gp,
        pos,
        leaf: coterie_world::LeafId(0),
        near_hash: 0,
        dist_thresh: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(game: GameId, system: SystemKind, players: usize) -> SessionReport {
        let config = SessionConfig::new(game, system, players)
            .with_duration_s(30.0)
            .with_seed(5);
        Session::new(config).run()
    }

    #[test]
    fn mobile_is_gpu_bound_at_low_fps() {
        let r = quick(GameId::VikingVillage, SystemKind::Mobile, 1);
        let m = r.aggregate();
        assert!(m.avg_fps < 45.0, "mobile should miss 60 FPS: {:.0}", m.avg_fps);
        assert!(m.gpu_load > 0.8, "mobile GPU should be nearly saturated: {:.2}", m.gpu_load);
        assert_eq!(m.frame_bytes, 0.0, "mobile transfers no frames");
    }

    #[test]
    fn coterie_sustains_60fps_for_two_players() {
        let r = quick(GameId::VikingVillage, SystemKind::coterie(), 2);
        let m = r.aggregate();
        assert!(m.avg_fps > 58.0, "Coterie 2P FPS {:.0}", m.avg_fps);
        assert!(m.responsiveness_ms < 16.7, "responsiveness {:.1}", m.responsiveness_ms);
        assert!(m.cache_hit_ratio > 0.5, "hit ratio {:.2}", m.cache_hit_ratio);
    }

    #[test]
    fn multifurion_degrades_with_players() {
        let one = quick(GameId::VikingVillage, SystemKind::multi_furion(), 1).aggregate();
        let four = quick(GameId::VikingVillage, SystemKind::multi_furion(), 4).aggregate();
        assert!(one.avg_fps > four.avg_fps + 10.0,
            "MF should degrade: 1P {:.0} vs 4P {:.0}", one.avg_fps, four.avg_fps);
        assert!(four.net_delay_ms > one.net_delay_ms * 1.5);
    }

    #[test]
    fn coterie_reduces_bandwidth_vs_multifurion() {
        let mf = quick(GameId::VikingVillage, SystemKind::multi_furion(), 1).aggregate();
        let ct = quick(GameId::VikingVillage, SystemKind::coterie(), 1).aggregate();
        let reduction = mf.be_mbps / ct.be_mbps.max(1e-9);
        assert!(
            reduction > 5.0,
            "network reduction {reduction:.1}x (MF {:.0} Mbps, Coterie {:.0} Mbps)",
            mf.be_mbps,
            ct.be_mbps
        );
    }

    #[test]
    fn thin_client_has_low_fps_high_latency() {
        let r = quick(GameId::VikingVillage, SystemKind::ThinClient, 1);
        let m = r.aggregate();
        assert!(m.avg_fps < 30.0, "thin client FPS {:.0}", m.avg_fps);
        assert!(m.responsiveness_ms > 30.0, "thin resp {:.1} ms", m.responsiveness_ms);
        assert!(m.gpu_load < 0.2, "thin client phone GPU {:.2}", m.gpu_load);
    }

    #[test]
    fn resource_series_produced() {
        let config = SessionConfig::new(GameId::Cts, SystemKind::coterie(), 1)
            .with_duration_s(150.0)
            .with_seed(3);
        let r = Session::new(config).run();
        assert!(r.resources.len() >= 2, "expected minute samples");
        assert!(r.resources.peak_temperature_c() > 25.0);
        assert!(r.resources.mean_power_w() > 2.0);
        assert!(r.resources.mean_power_w() < 6.0);
    }

    #[test]
    fn system_labels_are_distinct() {
        let labels: Vec<&str> = [
            SystemKind::Mobile,
            SystemKind::ThinClient,
            SystemKind::MultiFurion { cache: false },
            SystemKind::MultiFurion { cache: true },
            SystemKind::Coterie { cache: false },
            SystemKind::Coterie { cache: true },
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        let unique: std::collections::HashSet<&&str> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn config_builders_compose() {
        let c = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 3)
            .with_duration_s(42.0)
            .with_seed(99)
            .with_quality_samples(5);
        assert_eq!(c.players, 3);
        assert_eq!(c.duration_s, 42.0);
        assert_eq!(c.seed, 99);
        assert_eq!(c.quality_samples, 5);
    }

    #[test]
    fn profile_index_lookup_clamps() {
        let profile = Profile {
            times_s: vec![0.0, 1.0, 2.0],
            whole_bytes: vec![1, 2, 3],
            far_bytes: vec![0; 3],
            fov_bytes: vec![0; 3],
            near_tris: vec![0; 3],
            visible_tris: vec![0; 3],
        };
        // The profile indexes to the next sample at or after t (clamped).
        assert_eq!(profile.index_at(-1.0), 0);
        assert_eq!(profile.index_at(0.5), 1);
        assert_eq!(profile.index_at(1.5), 2);
        assert_eq!(profile.index_at(99.0), 2);
        assert_eq!(Profile::default().index_at(1.0), 0);
    }

    #[test]
    fn mobile_render_cost_reflects_density_and_relief() {
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(3);
        // A dense probe (many objects nearby) costs more than a sparse
        // one at the same render distance.
        let mut dense = (0u64, Vec2::ZERO);
        let mut sparse = (u64::MAX, Vec2::ZERO);
        for i in 0..8 {
            for j in 0..8 {
                let p = Vec2::new(
                    spec.width * (i as f64 + 0.5) / 8.0,
                    spec.depth * (j as f64 + 0.5) / 8.0,
                );
                let t = scene.triangles_within(p, 14.0);
                if t > dense.0 {
                    dense = (t, p);
                }
                if t < sparse.0 {
                    sparse = (t, p);
                }
            }
        }
        let c_dense = mobile_render_tris(&scene, dense.1, 400.0);
        let c_sparse = mobile_render_tris(&scene, sparse.1, 400.0);
        assert!(c_dense > c_sparse, "dense {c_dense} vs sparse {c_sparse}");
        // An empty flat room pays exactly the room constant.
        let empty = coterie_world::Scene::new(
            coterie_world::Rect::from_size(10.0, 10.0),
            coterie_world::Terrain::flat(),
            vec![],
            coterie_world::scene::ReachableArea::All,
            coterie_world::GridSpec::covering(Vec2::ZERO, 10.0, 10.0, 1.0),
        );
        assert_eq!(mobile_render_tris(&empty, Vec2::new(5.0, 5.0), 400.0), 120_000);
    }

    #[test]
    fn trace_position_interpolates() {
        let spec = GameSpec::for_game(GameId::Fps);
        let scene = spec.build_scene(1);
        let traces = TraceSet::generate(&scene, &spec, 1, 4.0, 0.5, 1);
        let trace = traces.player(0).expect("player");
        let a = trace.points()[2].position;
        let b = trace.points()[3].position;
        let mid = trace_position(trace, 1.25);
        assert!((mid.x - (a.x + b.x) * 0.5).abs() < 1e-9);
        // Clamps beyond the end.
        let last = trace.points().last().expect("non-empty").position;
        assert_eq!(trace_position(trace, 1e9), last);
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn zero_players_rejected() {
        let _ = Session::new(SessionConfig::new(
            GameId::Pool,
            SystemKind::Mobile,
            0,
        ));
    }
}
