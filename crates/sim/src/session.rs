//! End-to-end session simulation of the four system designs.
//!
//! One [`Session`] reproduces one testbed run of the paper: N players
//! play one game for a fixed duration under one system design, and the
//! report carries every quantity Tables 1/7/8/9 and Figures 11/12 need.
//!
//! ## How a session runs
//!
//! 1. **World + traces** — the game's procedural scene is built and each
//!    player's movement is generated from the genre model.
//! 2. **Offline preprocessing** — for Coterie systems, the adaptive
//!    cutoff scheme partitions the world and (optionally) `dist_thresh`
//!    is calibrated on the leaves the traces visit (§4.3, §5.3).
//! 3. **Measurement pass** — frame content is rendered and encoded at
//!    sampled trace positions to obtain true content-dependent frame
//!    sizes and triangle loads.
//! 4. **Timing pass** — every display interval of every player is
//!    simulated against the shared 802.11ac link, the device timing
//!    model and the frame cache, using the paper's task equation
//!    (Eq. 2) for the critical path.
//! 5. **Quality pass** — optionally, displayed frames are reconstructed
//!    (including codec loss and cache-displacement) and compared by SSIM
//!    against locally rendered ground truth (Table 7).

use crate::fi::{self, FiSync, DEAD_RECKON_CAP_MS};
use crate::metrics::{percentile, FiReport, PlayerMetrics, ResourceSeries, SessionReport};
use crate::parallel::par_map;
use crate::quality;
use crate::server::RenderServer;
use coterie_core::{
    CacheConfig, CacheQuery, CacheVersion, CutoffConfig, CutoffMap, DistThreshCalibrator,
    EvictionPolicy, FrameCache, FrameMeta, FrameSource,
};
use coterie_device::{DeviceProfile, PowerModel, ThermalModel, FRAME_BUDGET_MS};
use coterie_net::{FiChannel, NetScenario, SharedLink};
use coterie_render::{RenderOptions, Renderer};
use coterie_telemetry::{
    room_pid, AttributionModel, FrameRecord, FrameStats, Stage, TelemetrySink, TrackId, KERNEL_PID,
};
use coterie_world::{GameId, GameSpec, GridPoint, Scene, TraceSet, Vec2};
use serde::{Deserialize, Serialize};

/// Which system design a session runs (§3, §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Everything rendered on the phone.
    Mobile,
    /// Everything rendered on the server, streamed as FoV frames.
    ThinClient,
    /// Furion replicated per player: FI local, whole-BE panoramas
    /// prefetched. `cache` adds exact-match frame caching (Figure 11).
    MultiFurion {
        /// Whether locally prefetched frames are cached (exact match).
        cache: bool,
    },
    /// The paper's system: FI + near BE local, far BE prefetched.
    /// `cache` enables the similar-frame cache (the full design).
    Coterie {
        /// Whether the similarity frame cache is enabled.
        cache: bool,
    },
}

impl SystemKind {
    /// The full Coterie design (similar-frame cache enabled).
    pub fn coterie() -> Self {
        SystemKind::Coterie { cache: true }
    }

    /// Multi-Furion as evaluated in §3 (no cache).
    pub fn multi_furion() -> Self {
        SystemKind::MultiFurion { cache: false }
    }

    /// Display label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Mobile => "Mobile",
            SystemKind::ThinClient => "Thin-client",
            SystemKind::MultiFurion { cache: false } => "Multi-Furion",
            SystemKind::MultiFurion { cache: true } => "Multi-Furion+cache",
            SystemKind::Coterie { cache: false } => "Coterie w/o cache",
            SystemKind::Coterie { cache: true } => "Coterie",
        }
    }
}

/// Configuration of one simulated session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// The game to play.
    pub game: GameId,
    /// The system design under test.
    pub system: SystemKind,
    /// Number of players (the paper tests 1–4).
    pub players: usize,
    /// Simulated session length, seconds (the paper plays 10–30 min).
    pub duration_s: f64,
    /// Master seed for world, traces and sampling.
    pub seed: u64,
    /// Separate seed for player trajectories. `None` (the default)
    /// derives traces from `seed` as before. A fleet host sets this so
    /// many rooms can share one world (same `seed` ⇒ same scene,
    /// quadtree and near sets — the precondition for cross-session
    /// frame reuse) while every room's players move differently.
    pub trace_seed: Option<u64>,
    /// Trace positions per player where frames are actually rendered and
    /// encoded to measure sizes and triangle loads.
    pub size_samples: usize,
    /// Positions per session where displayed-frame SSIM is measured
    /// (0 disables the quality pass).
    pub quality_samples: usize,
    /// Frame cache capacity, bytes.
    pub cache_bytes: u64,
    /// Cache replacement policy.
    pub eviction: EvictionPolicy,
    /// Whether to calibrate per-leaf `dist_thresh` by rendering + SSIM
    /// (slow); otherwise the geometric default (2 % of the cutoff
    /// radius) is used.
    pub calibrate_dist_thresh: bool,
    /// SSIM threshold for `dist_thresh` calibration. See the calibrator
    /// docs for why this is resolution-compensated relative to the
    /// paper's 0.9.
    pub ssim_threshold: f64,
    /// FI network fault scenario. [`NetScenario::None`] (the default)
    /// keeps the lossless constant-latency sync model — bit-for-bit
    /// identical to runs predating the fault plane. Any other scenario
    /// routes every per-interval FI sync through a seeded per-player
    /// [`FiChannel`] with bounded retry and dead-reckoning recovery.
    pub net: NetScenario,
}

impl SessionConfig {
    /// A session with the paper's defaults.
    pub fn new(game: GameId, system: SystemKind, players: usize) -> Self {
        SessionConfig {
            game,
            system,
            players,
            duration_s: 120.0,
            seed: 7,
            trace_seed: None,
            size_samples: 16,
            quality_samples: 0,
            cache_bytes: 512 * 1024 * 1024,
            eviction: EvictionPolicy::Lru,
            calibrate_dist_thresh: false,
            ssim_threshold: 0.99,
            net: NetScenario::None,
        }
    }

    /// Sets the simulated duration.
    pub fn with_duration_s(mut self, duration_s: f64) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Decouples trajectory randomness from the world seed (see
    /// [`SessionConfig::trace_seed`]).
    pub fn with_trace_seed(mut self, trace_seed: u64) -> Self {
        self.trace_seed = Some(trace_seed);
        self
    }

    /// Enables the quality (SSIM) pass with the given sample count.
    pub fn with_quality_samples(mut self, samples: usize) -> Self {
        self.quality_samples = samples;
        self
    }

    /// Selects the FI network fault scenario (see
    /// [`SessionConfig::net`]).
    pub fn with_net(mut self, net: NetScenario) -> Self {
        self.net = net;
        self
    }
}

/// Sampled per-player frame-content profile from the measurement pass.
#[derive(Debug, Clone, Default)]
struct Profile {
    times_s: Vec<f64>,
    whole_bytes: Vec<u64>,
    far_bytes: Vec<u64>,
    fov_bytes: Vec<u64>,
    near_tris: Vec<u64>,
    visible_tris: Vec<u64>,
}

impl Profile {
    fn index_at(&self, t_s: f64) -> usize {
        if self.times_s.is_empty() {
            return 0;
        }
        let idx = self.times_s.partition_point(|&v| v <= t_s);
        idx.min(self.times_s.len() - 1)
    }
}

/// Mutable per-player state during the timing pass.
struct PlayerState {
    t_ms: f64,
    cache: Option<FrameCache<()>>,
    frames: u64,
    interval_sum_ms: f64,
    critical_sum_ms: f64,
    cpu_busy_core_ms: f64,
    gpu_busy_ms: f64,
    fetch_bytes: u64,
    fetch_count: u64,
    net_delay_sum_ms: f64,
    prev_gp: Option<GridPoint>,
    // Lossy FI path accounting (untouched when the fault plane is off).
    fi_retries: u64,
    fi_stale_frames: u64,
    fi_cap_violations: u64,
    fi_last_sync_ms: f64,
    fi_staleness_ms: f64,
    fi_max_staleness_ms: f64,
}

/// One simulated testbed run.
#[derive(Debug)]
pub struct Session {
    config: SessionConfig,
}

impl Session {
    /// Prepares a session.
    pub fn new(config: SessionConfig) -> Self {
        assert!(config.players >= 1, "sessions need at least one player");
        assert!(config.duration_s > 0.0, "duration must be positive");
        Session { config }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Runs the session end to end.
    pub fn run(&self) -> SessionReport {
        let mut sim = SessionSim::new(self.config);
        while sim.step().is_some() {}
        sim.finish()
    }
}

/// A far/whole-BE prefetch that missed the client cache and must be
/// satisfied by the serving side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarRequest {
    /// Index of the requesting player within the session.
    pub player: usize,
    /// Session clock at the request, ms.
    pub now_ms: f64,
    /// Grid point being prefetched.
    pub grid: GridPoint,
    /// World position of the grid point.
    pub pos: Vec2,
    /// Leaf region of the grid point (`LeafId(0)` for whole-BE systems,
    /// which have no cutoff partition).
    pub leaf: coterie_world::LeafId,
    /// Near-BE object-set hash (0 for whole-BE systems).
    pub near_hash: u64,
    /// The leaf's calibrated `dist_thresh`, meters (0 for whole-BE).
    pub dist_thresh: f64,
    /// Encoded frame size to deliver, bytes.
    pub bytes: u64,
}

/// How a [`FarRequest`] was satisfied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarResponse {
    /// Bytes actually delivered (a degraded frame may be smaller).
    pub bytes: u64,
    /// Absolute session time the payload finished arriving, ms.
    pub completed_at_ms: f64,
}

/// Outcome of advancing one player by one display interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEvent {
    /// The player that was advanced.
    pub player: usize,
    /// Session time at the start of the interval, ms.
    pub now_ms: f64,
    /// Eq. 2 critical path of the frame, ms.
    pub critical_ms: f64,
    /// Display interval charged (vsync-clamped), ms.
    pub interval_ms: f64,
    /// Bytes fetched over the link for this frame (0 on cache hits and
    /// frames with nothing to prefetch).
    pub fetched_bytes: u64,
}

/// The default fetch path: deliver the requested bytes over the
/// session's own shared link, starting now.
fn link_fetch(link: &mut SharedLink, req: FarRequest) -> FarResponse {
    let tx = link.transfer(req.now_ms, req.bytes);
    FarResponse {
        bytes: req.bytes,
        completed_at_ms: tx.completed_at_ms,
    }
}

fn make_cache(config: &SessionConfig) -> Option<FrameCache<()>> {
    let version = match config.system {
        SystemKind::MultiFurion { cache: true } => Some(CacheVersion::V1),
        SystemKind::Coterie { cache: true } => Some(CacheVersion::V3),
        _ => None,
    };
    version.map(|v| {
        FrameCache::new(CacheConfig {
            capacity_bytes: config.cache_bytes,
            policy: config.eviction,
            version: v,
        })
    })
}

/// Thin-client server GPU: a FIFO "link" whose service time is the
/// full-quality 4K frame render+encode (~26 ms on the 1080 Ti, which is
/// what caps Thin-client at 20-24 FPS in Table 1).
const THIN_SERVER_FRAME_MS: f64 = 26.0;

/// Resource window length (per simulated minute).
const WINDOW_MS: f64 = 60_000.0;

/// A session broken open for external driving.
///
/// [`Session::run`] is a closed loop. The fleet runtime instead needs to
/// (1) interleave many sessions on one host, advancing each in bounded
/// time slices, and (2) intercept far-BE prefetch misses so a shared
/// cross-session store can satisfy them. `SessionSim` exposes the same
/// simulation as a step function — [`SessionSim::step_with`] advances
/// the most-behind player by one display interval and routes any
/// prefetch miss through a caller-supplied fetch path.
///
/// `Session::run` is the trivial driver: step to completion with the
/// session's own link, then [`SessionSim::finish`].
pub struct SessionSim {
    config: SessionConfig,
    scene: Scene,
    cutoffs: Option<CutoffMap>,
    profiles: Vec<Profile>,
    traces: TraceSet,
    fi: FiSync,
    fi_channels: Vec<FiChannel>,
    fi_syncs: u64,
    fi_sync_sum_ms: f64,
    desync_samples: Vec<f64>,
    device: DeviceProfile,
    link: SharedLink,
    states: Vec<PlayerState>,
    /// Per-player departure instant, ms. `duration_ms` for everyone
    /// unless [`SessionSim::set_presence`] installed churn windows.
    ends_ms: Vec<f64>,
    server_gpu_busy_until: f64,
    quality_scale: f64,
    duration_ms: f64,
    resources: ResourceSeries,
    thermal: ThermalModel,
    power: PowerModel,
    window_start_ms: f64,
    window_cpu: f64,
    window_gpu: f64,
    window_time: f64,
    window_bytes: u64,
    /// Observation-only telemetry sink; disabled (one branch per use)
    /// unless the session was built with
    /// [`SessionSim::new_with_telemetry`].
    telemetry: TelemetrySink,
    /// Trace lane this session's frames land in (the fleet room id).
    telemetry_room: u32,
    /// Exact per-session frame accounting (independent of ring
    /// capacity), surfaced through [`SessionSim::telemetry_stats`].
    telemetry_stats: FrameStats,
}

/// Stage decomposition of one display interval, for budget
/// attribution. Each arm of the timing match fills in exactly the
/// stages Eq. 2 charges it, so the record re-combines to the critical
/// path under its model.
#[derive(Debug, Clone, Copy)]
struct StageBreakdown {
    render: f64,
    decode: f64,
    net: f64,
    sync: f64,
    cache: f64,
    compose: f64,
    model: AttributionModel,
}

impl StageBreakdown {
    /// All-zero parallel breakdown; arms overwrite what they charge.
    fn parallel() -> Self {
        StageBreakdown {
            render: 0.0,
            decode: 0.0,
            net: 0.0,
            sync: 0.0,
            cache: 0.0,
            compose: 0.0,
            model: AttributionModel::Parallel,
        }
    }
}

impl SessionSim {
    /// Builds the world, traces, cutoff partition and frame-size
    /// profiles (steps 1–3 of the session pipeline), leaving the timing
    /// pass to be driven by [`SessionSim::step`].
    pub fn new(config: SessionConfig) -> Self {
        Self::new_with_telemetry(config, TelemetrySink::disabled(), 0)
    }

    /// [`SessionSim::new`] with an observation-only telemetry sink:
    /// the measurement pass's render bands and encodes land on the
    /// kernel lane, and every display interval records a
    /// [`FrameRecord`] on `room`'s lane. A disabled sink reproduces
    /// [`SessionSim::new`] exactly.
    pub fn new_with_telemetry(config: SessionConfig, telemetry: TelemetrySink, room: u32) -> Self {
        assert!(config.players >= 1, "sessions need at least one player");
        assert!(config.duration_s > 0.0, "duration must be positive");
        let spec = GameSpec::for_game(config.game);
        let scene = spec.build_scene(config.seed);
        let renderer = Renderer::new(RenderOptions::fast()).with_telemetry(telemetry.clone());
        let device = DeviceProfile::pixel2();
        let fi = FiSync::new(config.players);
        let traces = TraceSet::generate(
            &scene,
            &spec,
            config.players,
            config.duration_s,
            1.0 / 60.0,
            config.trace_seed.unwrap_or(config.seed),
        );

        // Offline preprocessing: adaptive cutoff (Coterie systems only).
        let needs_cutoffs = matches!(config.system, SystemKind::Coterie { .. });
        let cutoff_config = CutoffConfig::for_spec(&spec);
        let mut cutoffs = if needs_cutoffs {
            Some(CutoffMap::compute(
                &scene,
                &device,
                &cutoff_config,
                config.seed,
            ))
        } else {
            None
        };
        if let (Some(map), true) = (&mut cutoffs, config.calibrate_dist_thresh) {
            let mut calibrator = DistThreshCalibrator::new(renderer.clone());
            calibrator.ssim_threshold = config.ssim_threshold;
            for trace in traces.traces() {
                let positions = trace.points().iter().step_by(120).map(|p| p.position);
                calibrator.calibrate_path(&scene, map, positions, config.seed);
            }
        }

        // Measurement pass: render + encode at sampled positions.
        let profiles = {
            let server = RenderServer::new(&scene, renderer).with_telemetry(
                telemetry.clone(),
                TrackId {
                    pid: KERNEL_PID,
                    tid: room,
                },
            );
            measure_profiles(&config, &scene, &server, &traces, cutoffs.as_ref())
        };

        let states = (0..config.players)
            .map(|_| PlayerState {
                t_ms: 0.0,
                cache: make_cache(&config),
                frames: 0,
                interval_sum_ms: 0.0,
                critical_sum_ms: 0.0,
                cpu_busy_core_ms: 0.0,
                gpu_busy_ms: 0.0,
                fetch_bytes: 0,
                fetch_count: 0,
                net_delay_sum_ms: 0.0,
                prev_gp: None,
                fi_retries: 0,
                fi_stale_frames: 0,
                fi_cap_violations: 0,
                fi_last_sync_ms: 0.0,
                fi_staleness_ms: 0.0,
                fi_max_staleness_ms: 0.0,
            })
            .collect();

        // The fault plane only exists for lossy multiplayer sessions: a
        // lone player exchanges keep-alives, and `NetScenario::None`
        // must leave the lossless path untouched bit for bit.
        let fi_channels: Vec<FiChannel> = if config.net.is_lossy() && config.players > 1 {
            let base = config.trace_seed.unwrap_or(config.seed);
            (0..config.players)
                .map(|pi| {
                    let seed = base
                        ^ (pi as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ 0x00F1_C4A2_00F1_C4A2;
                    FiChannel::new(config.net, seed)
                })
                .collect()
        } else {
            Vec::new()
        };

        SessionSim {
            scene,
            cutoffs,
            profiles,
            traces,
            fi,
            fi_channels,
            fi_syncs: 0,
            fi_sync_sum_ms: 0.0,
            desync_samples: Vec::new(),
            device,
            link: SharedLink::wifi_80211ac(config.players),
            states,
            ends_ms: vec![config.duration_s * 1000.0; config.players],
            server_gpu_busy_until: 0.0,
            quality_scale: 1.0,
            duration_ms: config.duration_s * 1000.0,
            resources: ResourceSeries::default(),
            thermal: ThermalModel::pixel2(),
            power: PowerModel::pixel2(),
            window_start_ms: 0.0,
            window_cpu: 0.0,
            window_gpu: 0.0,
            window_time: 0.0,
            window_bytes: 0,
            telemetry,
            telemetry_room: room,
            telemetry_stats: FrameStats::default(),
            config,
        }
    }

    /// The telemetry sink this session records into.
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Exact per-session frame accounting; `None` when telemetry is
    /// disabled, so reports stay identical with and without it.
    pub fn telemetry_stats(&self) -> Option<FrameStats> {
        self.telemetry.is_enabled().then_some(self.telemetry_stats)
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The procedurally built scene this session plays in. Fleet-side
    /// consumers use it to reconstruct map features (the grid spec,
    /// shared attention hotspots) that a pose predictor needs, without
    /// rebuilding the world from the seed.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Installs per-player presence windows (churn): player `i` joins
    /// at `windows[i].0` and leaves at `windows[i].1`, both clamped to
    /// `[0, duration]`. A zero-length window means the slot never
    /// plays. Must be called before stepping; the roster (and its
    /// trajectories) stays the full configured player set — a window
    /// only restricts *when* a slot plays its trajectory, so the same
    /// seed yields the same world regardless of fill.
    ///
    /// # Panics
    ///
    /// Panics if `windows.len()` differs from the configured player
    /// count or any player has already stepped.
    pub fn set_presence(&mut self, windows: &[(f64, f64)]) {
        assert_eq!(
            windows.len(),
            self.states.len(),
            "one presence window per roster slot"
        );
        assert!(
            self.states.iter().all(|s| s.frames == 0),
            "presence windows must be installed before stepping"
        );
        for (i, &(join_ms, end_ms)) in windows.iter().enumerate() {
            let join = join_ms.clamp(0.0, self.duration_ms);
            let end = end_ms.clamp(join, self.duration_ms);
            self.states[i].t_ms = join;
            self.states[i].fi_last_sync_ms = join;
            self.ends_ms[i] = end;
        }
        // Resource windows track player 0 from its own join.
        self.window_start_ms = self.states[0].t_ms;
    }

    /// Whether every player clock has passed its departure instant
    /// (the configured duration, absent presence windows).
    pub fn finished(&self) -> bool {
        self.states
            .iter()
            .zip(&self.ends_ms)
            .all(|(s, &end)| s.t_ms >= end)
    }

    /// The most-behind *present* player clock (the session's logical
    /// "now"), ms. A departed player's frozen clock never pins the
    /// session clock.
    pub fn now_ms(&self) -> f64 {
        self.states
            .iter()
            .zip(&self.ends_ms)
            .filter(|(s, &end)| s.t_ms < end)
            .map(|(s, _)| s.t_ms)
            .fold(f64::INFINITY, f64::min)
            .min(self.duration_ms)
    }

    /// The active prefetch quality scale in `[0.25, 1]`.
    pub fn quality_scale(&self) -> f64 {
        self.quality_scale
    }

    /// Scales subsequent prefetched frame sizes (graceful degradation:
    /// a fleet host over its frame budget ships lower-resolution far-BE
    /// frames). Clamped to `[0.25, 1]`; 1 is the undegraded default.
    pub fn set_quality_scale(&mut self, scale: f64) {
        self.quality_scale = scale.clamp(0.25, 1.0);
    }

    fn scaled(&self, bytes: u64) -> u64 {
        if self.quality_scale == 1.0 {
            bytes
        } else {
            ((bytes as f64 * self.quality_scale).round() as u64).max(1)
        }
    }

    /// Advances the most-behind player by one display interval using
    /// the session's own link for prefetch misses.
    pub fn step(&mut self) -> Option<StepEvent> {
        self.step_with(&mut link_fetch)
    }

    /// Advances the most-behind player by one display interval, routing
    /// any far/whole-BE prefetch miss through `fetch`. Returns `None`
    /// once every player clock has passed the configured duration.
    pub fn step_with(
        &mut self,
        fetch: &mut dyn FnMut(&mut SharedLink, FarRequest) -> FarResponse,
    ) -> Option<StepEvent> {
        let pi = self
            .states
            .iter()
            .enumerate()
            .filter(|(i, s)| s.t_ms < self.ends_ms[*i])
            .min_by(|a, b| a.1.t_ms.partial_cmp(&b.1.t_ms).expect("finite times"))
            .map(|(i, _)| i)?;
        let end_ms = self.ends_ms[pi];

        let now = self.states[pi].t_ms;
        let t_s = now / 1000.0;
        let trace = self.traces.player(pi).expect("trace exists");
        let pos = trace_position(trace, t_s);
        let sample = self.profiles[pi].index_at(t_s);
        let gp = self.scene.grid().snap(pos);

        // FI sync latency for this interval: drawn from the lossy fault
        // plane when active (with retry + dead-reckoning recovery),
        // otherwise the paper's constant model. Mobile and Thin-client
        // never charge FI sync to Eq. 2, so the plane stays untouched
        // for them.
        let fi_sync_ms = match self.config.system {
            SystemKind::MultiFurion { .. } | SystemKind::Coterie { .. }
                if !self.fi_channels.is_empty() =>
            {
                let sync_ms = fi_fault_sync(
                    &mut self.fi_channels[pi],
                    &mut self.states[pi],
                    &self.traces,
                    pi,
                    now,
                    &mut self.desync_samples,
                );
                self.fi_syncs += 1;
                self.fi_sync_sum_ms += sync_ms;
                sync_ms
            }
            _ => self.fi.sync_latency_ms(),
        };

        // Per-system task timing (Eq. 2).
        let mut fetched: Option<(u64, f64)> = None; // (bytes, latency)
        let (critical_ms, cpu_core_ms, gpu_ms, stages) = match self.config.system {
            SystemKind::Mobile => {
                let tris = self.profiles[pi].visible_tris[sample] + self.fi.fi_triangles();
                let render = self.device.render_ms(tris);
                (
                    render,
                    self.device.cpu_base_ms_per_frame,
                    render,
                    StageBreakdown {
                        render,
                        ..StageBreakdown::parallel()
                    },
                )
            }
            SystemKind::ThinClient => {
                let bytes = self.profiles[pi].fov_bytes[sample];
                // Server renders this player's frame when its GPU frees
                // up…
                let render_start = self.server_gpu_busy_until.max(now);
                self.server_gpu_busy_until = render_start + THIN_SERVER_FRAME_MS;
                // …then streams it over the shared link.
                let render_done = self.server_gpu_busy_until;
                let tx = self.link.transfer(render_done, bytes);
                let decode = self.device.decode_ms(bytes);
                let ready = tx.completed_at_ms + decode;
                let critical = ready - now;
                // Table 1 reports the pure network transfer latency.
                fetched = Some((bytes, tx.completed_at_ms - render_done));
                let cpu = self.device.cpu_base_ms_per_frame + self.device.net_cpu_ms(bytes) + 1.0;
                // GPU only composites the decoded stream.
                (
                    critical,
                    cpu,
                    1.4,
                    StageBreakdown {
                        // Attribution splits the sequential pipeline at
                        // its handoffs: server render (queueing
                        // included), the network wait, then decode.
                        render: render_done - now,
                        decode,
                        net: tx.completed_at_ms - render_done,
                        sync: 0.0,
                        cache: 0.0,
                        compose: 0.0,
                        model: AttributionModel::Sequential,
                    },
                )
            }
            SystemKind::MultiFurion { cache } => {
                let bytes = self.scaled(self.profiles[pi].whole_bytes[sample]);
                let render_fi = self.device.render_ms(self.fi.fi_triangles());
                let decode = self.device.decode_ms(bytes);
                let new_grid_point = self.states[pi].prev_gp != Some(gp);
                let request = FarRequest {
                    player: pi,
                    now_ms: now,
                    grid: gp,
                    pos,
                    leaf: coterie_world::LeafId(0),
                    near_hash: 0,
                    dist_thresh: 0.0,
                    bytes,
                };
                let mut net_ms = 0.0;
                let mut cache_ms = 0.0;
                let prefetch = if !new_grid_point {
                    // Still at the same grid point: the current frame
                    // remains valid, nothing to prefetch.
                    0.0
                } else if cache {
                    let cache_ref = self.states[pi].cache.as_mut().expect("cache enabled");
                    let query = exact_query(gp, pos);
                    if cache_ref.lookup(&query).is_some() {
                        cache_ms = 0.3;
                        cache_ms
                    } else {
                        let resp = fetch(&mut self.link, request);
                        cache_ref.insert(
                            FrameMeta {
                                grid: gp,
                                pos,
                                leaf: coterie_world::LeafId(0),
                                near_hash: 0,
                            },
                            FrameSource::SelfPrefetch,
                            (),
                            resp.bytes,
                            pos,
                        );
                        fetched = Some((resp.bytes, resp.completed_at_ms - now));
                        net_ms = resp.completed_at_ms - now;
                        net_ms
                    }
                } else {
                    let resp = fetch(&mut self.link, request);
                    fetched = Some((resp.bytes, resp.completed_at_ms - now));
                    net_ms = resp.completed_at_ms - now;
                    net_ms
                };
                let critical =
                    render_fi.max(decode).max(prefetch).max(fi_sync_ms) + self.device.merge_ms;
                let cpu = self.device.cpu_base_ms_per_frame + self.device.net_cpu_ms(bytes) + 1.0;
                (
                    critical,
                    cpu,
                    render_fi + 1.0,
                    StageBreakdown {
                        render: render_fi,
                        decode,
                        net: net_ms,
                        sync: fi_sync_ms,
                        cache: cache_ms,
                        compose: self.device.merge_ms,
                        model: AttributionModel::Parallel,
                    },
                )
            }
            SystemKind::Coterie { cache } => {
                let bytes = self.scaled(self.profiles[pi].far_bytes[sample]);
                let map = self.cutoffs.as_ref().expect("coterie needs cutoffs");
                let (leaf, radius, dist_thresh) = map.lookup_params(pos);
                let near_render = self
                    .device
                    .render_ms(self.profiles[pi].near_tris[sample] + self.fi.fi_triangles());
                let decode = self.device.decode_ms(bytes);
                let new_grid_point = self.states[pi].prev_gp != Some(gp);
                let near_hash = self.scene.near_set_hash(pos, radius);
                let request = FarRequest {
                    player: pi,
                    now_ms: now,
                    grid: gp,
                    pos,
                    leaf,
                    near_hash,
                    dist_thresh,
                    bytes,
                };
                let mut net_ms = 0.0;
                let mut cache_ms = 0.0;
                let prefetch = if !new_grid_point {
                    0.0
                } else if cache {
                    let cache_ref = self.states[pi].cache.as_mut().expect("cache enabled");
                    let query = CacheQuery {
                        grid: gp,
                        pos,
                        leaf,
                        near_hash,
                        dist_thresh,
                    };
                    if cache_ref.lookup(&query).is_some() {
                        cache_ms = 0.3;
                        cache_ms
                    } else {
                        let resp = fetch(&mut self.link, request);
                        cache_ref.insert(
                            FrameMeta {
                                grid: gp,
                                pos,
                                leaf,
                                near_hash,
                            },
                            FrameSource::SelfPrefetch,
                            (),
                            resp.bytes,
                            pos,
                        );
                        fetched = Some((resp.bytes, resp.completed_at_ms - now));
                        net_ms = resp.completed_at_ms - now;
                        net_ms
                    }
                } else {
                    let resp = fetch(&mut self.link, request);
                    fetched = Some((resp.bytes, resp.completed_at_ms - now));
                    net_ms = resp.completed_at_ms - now;
                    net_ms
                };
                let critical =
                    near_render.max(decode).max(prefetch).max(fi_sync_ms) + self.device.merge_ms;
                // Cache maintenance + merge adds steady CPU work.
                let cpu = self.device.cpu_base_ms_per_frame
                    + self
                        .device
                        .net_cpu_ms(if fetched.is_some() { bytes } else { 0 })
                    + 2.5;
                (
                    critical,
                    cpu,
                    near_render + 1.0,
                    StageBreakdown {
                        render: near_render,
                        decode,
                        net: net_ms,
                        sync: fi_sync_ms,
                        cache: cache_ms,
                        compose: self.device.merge_ms,
                        model: AttributionModel::Parallel,
                    },
                )
            }
        };

        let state = &mut self.states[pi];
        let interval = critical_ms.max(FRAME_BUDGET_MS);
        state.frames += 1;
        let frame_no = state.frames;
        state.interval_sum_ms += interval;
        state.critical_sum_ms += critical_ms;
        state.cpu_busy_core_ms += cpu_core_ms;
        state.gpu_busy_ms += gpu_ms;
        if let Some((bytes, latency)) = fetched {
            state.fetch_bytes += bytes;
            state.fetch_count += 1;
            state.net_delay_sum_ms += latency;
        }
        state.prev_gp = Some(gp);
        state.t_ms += interval;

        // Resource windows track player 0.
        if pi == 0 {
            self.window_cpu += cpu_core_ms;
            self.window_gpu += gpu_ms.min(interval);
            self.window_time += interval;
            if let Some((bytes, _)) = fetched {
                self.window_bytes += bytes;
            }
            if now - self.window_start_ms >= WINDOW_MS || self.states[0].t_ms >= end_ms {
                if self.window_time > 0.0 {
                    let cpu_util = self
                        .device
                        .cpu_utilization(self.window_cpu, self.window_time);
                    let gpu_util = self
                        .device
                        .gpu_utilization(self.window_gpu, self.window_time);
                    let mbps = self.window_bytes as f64 * 8.0 / 1000.0 / self.window_time;
                    let watts = self.power.draw_w(cpu_util, gpu_util, mbps);
                    self.thermal.step(watts, self.window_time / 1000.0);
                    self.resources.minutes.push(self.states[0].t_ms / 60_000.0);
                    self.resources.cpu.push(cpu_util);
                    self.resources.gpu.push(gpu_util);
                    self.resources
                        .temperature_c
                        .push(self.thermal.temperature_c());
                    self.resources.power_w.push(watts);
                }
                self.window_start_ms = self.states[0].t_ms;
                self.window_cpu = 0.0;
                self.window_gpu = 0.0;
                self.window_time = 0.0;
                self.window_bytes = 0;
            }
        }

        // Observation only: the record reuses quantities already
        // computed above, so enabling telemetry cannot perturb the
        // simulation.
        if self.telemetry.is_enabled() {
            let rec = FrameRecord {
                room: self.telemetry_room,
                player: pi as u32,
                frame: frame_no,
                start_ms: now,
                render_ms: stages.render,
                decode_ms: stages.decode,
                net_ms: stages.net,
                sync_ms: stages.sync,
                cache_ms: stages.cache,
                compose_ms: stages.compose,
                critical_ms,
                model: stages.model,
            };
            self.telemetry.frame(rec);
            self.telemetry_stats
                .record(&rec, self.telemetry.budget_ms());
            if stages.sync > 0.0 {
                // The sync span covers retries and backoff waits too —
                // `fi_fault_sync` folds them into the charged latency.
                self.telemetry.span(
                    TrackId {
                        pid: room_pid(self.telemetry_room),
                        tid: coterie_telemetry::player_tid(pi as u32),
                    },
                    Stage::Sync,
                    "fi-sync",
                    now,
                    stages.sync,
                    frame_no,
                );
            }
        }

        Some(StepEvent {
            player: pi,
            now_ms: now,
            critical_ms,
            interval_ms: interval,
            fetched_bytes: fetched.map(|(b, _)| b).unwrap_or(0),
        })
    }

    /// Runs the quality pass (if configured) and assembles the report.
    pub fn finish(self) -> SessionReport {
        let cfg = &self.config;
        let visual_ssim = if cfg.quality_samples > 0 {
            let renderer =
                Renderer::new(RenderOptions::fast()).with_telemetry(self.telemetry.clone());
            let server = RenderServer::new(&self.scene, renderer).with_telemetry(
                self.telemetry.clone(),
                TrackId {
                    pid: KERNEL_PID,
                    tid: self.telemetry_room,
                },
            );
            quality::measure_visual_quality(
                &self.scene,
                &server,
                self.cutoffs.as_ref(),
                cfg.system,
                &self.traces,
                &self.fi,
                cfg.quality_samples,
                cfg.seed,
            )
        } else {
            0.0
        };

        let fi = if self.fi_syncs > 0 {
            FiReport {
                syncs: self.fi_syncs,
                retries: self.states.iter().map(|s| s.fi_retries).sum(),
                stale_frames: self.states.iter().map(|s| s.fi_stale_frames).sum(),
                cap_violations: self.states.iter().map(|s| s.fi_cap_violations).sum(),
                max_staleness_ms: self
                    .states
                    .iter()
                    .map(|s| s.fi_max_staleness_ms)
                    .fold(0.0, f64::max),
                mean_sync_ms: self.fi_sync_sum_ms / self.fi_syncs as f64,
                desync_p95_m: percentile(&self.desync_samples, 95.0),
                desync_p99_m: percentile(&self.desync_samples, 99.0),
            }
        } else {
            FiReport::default()
        };

        let players = self
            .states
            .iter()
            .map(|s| {
                if s.frames == 0 {
                    // A player that never displayed a frame reports the
                    // all-zero sentinel rather than `1000/0 → inf`
                    // artifacts (NaN/empty-input audit).
                    return PlayerMetrics::zero();
                }
                let frames = s.frames as f64;
                let total_ms = s.interval_sum_ms.max(1e-9);
                PlayerMetrics {
                    avg_fps: (1000.0 / (s.interval_sum_ms / frames)).min(60.0),
                    inter_frame_ms: s.interval_sum_ms / frames,
                    // Motion-to-photon: for the vsync-locked local
                    // pipelines (Mobile / Multi-Furion / Coterie) input is
                    // sampled at one vsync and the photon leaves at the
                    // next, so responsiveness is the frame interval; the
                    // thin client's asynchronous stream shows its full
                    // pipeline latency.
                    responsiveness_ms: match cfg.system {
                        SystemKind::ThinClient => s.critical_sum_ms / frames,
                        _ => (s.critical_sum_ms / frames).max(0.95 * FRAME_BUDGET_MS),
                    },
                    cpu_load: self.device.cpu_utilization(s.cpu_busy_core_ms, total_ms),
                    gpu_load: self
                        .device
                        .gpu_utilization(s.gpu_busy_ms.min(total_ms), total_ms),
                    frame_bytes: if s.fetch_count > 0 {
                        s.fetch_bytes as f64 / s.fetch_count as f64
                    } else {
                        0.0
                    },
                    net_delay_ms: if s.fetch_count > 0 {
                        s.net_delay_sum_ms / s.fetch_count as f64
                    } else {
                        0.0
                    },
                    be_mbps: s.fetch_bytes as f64 * 8.0 / 1000.0 / total_ms,
                    fi_kbps: self.fi.server_kbps(),
                    cache_hit_ratio: s
                        .cache
                        .as_ref()
                        .map(|c| c.stats().hit_ratio())
                        .unwrap_or(0.0),
                    visual_ssim,
                }
            })
            .collect();

        SessionReport {
            players,
            resources: self.resources,
            duration_s: cfg.duration_s,
            fi,
        }
    }
}

/// Measurement pass: true rendered+encoded sizes at sampled trace
/// positions, parallelized across cores.
fn measure_profiles(
    cfg: &SessionConfig,
    scene: &Scene,
    server: &RenderServer<'_>,
    traces: &TraceSet,
    cutoffs: Option<&CutoffMap>,
) -> Vec<Profile> {
    let render_distance = server.renderer().options().render_distance;
    traces
        .traces()
        .iter()
        .map(|trace| {
            let n = cfg.size_samples.max(1);
            let pts = trace.points();
            let stride = (pts.len() / n).max(1);
            let samples: Vec<(f64, Vec2, f64)> = pts
                .iter()
                .step_by(stride)
                .take(n)
                .map(|p| (p.time, p.position, p.yaw))
                .collect();
            let measured = par_map(&samples, |&(_, pos, yaw)| {
                let (whole, fov) = match cfg.system {
                    SystemKind::Mobile => (0, 0),
                    SystemKind::ThinClient => {
                        (0, server.thin_client_frame(pos, yaw, &[]).transfer_bytes)
                    }
                    SystemKind::MultiFurion { .. } => (server.whole_be(pos).transfer_bytes, 0),
                    SystemKind::Coterie { .. } => (0, 0),
                };
                let (far, near_tris) = if let Some(map) = cutoffs {
                    let (_, radius, _) = map.lookup_params(pos);
                    (
                        server.far_be(pos, radius).transfer_bytes,
                        scene.triangles_within(pos, radius),
                    )
                } else {
                    (0, 0)
                };
                let visible = if matches!(cfg.system, SystemKind::Mobile) {
                    mobile_render_tris(scene, pos, render_distance)
                } else {
                    0
                };
                (whole, far, fov, near_tris, visible)
            });
            let mut profile = Profile::default();
            for ((t, _, _), (whole, far, fov, near, visible)) in samples.iter().zip(measured) {
                profile.times_s.push(*t);
                profile.whole_bytes.push(whole);
                profile.far_bytes.push(far);
                profile.fov_bytes.push(fov);
                profile.near_tris.push(near);
                profile.visible_tris.push(visible);
            }
            profile
        })
        .collect()
}

/// LOD-weighted triangle cost of rendering the whole scene locally (the
/// Mobile baseline). Real engines render distant objects at reduced
/// level-of-detail (cost falls off with distance cubed beyond the
/// full-detail radius) and tessellate terrain at roughly constant screen
/// cost, scaled here by relief. Calibrated so the testbed games land at
/// Table 1's 24-27 FPS on the Pixel-2 profile.
fn mobile_render_tris(scene: &Scene, pos: Vec2, render_distance: f64) -> u64 {
    const LOD_FULL_DETAIL_M: f64 = 14.0;
    const TERRAIN_BASE_TRIS: f64 = 200_000.0;
    const INDOOR_ROOM_TRIS: f64 = 120_000.0;
    let objects: f64 = scene
        .objects_within(pos, render_distance)
        .map(|o| {
            let d = o.position.ground_distance(pos.with_y(0.0)).max(1.0);
            let lod = (LOD_FULL_DETAIL_M / d).powi(3).min(1.0);
            o.triangles as f64 * lod
        })
        .sum();
    let amplitude = scene.terrain().amplitude();
    let terrain = if amplitude == 0.0 {
        INDOOR_ROOM_TRIS
    } else {
        TERRAIN_BASE_TRIS * (1.0 + amplitude / 12.0)
    };
    (objects + terrain) as u64
}

/// Position along a recorded trace at an arbitrary time (linear
/// interpolation between samples).
fn trace_position(trace: &coterie_world::Trace, t_s: f64) -> Vec2 {
    let pts = trace.points();
    if pts.is_empty() {
        return Vec2::ZERO;
    }
    let interval = trace.interval();
    let f = (t_s / interval).clamp(0.0, (pts.len() - 1) as f64);
    let i = f.floor() as usize;
    let frac = f - i as f64;
    if i + 1 >= pts.len() {
        pts[pts.len() - 1].position
    } else {
        pts[i].position.lerp(pts[i + 1].position, frac)
    }
}

/// Finite-difference velocity along a trace at `t_s`, m/s (zero for
/// traces too short to difference, and past the trace end where the
/// clamped position stops moving).
fn trace_velocity(trace: &coterie_world::Trace, t_s: f64) -> Vec2 {
    let pts = trace.points();
    if pts.len() < 2 {
        return Vec2::ZERO;
    }
    let dt = trace.interval();
    let a = trace_position(trace, t_s);
    let b = trace_position(trace, t_s + dt);
    (b - a) * (1.0 / dt)
}

/// One interval's FI sync on the lossy fault plane: bounded retry, then
/// dead-reckoning recovery on exhaustion. Returns the sync latency
/// charged to Eq. 2 and updates the player's loss accounting. A free
/// function (not a method) so callers can borrow the channel, the
/// player state and the desync accumulator disjointly.
fn fi_fault_sync(
    channel: &mut FiChannel,
    st: &mut PlayerState,
    traces: &TraceSet,
    pi: usize,
    now_ms: f64,
    desync_samples: &mut Vec<f64>,
) -> f64 {
    let attempt = fi::sync_with_retries(channel, now_ms);
    st.fi_retries += attempt.retries as u64;
    if attempt.synced {
        st.fi_staleness_ms = 0.0;
        st.fi_last_sync_ms = now_ms;
        return attempt.sync_ms;
    }

    // Retries exhausted: remote avatars are dead-reckoned from their
    // last synced pose + velocity. Extrapolation (and therefore the
    // *displayed* staleness) is capped — past the cap avatars freeze and
    // each further stale interval counts as a consistency violation.
    st.fi_stale_frames += 1;
    let raw_stale_ms = now_ms - st.fi_last_sync_ms;
    if raw_stale_ms > DEAD_RECKON_CAP_MS {
        st.fi_cap_violations += 1;
    }
    st.fi_staleness_ms = raw_stale_ms.min(DEAD_RECKON_CAP_MS);
    st.fi_max_staleness_ms = st.fi_max_staleness_ms.max(st.fi_staleness_ms);

    // Desync sample: worst dead-reckoned avatar position error vs the
    // remote players' true trace positions, meters.
    let t_s = now_ms / 1000.0;
    let last_s = st.fi_last_sync_ms / 1000.0;
    let stale_s = st.fi_staleness_ms / 1000.0;
    let mut worst = 0.0f64;
    for (ri, tr) in traces.traces().iter().enumerate() {
        if ri == pi || tr.points().is_empty() {
            continue;
        }
        let last_pos = trace_position(tr, last_s);
        let vel = trace_velocity(tr, last_s);
        let est = fi::dead_reckon(last_pos, vel, stale_s);
        worst = worst.max(est.distance(trace_position(tr, t_s)));
    }
    desync_samples.push(worst);
    attempt.sync_ms
}

fn exact_query(gp: GridPoint, pos: Vec2) -> CacheQuery {
    CacheQuery {
        grid: gp,
        pos,
        leaf: coterie_world::LeafId(0),
        near_hash: 0,
        dist_thresh: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(game: GameId, system: SystemKind, players: usize) -> SessionReport {
        let config = SessionConfig::new(game, system, players)
            .with_duration_s(30.0)
            .with_seed(5);
        Session::new(config).run()
    }

    #[test]
    fn mobile_is_gpu_bound_at_low_fps() {
        let r = quick(GameId::VikingVillage, SystemKind::Mobile, 1);
        let m = r.aggregate();
        assert!(
            m.avg_fps < 45.0,
            "mobile should miss 60 FPS: {:.0}",
            m.avg_fps
        );
        assert!(
            m.gpu_load > 0.8,
            "mobile GPU should be nearly saturated: {:.2}",
            m.gpu_load
        );
        assert_eq!(m.frame_bytes, 0.0, "mobile transfers no frames");
    }

    #[test]
    fn coterie_sustains_60fps_for_two_players() {
        let r = quick(GameId::VikingVillage, SystemKind::coterie(), 2);
        let m = r.aggregate();
        assert!(m.avg_fps > 58.0, "Coterie 2P FPS {:.0}", m.avg_fps);
        assert!(
            m.responsiveness_ms < 16.7,
            "responsiveness {:.1}",
            m.responsiveness_ms
        );
        assert!(
            m.cache_hit_ratio > 0.5,
            "hit ratio {:.2}",
            m.cache_hit_ratio
        );
    }

    #[test]
    fn multifurion_degrades_with_players() {
        let one = quick(GameId::VikingVillage, SystemKind::multi_furion(), 1).aggregate();
        let four = quick(GameId::VikingVillage, SystemKind::multi_furion(), 4).aggregate();
        assert!(
            one.avg_fps > four.avg_fps + 10.0,
            "MF should degrade: 1P {:.0} vs 4P {:.0}",
            one.avg_fps,
            four.avg_fps
        );
        assert!(four.net_delay_ms > one.net_delay_ms * 1.5);
    }

    #[test]
    fn coterie_reduces_bandwidth_vs_multifurion() {
        let mf = quick(GameId::VikingVillage, SystemKind::multi_furion(), 1).aggregate();
        let ct = quick(GameId::VikingVillage, SystemKind::coterie(), 1).aggregate();
        let reduction = mf.be_mbps / ct.be_mbps.max(1e-9);
        assert!(
            reduction > 5.0,
            "network reduction {reduction:.1}x (MF {:.0} Mbps, Coterie {:.0} Mbps)",
            mf.be_mbps,
            ct.be_mbps
        );
    }

    #[test]
    fn thin_client_has_low_fps_high_latency() {
        let r = quick(GameId::VikingVillage, SystemKind::ThinClient, 1);
        let m = r.aggregate();
        assert!(m.avg_fps < 30.0, "thin client FPS {:.0}", m.avg_fps);
        assert!(
            m.responsiveness_ms > 30.0,
            "thin resp {:.1} ms",
            m.responsiveness_ms
        );
        assert!(m.gpu_load < 0.2, "thin client phone GPU {:.2}", m.gpu_load);
    }

    #[test]
    fn resource_series_produced() {
        let config = SessionConfig::new(GameId::Cts, SystemKind::coterie(), 1)
            .with_duration_s(150.0)
            .with_seed(3);
        let r = Session::new(config).run();
        assert!(r.resources.len() >= 2, "expected minute samples");
        assert!(r.resources.peak_temperature_c() > 25.0);
        assert!(r.resources.mean_power_w() > 2.0);
        assert!(r.resources.mean_power_w() < 6.0);
    }

    #[test]
    fn system_labels_are_distinct() {
        let labels: Vec<&str> = [
            SystemKind::Mobile,
            SystemKind::ThinClient,
            SystemKind::MultiFurion { cache: false },
            SystemKind::MultiFurion { cache: true },
            SystemKind::Coterie { cache: false },
            SystemKind::Coterie { cache: true },
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        let unique: std::collections::HashSet<&&str> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn config_builders_compose() {
        let c = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 3)
            .with_duration_s(42.0)
            .with_seed(99)
            .with_quality_samples(5);
        assert_eq!(c.players, 3);
        assert_eq!(c.duration_s, 42.0);
        assert_eq!(c.seed, 99);
        assert_eq!(c.quality_samples, 5);
    }

    #[test]
    fn profile_index_lookup_clamps() {
        let profile = Profile {
            times_s: vec![0.0, 1.0, 2.0],
            whole_bytes: vec![1, 2, 3],
            far_bytes: vec![0; 3],
            fov_bytes: vec![0; 3],
            near_tris: vec![0; 3],
            visible_tris: vec![0; 3],
        };
        // The profile indexes to the next sample at or after t (clamped).
        assert_eq!(profile.index_at(-1.0), 0);
        assert_eq!(profile.index_at(0.5), 1);
        assert_eq!(profile.index_at(1.5), 2);
        assert_eq!(profile.index_at(99.0), 2);
        assert_eq!(Profile::default().index_at(1.0), 0);
    }

    #[test]
    fn mobile_render_cost_reflects_density_and_relief() {
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(3);
        // A dense probe (many objects nearby) costs more than a sparse
        // one at the same render distance.
        let mut dense = (0u64, Vec2::ZERO);
        let mut sparse = (u64::MAX, Vec2::ZERO);
        for i in 0..8 {
            for j in 0..8 {
                let p = Vec2::new(
                    spec.width * (i as f64 + 0.5) / 8.0,
                    spec.depth * (j as f64 + 0.5) / 8.0,
                );
                let t = scene.triangles_within(p, 14.0);
                if t > dense.0 {
                    dense = (t, p);
                }
                if t < sparse.0 {
                    sparse = (t, p);
                }
            }
        }
        let c_dense = mobile_render_tris(&scene, dense.1, 400.0);
        let c_sparse = mobile_render_tris(&scene, sparse.1, 400.0);
        assert!(c_dense > c_sparse, "dense {c_dense} vs sparse {c_sparse}");
        // An empty flat room pays exactly the room constant.
        let empty = coterie_world::Scene::new(
            coterie_world::Rect::from_size(10.0, 10.0),
            coterie_world::Terrain::flat(),
            vec![],
            coterie_world::scene::ReachableArea::All,
            coterie_world::GridSpec::covering(Vec2::ZERO, 10.0, 10.0, 1.0),
        );
        assert_eq!(
            mobile_render_tris(&empty, Vec2::new(5.0, 5.0), 400.0),
            120_000
        );
    }

    #[test]
    fn trace_position_interpolates() {
        let spec = GameSpec::for_game(GameId::Fps);
        let scene = spec.build_scene(1);
        let traces = TraceSet::generate(&scene, &spec, 1, 4.0, 0.5, 1);
        let trace = traces.player(0).expect("player");
        let a = trace.points()[2].position;
        let b = trace.points()[3].position;
        let mid = trace_position(trace, 1.25);
        assert!((mid.x - (a.x + b.x) * 0.5).abs() < 1e-9);
        // Clamps beyond the end.
        let last = trace.points().last().expect("non-empty").position;
        assert_eq!(trace_position(trace, 1e9), last);
    }

    #[test]
    fn stepped_session_matches_closed_run() {
        // Session::run is now a thin driver over SessionSim; stepping
        // manually with the default fetch path must reproduce it
        // exactly.
        let config = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 2)
            .with_duration_s(20.0)
            .with_seed(11);
        let closed = Session::new(config).run();
        let mut sim = SessionSim::new(config);
        let mut steps = 0u64;
        while sim.step().is_some() {
            steps += 1;
        }
        assert!(sim.finished());
        let stepped = sim.finish();
        assert!(
            steps > 100,
            "20 s of 2 players should take many steps: {steps}"
        );
        for (a, b) in closed.players.iter().zip(&stepped.players) {
            assert_eq!(a.avg_fps, b.avg_fps);
            assert_eq!(a.be_mbps, b.be_mbps);
            assert_eq!(a.cache_hit_ratio, b.cache_hit_ratio);
        }
    }

    #[test]
    fn fetch_hook_sees_only_cache_misses() {
        let config = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 1)
            .with_duration_s(20.0)
            .with_seed(11);
        let mut sim = SessionSim::new(config);
        let mut requests: Vec<FarRequest> = Vec::new();
        let mut fetch = |link: &mut SharedLink, req: FarRequest| {
            requests.push(req);
            let tx = link.transfer(req.now_ms, req.bytes);
            FarResponse {
                bytes: req.bytes,
                completed_at_ms: tx.completed_at_ms,
            }
        };
        let mut fetched_events = 0u64;
        while let Some(ev) = sim.step_with(&mut fetch) {
            if ev.fetched_bytes > 0 {
                fetched_events += 1;
            }
        }
        assert!(!requests.is_empty(), "a fresh cache must miss sometimes");
        assert_eq!(requests.len() as u64, fetched_events);
        for req in &requests {
            assert!(req.bytes > 0);
            assert!(req.dist_thresh > 0.0, "coterie requests carry dist_thresh");
        }
        let report = sim.finish();
        assert!(report.players[0].cache_hit_ratio > 0.0);
    }

    #[test]
    fn quality_scale_reduces_prefetch_bytes() {
        let config = SessionConfig::new(GameId::VikingVillage, SystemKind::coterie(), 1)
            .with_duration_s(15.0)
            .with_seed(4);
        let full = {
            let mut sim = SessionSim::new(config);
            while sim.step().is_some() {}
            sim.finish().aggregate().be_mbps
        };
        let degraded = {
            let mut sim = SessionSim::new(config);
            sim.set_quality_scale(0.25);
            assert_eq!(sim.quality_scale(), 0.25);
            while sim.step().is_some() {}
            sim.finish().aggregate().be_mbps
        };
        assert!(full > 0.0);
        assert!(
            degraded < full * 0.5,
            "quality 0.25 should cut bandwidth: full {full:.3} vs degraded {degraded:.3}"
        );
        // The scale is clamped to the sane range.
        let mut sim = SessionSim::new(config);
        sim.set_quality_scale(7.0);
        assert_eq!(sim.quality_scale(), 1.0);
        sim.set_quality_scale(0.0);
        assert_eq!(sim.quality_scale(), 0.25);
    }

    #[test]
    fn unstepped_session_reports_finite_zero_metrics() {
        // A session finished before any frame is displayed hits the
        // documented zero-frame sentinel: every metric is the finite
        // `PlayerMetrics::zero()`, never an inf/NaN 1000/0 artifact.
        let config = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 2)
            .with_duration_s(10.0)
            .with_seed(3);
        let report = SessionSim::new(config).finish();
        assert_eq!(report.players.len(), 2);
        for p in &report.players {
            assert_eq!(*p, PlayerMetrics::zero());
            assert!(p.avg_fps.is_finite() && p.inter_frame_ms.is_finite());
        }
        assert!(report.aggregate().avg_fps.is_finite());
    }

    #[test]
    fn full_presence_windows_are_bit_identical_to_default() {
        // Installing the trivial window (join 0, leave at duration) for
        // every player must not perturb the simulation at all.
        let config = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 2)
            .with_duration_s(15.0)
            .with_seed(7);
        let plain = {
            let mut sim = SessionSim::new(config);
            while sim.step().is_some() {}
            sim.finish()
        };
        let windowed = {
            let mut sim = SessionSim::new(config);
            sim.set_presence(&[(0.0, 15_000.0), (0.0, 15_000.0)]);
            while sim.step().is_some() {}
            sim.finish()
        };
        assert_eq!(plain, windowed);
    }

    #[test]
    fn presence_windows_bound_player_clocks() {
        let config = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 3)
            .with_duration_s(12.0)
            .with_seed(5);
        let mut sim = SessionSim::new(config);
        // Player 0 plays throughout, player 1 leaves at 4 s, player 2
        // joins at 6 s.
        sim.set_presence(&[(0.0, 12_000.0), (0.0, 4_000.0), (6_000.0, 12_000.0)]);
        while sim.step().is_some() {}
        assert!(sim.finished());
        let report = sim.finish();
        let frames = |p: &PlayerMetrics| {
            if p.inter_frame_ms > 0.0 {
                // Roughly: played span / mean interval.
                1
            } else {
                0
            }
        };
        assert!(frames(&report.players[0]) > 0);
        assert!(frames(&report.players[1]) > 0);
        assert!(frames(&report.players[2]) > 0);
        // The leaver stops around 4 s and the joiner starts around 6 s,
        // so both played a strict subset of player 0's wall time; every
        // metric still comes out finite.
        for p in &report.players {
            assert!(p.avg_fps.is_finite());
            assert!(p.responsiveness_ms.is_finite());
        }
        assert!(report.aggregate().avg_fps > 0.0);
    }

    #[test]
    fn zero_and_one_frame_players_stay_nan_free() {
        // The churn regression the aggregation fix guards: one player
        // present for the whole run, one present for a single display
        // interval, one never present at all.
        let config = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 3)
            .with_duration_s(10.0)
            .with_seed(13);
        let mut sim = SessionSim::new(config);
        sim.set_presence(&[
            (0.0, 10_000.0),
            (0.0, 1.0),         // one interval: first step passes 1 ms
            (5_000.0, 5_000.0), // zero-length window: never plays
        ]);
        while sim.step().is_some() {}
        let report = sim.finish();
        assert!(report.players[0].avg_fps > 0.0);
        // The one-frame player displayed exactly one interval.
        assert!(report.players[1].inter_frame_ms > 0.0);
        assert!(report.players[1].avg_fps.is_finite());
        // The absent slot reports the zero sentinel.
        assert_eq!(report.players[2], PlayerMetrics::zero());
        // And the aggregate skips the sentinel instead of averaging a
        // phantom zero-FPS player in.
        let agg = report.aggregate();
        assert!(agg.avg_fps.is_finite());
        let active_mean = (report.players[0].avg_fps + report.players[1].avg_fps) / 2.0;
        assert!((agg.avg_fps - active_mean).abs() < 1e-9);
    }

    #[test]
    fn departed_player_does_not_pin_session_clock() {
        let config = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 2)
            .with_duration_s(10.0)
            .with_seed(2);
        let mut sim = SessionSim::new(config);
        sim.set_presence(&[(0.0, 10_000.0), (0.0, 2_000.0)]);
        let mut past_leave = false;
        while sim.step().is_some() {
            if sim.now_ms() > 2_500.0 {
                past_leave = true;
            }
        }
        assert!(
            past_leave,
            "session clock must advance past the leaver's frozen clock"
        );
    }

    #[test]
    fn telemetry_sink_observes_without_changing_results() {
        use coterie_telemetry::{TelemetryConfig, TelemetrySink};
        let config = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 2)
            .with_duration_s(15.0)
            .with_seed(9);
        let plain = {
            let mut sim = SessionSim::new(config);
            while sim.step().is_some() {}
            sim.finish()
        };
        let sink = TelemetrySink::recording(TelemetryConfig::default());
        let (traced, stats) = {
            let mut sim = SessionSim::new_with_telemetry(config, sink.clone(), 3);
            while sim.step().is_some() {}
            let stats = sim.telemetry_stats().expect("enabled sink tracks stats");
            (sim.finish(), stats)
        };
        assert_eq!(plain, traced, "telemetry must be observation-only");
        assert!(stats.frames > 0);
        let summary = sink.summary().expect("recording sink summarizes");
        assert_eq!(summary.frames, stats.frames);
        assert_eq!(summary.over_budget, stats.over_budget);
        let worst = summary.worst.expect("frames were recorded");
        assert_eq!(worst.room, 3);
        // Every stage duration the sink saw is finite and non-negative.
        for rec in sink.frames_snapshot() {
            assert!(rec.attributed_ms().is_finite());
            for stage in Stage::ATTRIBUTED {
                let d = rec.stage_ms(stage);
                assert!(d.is_finite() && d >= 0.0, "{stage}: {d}");
            }
            // Attribution reconstructs the simulated critical path.
            let err = (rec.attributed_ms() - rec.critical_ms).abs();
            assert!(
                err <= rec.critical_ms.max(1.0) * 0.01,
                "attribution off by {err:.4} ms on frame {:?}",
                rec
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn zero_players_rejected() {
        let _ = Session::new(SessionConfig::new(GameId::Pool, SystemKind::Mobile, 0));
    }

    #[test]
    fn lossy_session_reports_fi_recovery() {
        let config = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 2)
            .with_duration_s(30.0)
            .with_seed(11)
            .with_net(NetScenario::BurstLoss);
        let r = Session::new(config).run();
        assert!(r.fi.syncs > 0, "lossy multiplayer sessions count syncs");
        assert!(r.fi.retries > 0, "burst loss should force retries");
        assert!(
            r.fi.stale_frames > 0,
            "burst loss should exhaust retries sometimes"
        );
        assert!(r.fi.mean_sync_ms > 0.0);
        // Displayed staleness is capped by construction.
        assert!(r.fi.max_staleness_ms <= DEAD_RECKON_CAP_MS);
        assert!(r.fi.desync_p99_m >= r.fi.desync_p95_m);
    }

    #[test]
    fn lossy_session_is_seed_deterministic() {
        let config = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 2)
            .with_duration_s(20.0)
            .with_seed(11)
            .with_net(NetScenario::LatencySpikes);
        let a = Session::new(config).run();
        let b = Session::new(config).run();
        assert_eq!(a, b, "same seed + scenario must reproduce bit-for-bit");
    }

    #[test]
    fn net_none_is_bit_identical_to_default() {
        let base = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 2)
            .with_duration_s(20.0)
            .with_seed(11);
        let a = Session::new(base).run();
        let b = Session::new(base.with_net(NetScenario::None)).run();
        assert_eq!(a, b);
        assert_eq!(a.fi, FiReport::default(), "lossless runs report zero FI");
    }

    #[test]
    fn single_player_lossy_session_skips_fault_plane() {
        // A lone player only exchanges keep-alives; the fault plane
        // never engages even under a lossy scenario.
        let config = SessionConfig::new(GameId::Pool, SystemKind::coterie(), 1)
            .with_duration_s(15.0)
            .with_seed(4);
        let lossless = Session::new(config).run();
        let lossy = Session::new(config.with_net(NetScenario::BurstLoss)).run();
        assert_eq!(lossless, lossy);
        assert_eq!(lossy.fi, FiReport::default());
    }

    #[test]
    fn trace_velocity_matches_finite_difference() {
        let spec = GameSpec::for_game(GameId::Fps);
        let scene = spec.build_scene(1);
        let traces = TraceSet::generate(&scene, &spec, 1, 4.0, 0.5, 1);
        let trace = traces.player(0).expect("player");
        let v = trace_velocity(trace, 1.0);
        let a = trace.points()[2].position;
        let b = trace.points()[3].position;
        assert!((v.x - (b.x - a.x) / 0.5).abs() < 1e-9);
        assert!((v.z - (b.z - a.z) / 0.5).abs() < 1e-9);
        // Past the trace end the clamped position stops moving.
        assert_eq!(trace_velocity(trace, 1e9), Vec2::ZERO);
    }
}
