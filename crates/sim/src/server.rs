//! The render server: pre-renders and encodes BE panoramas.
//!
//! The Coterie server "pre-renders and pre-encodes (using x264 ...)
//! panoramic far BE frames for all the grid points the player can reach"
//! and replies to prefetch requests with them (§5.1). Multi-Furion's
//! server does the same for whole-BE panoramas; the Thin-client server
//! renders per-player FoV frames live.

use coterie_codec::{EncodedFrame, Encoder, Quality, SizeModel};
use coterie_frame::LumaFrame;
use coterie_render::{FovOptions, Panorama, RenderFilter, Renderer};
use coterie_telemetry::{TelemetrySink, TrackId};
use coterie_world::{Scene, SceneObject, Vec2};

/// A rendered-and-encoded frame plus its 4K-equivalent transfer size.
#[derive(Debug, Clone)]
pub struct ServedFrame {
    /// The encoded payload (at simulation resolution).
    pub encoded: EncodedFrame,
    /// Transfer size at the paper's resolution, bytes.
    pub transfer_bytes: u64,
}

/// The desktop render server.
#[derive(Debug)]
pub struct RenderServer<'a> {
    scene: &'a Scene,
    renderer: Renderer,
    encoder: Encoder,
    /// Size scaling for whole-BE 4K panoramas (Multi-Furion prefetch).
    /// Near content moves fast across the image between GOP frames, so
    /// x264's motion compensation saves little on it.
    whole_size_model: SizeModel,
    /// Size scaling for far-BE panoramas: far content is nearly static
    /// between adjacent grid points, so the temporal prediction of a
    /// real video codec compresses it harder than our intra-only codec
    /// measures. Calibrated to the paper's 2-3x whole/far size ratio.
    far_size_model: SizeModel,
    /// Size scaling for the thin client's live-streamed viewport frames.
    /// Its efficiency factor is higher than the panorama model's because
    /// the stream carries two full-detail eye views whose content our
    /// low-resolution crop smooths away.
    fov_size_model: SizeModel,
    fov: FovOptions,
    /// Telemetry sink for encode/decode spans; disabled by default.
    telemetry: TelemetrySink,
    /// Trace lane the codec spans land on.
    telemetry_track: TrackId,
}

impl<'a> RenderServer<'a> {
    /// Creates a server for a scene.
    pub fn new(scene: &'a Scene, renderer: Renderer) -> Self {
        RenderServer {
            scene,
            renderer,
            encoder: Encoder::new(Quality::CRF25),
            whole_size_model: SizeModel {
                h264_efficiency: 0.46,
                ..SizeModel::default()
            },
            far_size_model: SizeModel {
                h264_efficiency: 0.32,
                ..SizeModel::default()
            },
            fov_size_model: SizeModel {
                target_width: 1920,
                target_height: 1080,
                h264_efficiency: 3.0,
            },
            fov: FovOptions::default(),
            telemetry: TelemetrySink::disabled(),
            telemetry_track: TrackId { pid: 0, tid: 0 },
        }
    }

    /// Routes encode/decode spans to `sink` on trace lane `track`.
    pub fn with_telemetry(mut self, sink: TelemetrySink, track: TrackId) -> Self {
        self.telemetry = sink;
        self.telemetry_track = track;
        self
    }

    /// The scene being served.
    pub fn scene(&self) -> &Scene {
        self.scene
    }

    /// The renderer in use.
    pub fn renderer(&self) -> &Renderer {
        &self.renderer
    }

    /// The encoder in use.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Renders + encodes the whole-BE panorama at a position
    /// (Multi-Furion's prefetched frame).
    pub fn whole_be(&self, pos: Vec2) -> ServedFrame {
        let pano =
            self.renderer
                .render_panorama(self.scene, self.scene.eye(pos), RenderFilter::All);
        self.encode_pano(&pano, &self.whole_size_model)
    }

    /// Renders + encodes the far-BE panorama at a position with the given
    /// cutoff radius (Coterie's prefetched frame).
    pub fn far_be(&self, pos: Vec2, cutoff: f64) -> ServedFrame {
        let pano = self.renderer.render_panorama(
            self.scene,
            self.scene.eye(pos),
            RenderFilter::FarOnly { cutoff },
        );
        self.encode_pano(&pano, &self.far_size_model)
    }

    /// Renders + encodes one live thin-client viewport frame (whole scene
    /// plus FI avatars, cropped to the headset FoV).
    pub fn thin_client_frame(&self, pos: Vec2, yaw: f64, avatars: &[SceneObject]) -> ServedFrame {
        let pano = self.renderer.render_panorama_with(
            self.scene,
            self.scene.eye(pos),
            RenderFilter::All,
            avatars,
        );
        let view = self.fov.crop(&pano.frame, yaw, 0.0);
        let encoded = self
            .encoder
            .encode_traced(&view, &self.telemetry, self.telemetry_track, 0);
        let transfer_bytes = self.fov_size_model.scaled_bytes(&encoded);
        ServedFrame {
            encoded,
            transfer_bytes,
        }
    }

    /// Decodes a served frame back to luma (the client-side step).
    ///
    /// # Panics
    ///
    /// Panics if the frame does not round-trip — impossible for frames
    /// produced by this server.
    pub fn decode(&self, frame: &ServedFrame) -> LumaFrame {
        self.encoder
            .decode_traced(&frame.encoded, &self.telemetry, self.telemetry_track, 0)
            .expect("server-encoded frames always decode")
    }

    fn encode_pano(&self, pano: &Panorama, model: &SizeModel) -> ServedFrame {
        let encoded =
            self.encoder
                .encode_traced(&pano.frame, &self.telemetry, self.telemetry_track, 0);
        let transfer_bytes = model.scaled_bytes(&encoded);
        ServedFrame {
            encoded,
            transfer_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_render::RenderOptions;
    use coterie_world::{GameId, GameSpec};

    fn server_for(id: GameId) -> (Scene, GameSpec) {
        let spec = GameSpec::for_game(id);
        (spec.build_scene(7), spec)
    }

    #[test]
    fn whole_be_sizes_land_in_paper_range() {
        // Table 1: Multi-Furion whole-BE frames are 440-564 KB at 4K.
        let (scene, _) = server_for(GameId::VikingVillage);
        let server = RenderServer::new(&scene, Renderer::new(RenderOptions::fast()));
        let f = server.whole_be(scene.bounds().center());
        let kb = f.transfer_bytes / 1000;
        assert!(
            (250..900).contains(&kb),
            "whole-BE 4K-equivalent size {kb} KB out of plausible range"
        );
    }

    #[test]
    fn far_be_smaller_than_whole_be() {
        // "Coterie without cache ... prefetches far BE frames ... which
        // are about 2X-3X [smaller]" (§7.2).
        let (scene, _) = server_for(GameId::VikingVillage);
        let server = RenderServer::new(&scene, Renderer::new(RenderOptions::fast()));
        let pos = scene.bounds().center();
        let whole = server.whole_be(pos);
        let far = server.far_be(pos, 10.0);
        assert!(
            far.transfer_bytes < whole.transfer_bytes,
            "far {} must be smaller than whole {}",
            far.transfer_bytes,
            whole.transfer_bytes
        );
    }

    #[test]
    fn larger_cutoff_smaller_far_frames() {
        let (scene, _) = server_for(GameId::VikingVillage);
        let server = RenderServer::new(&scene, Renderer::new(RenderOptions::fast()));
        let pos = scene.bounds().center();
        let near_cut = server.far_be(pos, 4.0);
        let far_cut = server.far_be(pos, 40.0);
        assert!(far_cut.transfer_bytes <= near_cut.transfer_bytes);
    }

    #[test]
    fn decode_roundtrips() {
        let (scene, _) = server_for(GameId::Pool);
        let server = RenderServer::new(&scene, Renderer::new(RenderOptions::fast()));
        let f = server.whole_be(scene.bounds().center());
        let decoded = server.decode(&f);
        assert_eq!(decoded.width(), server.renderer().options().width);
    }

    #[test]
    fn thin_client_frame_has_fov_dimensions() {
        let (scene, _) = server_for(GameId::Pool);
        let server = RenderServer::new(&scene, Renderer::new(RenderOptions::fast()));
        let f = server.thin_client_frame(scene.bounds().center(), 0.3, &[]);
        assert!(
            f.transfer_bytes > 10_000,
            "thin frame {} bytes",
            f.transfer_bytes
        );
        let decoded = server.decode(&f);
        assert_eq!(decoded.width(), FovOptions::default().width);
    }
}
