//! Foreground-interaction (FI) synchronization model.
//!
//! Multi-Furion and Coterie exchange FI state (pose, rotation, animation)
//! among players through Photon Unity Networking relayed by the server
//! (§3, §5.1 task 4). The paper measures:
//!
//! * 2–3 ms for a client to sync its FI each interval (footnote 1),
//! * FI traffic 2–4 orders of magnitude below BE traffic — ~1 Kbps for a
//!   single player (keep-alives) growing to ~260–275 Kbps at four
//!   players (Table 9).

use coterie_net::FiChannel;
use coterie_world::{ObjectId, ObjectKind, SceneObject, Vec2};
use serde::{Deserialize, Serialize};

/// Per-interval FI synchronization latency, ms (paper footnote 1:
/// "2-3 ms"). Never the critical path of Eq. 2.
pub const FI_SYNC_LATENCY_MS: f64 = 2.5;

/// Attempts per interval on the lossy FI path (one initial send plus
/// two retries). Worst case the sync task spends
/// `3 * FI_RETRY_TIMEOUT_MS + 0.5 + 1.0 = 9.0 ms` before giving up —
/// bounded well inside the 16.7 ms frame budget, leaving room for the
/// merge step even when sync is the critical path.
pub const FI_RETRY_ATTEMPTS: u32 = 3;

/// Loss-detection timeout charged per failed attempt, ms (the client
/// declares the round trip dead after ~the paper's 2–3 ms sync band).
pub const FI_RETRY_TIMEOUT_MS: f64 = 2.5;

/// Exponential backoff inserted before the 2nd and 3rd attempts, ms.
pub const FI_RETRY_BACKOFF_MS: [f64; 2] = [0.5, 1.0];

/// Dead-reckoning staleness cap, ms. A remote avatar is extrapolated
/// from its last-known pose and velocity for at most this long (six
/// vsync intervals); past the cap extrapolation freezes — so *displayed*
/// staleness never exceeds the cap — and every further stale interval
/// is counted as a consistency violation (the quality penalty).
pub const DEAD_RECKON_CAP_MS: f64 = 100.0;

/// Bytes of one FI state-sync message (pose + rotation + animation
/// state for one object, with PUN framing).
const SYNC_MESSAGE_BYTES: f64 = 46.0;

/// Sync rate in Hz (object sync every frame).
const SYNC_RATE_HZ: f64 = 60.0;

/// The FI synchronization model for one session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiSync {
    players: usize,
}

impl FiSync {
    /// Creates the model for an `n`-player session.
    ///
    /// # Panics
    ///
    /// Panics if `players == 0`.
    pub fn new(players: usize) -> Self {
        assert!(players > 0, "sessions need at least one player");
        FiSync { players }
    }

    /// Total server-side FI bandwidth in Kbps (Table 9's FI column):
    /// every player's state is relayed to every other player each frame;
    /// a lone player only exchanges keep-alives.
    pub fn server_kbps(&self) -> f64 {
        if self.players == 1 {
            return 1.0;
        }
        let ordered_pairs = (self.players * (self.players - 1)) as f64;
        ordered_pairs * SYNC_MESSAGE_BYTES * 8.0 * SYNC_RATE_HZ / 1000.0
    }

    /// Per-interval sync latency contribution to Eq. 2, ms.
    pub fn sync_latency_ms(&self) -> f64 {
        if self.players == 1 {
            0.5
        } else {
            FI_SYNC_LATENCY_MS
        }
    }

    /// The avatar objects a player must render for the *other* players
    /// (the FI everyone draws locally). `positions[i]` is player `i`'s
    /// current position; `viewer` is excluded.
    pub fn remote_avatars(&self, positions: &[Vec2], viewer: usize) -> Vec<SceneObject> {
        positions
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != viewer)
            .map(|(i, &p)| SceneObject {
                // High ids keep avatars clear of static scene objects.
                id: ObjectId(u32::MAX - i as u32),
                position: p.with_y(0.0),
                radius: 0.45,
                height: 1.8,
                triangles: 9_000,
                albedo: 0.85,
                kind: ObjectKind::Cylinder,
                texture_seed: 0xFEED ^ i as u64,
            })
            .collect()
    }

    /// Triangles of FI content a player renders each frame (own hands /
    /// car plus remote avatars).
    pub fn fi_triangles(&self) -> u64 {
        let own = 14_000u64;
        own + 9_000 * (self.players as u64 - 1)
    }
}

/// Outcome of one interval's FI sync on the lossy path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiSyncAttempt {
    /// Latency charged to the interval's sync task, ms: retry time plus
    /// the successful round trip, or the full (bounded) retry budget on
    /// exhaustion.
    pub sync_ms: f64,
    /// Retries spent (0 when the first attempt lands).
    pub retries: u32,
    /// Whether fresh state arrived this interval. `false` means the
    /// client falls back to dead reckoning.
    pub synced: bool,
}

/// Runs one interval's state sync over the lossy FI channel with
/// bounded retry and exponential backoff (see [`FI_RETRY_ATTEMPTS`]).
pub fn sync_with_retries(channel: &mut FiChannel, now_ms: f64) -> FiSyncAttempt {
    let mut elapsed = 0.0;
    let mut retries = 0u32;
    for attempt in 0..FI_RETRY_ATTEMPTS {
        if let Some(rtt) = channel.relay_sync_at(now_ms + elapsed) {
            return FiSyncAttempt {
                sync_ms: elapsed + rtt,
                retries,
                synced: true,
            };
        }
        elapsed += FI_RETRY_TIMEOUT_MS;
        if attempt + 1 < FI_RETRY_ATTEMPTS {
            elapsed += FI_RETRY_BACKOFF_MS[attempt as usize];
            retries += 1;
        }
    }
    FiSyncAttempt {
        sync_ms: elapsed,
        retries,
        synced: false,
    }
}

/// Dead-reckons a remote avatar: last-known position extrapolated along
/// the last-known velocity for `staleness_s` seconds. Callers clamp
/// `staleness_s` at [`DEAD_RECKON_CAP_MS`].
pub fn dead_reckon(last_pos: Vec2, velocity: Vec2, staleness_s: f64) -> Vec2 {
    last_pos + velocity * staleness_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_net::NetScenario;

    #[test]
    fn retry_budget_is_bounded_within_frame() {
        // Even total exhaustion must leave room for the merge step.
        let worst = FI_RETRY_ATTEMPTS as f64 * FI_RETRY_TIMEOUT_MS
            + FI_RETRY_BACKOFF_MS.iter().sum::<f64>();
        assert!(worst < 16.7 - 1.0, "retry budget {worst} ms too large");
        // A channel in permanent outage exhausts all attempts at the
        // bounded cost.
        let mut ch = FiChannel::new(NetScenario::RelayOutage, 1);
        let outcome = sync_with_retries(&mut ch, 1_510.0);
        assert!(!outcome.synced);
        assert_eq!(outcome.retries, FI_RETRY_ATTEMPTS - 1);
        assert!((outcome.sync_ms - worst).abs() < 1e-9);
    }

    #[test]
    fn healthy_channel_syncs_first_try_in_paper_band() {
        let mut ch = FiChannel::new(NetScenario::Wifi, 11);
        let mut total = 0.0;
        let mut n = 0;
        for i in 0..500 {
            let o = sync_with_retries(&mut ch, i as f64 * 16.7);
            assert!(o.synced || o.retries > 0);
            if o.synced && o.retries == 0 {
                total += o.sync_ms;
                n += 1;
            }
        }
        assert!(n > 450, "healthy channel mostly syncs first try: {n}");
        let mean = total / n as f64;
        assert!((2.0..3.2).contains(&mean), "mean sync {mean:.2} ms");
    }

    #[test]
    fn dead_reckoning_extrapolates_linearly() {
        let est = dead_reckon(Vec2::new(1.0, 2.0), Vec2::new(2.0, -1.0), 0.5);
        assert!((est.x - 2.0).abs() < 1e-12);
        assert!((est.z - 1.5).abs() < 1e-12);
        // Zero staleness returns the last-known pose untouched.
        let frozen = dead_reckon(Vec2::new(1.0, 2.0), Vec2::new(9.0, 9.0), 0.0);
        assert_eq!(frozen, Vec2::new(1.0, 2.0));
    }

    #[test]
    fn single_player_traffic_is_keepalive() {
        assert_eq!(FiSync::new(1).server_kbps(), 1.0);
    }

    #[test]
    fn traffic_matches_table9_scale() {
        // Table 9: 2P ~52-71 Kbps, 3P ~129-153, 4P ~260-275.
        let two = FiSync::new(2).server_kbps();
        let three = FiSync::new(3).server_kbps();
        let four = FiSync::new(4).server_kbps();
        assert!((35.0..80.0).contains(&two), "2P FI {two:.0} Kbps");
        assert!((100.0..180.0).contains(&three), "3P FI {three:.0} Kbps");
        assert!((220.0..320.0).contains(&four), "4P FI {four:.0} Kbps");
        assert!(two < three && three < four);
    }

    #[test]
    fn fi_traffic_orders_of_magnitude_below_be() {
        // BE traffic is tens of Mbps; FI stays in Kbps (2-4 orders lower).
        let fi_kbps = FiSync::new(4).server_kbps();
        let be_kbps = 42.0 * 1000.0; // smallest Coterie 4P BE value
        assert!(fi_kbps < be_kbps / 50.0);
    }

    #[test]
    fn sync_latency_within_paper_bounds() {
        let s = FiSync::new(3).sync_latency_ms();
        assert!((2.0..=3.0).contains(&s));
        assert!(FiSync::new(1).sync_latency_ms() < s);
    }

    #[test]
    fn remote_avatars_exclude_viewer() {
        let sync = FiSync::new(3);
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(5.0, 0.0),
            Vec2::new(0.0, 5.0),
        ];
        let avatars = sync.remote_avatars(&positions, 1);
        assert_eq!(avatars.len(), 2);
        for a in &avatars {
            assert_ne!(a.position.ground(), positions[1]);
        }
        // Distinct ids per player.
        assert_ne!(avatars[0].id, avatars[1].id);
    }

    #[test]
    fn fi_triangles_stay_under_4ms_budget() {
        // Constraint: FI render time < 4 ms on a Pixel 2 (§4.3).
        let device = coterie_device::DeviceProfile::pixel2();
        for n in 1..=4 {
            let tris = FiSync::new(n).fi_triangles();
            let ms = device.render_ms(tris) - 1.2; // overhead charged once
            assert!(ms < 4.0, "{n} players: FI render {ms:.2} ms");
        }
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn zero_players_rejected() {
        let _ = FiSync::new(0);
    }
}
