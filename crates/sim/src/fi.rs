//! Foreground-interaction (FI) synchronization model.
//!
//! Multi-Furion and Coterie exchange FI state (pose, rotation, animation)
//! among players through Photon Unity Networking relayed by the server
//! (§3, §5.1 task 4). The paper measures:
//!
//! * 2–3 ms for a client to sync its FI each interval (footnote 1),
//! * FI traffic 2–4 orders of magnitude below BE traffic — ~1 Kbps for a
//!   single player (keep-alives) growing to ~260–275 Kbps at four
//!   players (Table 9).

use coterie_world::{ObjectId, ObjectKind, SceneObject, Vec2};
use serde::{Deserialize, Serialize};

/// Per-interval FI synchronization latency, ms (paper footnote 1:
/// "2-3 ms"). Never the critical path of Eq. 2.
pub const FI_SYNC_LATENCY_MS: f64 = 2.5;

/// Bytes of one FI state-sync message (pose + rotation + animation
/// state for one object, with PUN framing).
const SYNC_MESSAGE_BYTES: f64 = 46.0;

/// Sync rate in Hz (object sync every frame).
const SYNC_RATE_HZ: f64 = 60.0;

/// The FI synchronization model for one session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiSync {
    players: usize,
}

impl FiSync {
    /// Creates the model for an `n`-player session.
    ///
    /// # Panics
    ///
    /// Panics if `players == 0`.
    pub fn new(players: usize) -> Self {
        assert!(players > 0, "sessions need at least one player");
        FiSync { players }
    }

    /// Total server-side FI bandwidth in Kbps (Table 9's FI column):
    /// every player's state is relayed to every other player each frame;
    /// a lone player only exchanges keep-alives.
    pub fn server_kbps(&self) -> f64 {
        if self.players == 1 {
            return 1.0;
        }
        let ordered_pairs = (self.players * (self.players - 1)) as f64;
        ordered_pairs * SYNC_MESSAGE_BYTES * 8.0 * SYNC_RATE_HZ / 1000.0
    }

    /// Per-interval sync latency contribution to Eq. 2, ms.
    pub fn sync_latency_ms(&self) -> f64 {
        if self.players == 1 {
            0.5
        } else {
            FI_SYNC_LATENCY_MS
        }
    }

    /// The avatar objects a player must render for the *other* players
    /// (the FI everyone draws locally). `positions[i]` is player `i`'s
    /// current position; `viewer` is excluded.
    pub fn remote_avatars(&self, positions: &[Vec2], viewer: usize) -> Vec<SceneObject> {
        positions
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != viewer)
            .map(|(i, &p)| SceneObject {
                // High ids keep avatars clear of static scene objects.
                id: ObjectId(u32::MAX - i as u32),
                position: p.with_y(0.0),
                radius: 0.45,
                height: 1.8,
                triangles: 9_000,
                albedo: 0.85,
                kind: ObjectKind::Cylinder,
                texture_seed: 0xFEED ^ i as u64,
            })
            .collect()
    }

    /// Triangles of FI content a player renders each frame (own hands /
    /// car plus remote avatars).
    pub fn fi_triangles(&self) -> u64 {
        let own = 14_000u64;
        own + 9_000 * (self.players as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_player_traffic_is_keepalive() {
        assert_eq!(FiSync::new(1).server_kbps(), 1.0);
    }

    #[test]
    fn traffic_matches_table9_scale() {
        // Table 9: 2P ~52-71 Kbps, 3P ~129-153, 4P ~260-275.
        let two = FiSync::new(2).server_kbps();
        let three = FiSync::new(3).server_kbps();
        let four = FiSync::new(4).server_kbps();
        assert!((35.0..80.0).contains(&two), "2P FI {two:.0} Kbps");
        assert!((100.0..180.0).contains(&three), "3P FI {three:.0} Kbps");
        assert!((220.0..320.0).contains(&four), "4P FI {four:.0} Kbps");
        assert!(two < three && three < four);
    }

    #[test]
    fn fi_traffic_orders_of_magnitude_below_be() {
        // BE traffic is tens of Mbps; FI stays in Kbps (2-4 orders lower).
        let fi_kbps = FiSync::new(4).server_kbps();
        let be_kbps = 42.0 * 1000.0; // smallest Coterie 4P BE value
        assert!(fi_kbps < be_kbps / 50.0);
    }

    #[test]
    fn sync_latency_within_paper_bounds() {
        let s = FiSync::new(3).sync_latency_ms();
        assert!((2.0..=3.0).contains(&s));
        assert!(FiSync::new(1).sync_latency_ms() < s);
    }

    #[test]
    fn remote_avatars_exclude_viewer() {
        let sync = FiSync::new(3);
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(5.0, 0.0),
            Vec2::new(0.0, 5.0),
        ];
        let avatars = sync.remote_avatars(&positions, 1);
        assert_eq!(avatars.len(), 2);
        for a in &avatars {
            assert_ne!(a.position.ground(), positions[1]);
        }
        // Distinct ids per player.
        assert_ne!(avatars[0].id, avatars[1].id);
    }

    #[test]
    fn fi_triangles_stay_under_4ms_budget() {
        // Constraint: FI render time < 4 ms on a Pixel 2 (§4.3).
        let device = coterie_device::DeviceProfile::pixel2();
        for n in 1..=4 {
            let tris = FiSync::new(n).fi_triangles();
            let ms = device.render_ms(tris) - 1.2; // overhead charged once
            assert!(ms < 4.0, "{n} players: FI render {ms:.2} ms");
        }
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn zero_players_rejected() {
        let _ = FiSync::new(0);
    }
}
