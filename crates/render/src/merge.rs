//! Layer compositing: merging near BE over far BE.
//!
//! Task 5 of the Coterie client loop (§5.1): "The decoded far BE frame is
//! merged with the locally rendered FI and near BE in the Render engine."
//! The near layer's coverage mask decides which pixels come from the
//! locally rendered near BE and which from the (possibly cached, possibly
//! codec-lossy) far BE frame.

use crate::panorama::Panorama;
use coterie_frame::LumaFrame;
use coterie_parallel::simd;

/// Composites the near-BE layer over the far-BE layer.
///
/// Pixels covered by `near` take its value; all other pixels fall back to
/// `far`. The result reports full coverage when the two layers jointly
/// cover the frame (they always do when rendered from the same viewpoint
/// with complementary filters; a *reused* far frame from a nearby
/// viewpoint may leave a thin uncovered seam, which is filled from the
/// far frame's values regardless — visually this is the slight stutter
/// the paper's user study probes).
///
/// # Panics
///
/// Panics if the layers have different dimensions.
pub fn merge(near: &Panorama, far: &Panorama) -> LumaFrame {
    merge_with_simd(near, far, simd::detected_level())
}

/// [`merge`] pinned to an explicit SIMD dispatch level (all levels are
/// bit-identical — the select copies near-layer bits verbatim).
///
/// # Panics
///
/// Panics if the layers have different dimensions.
pub fn merge_with_simd(near: &Panorama, far: &Panorama, level: simd::SimdLevel) -> LumaFrame {
    assert_eq!(near.frame.width(), far.frame.width(), "layer widths differ");
    assert_eq!(
        near.frame.height(),
        far.frame.height(),
        "layer heights differ"
    );
    let w = near.frame.width();
    let h = near.frame.height();
    let mut out = LumaFrame::new(w, h);
    // Bulk-copy the far plane, then overwrite the near-masked pixels with
    // a masked select over the whole plane.
    out.data_mut().copy_from_slice(far.frame.data());
    simd::masked_select_f32(out.data_mut(), near.frame.data(), &near.mask, level);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panorama::{RenderFilter, Renderer};
    use coterie_frame::ssim;
    use coterie_world::{GameId, GameSpec};

    #[test]
    fn merge_prefers_near_where_masked() {
        let near = Panorama {
            frame: LumaFrame::filled(4, 2, 1.0),
            mask: vec![1, 0, 1, 0, 1, 0, 1, 0],
        };
        let far = Panorama {
            frame: LumaFrame::filled(4, 2, 0.25),
            mask: vec![1; 8],
        };
        let merged = merge(&near, &far);
        assert_eq!(merged.get(0, 0), 1.0);
        assert_eq!(merged.get(1, 0), 0.25);
    }

    #[test]
    fn split_render_then_merge_equals_full_render() {
        // The core compositing invariant: near + far layers rendered from
        // the same viewpoint must reassemble the whole-BE frame (up to the
        // occlusion approximation at the cutoff boundary).
        let spec = GameSpec::for_game(GameId::Fps);
        let scene = spec.build_scene(1);
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let full = r.render_panorama(&scene, eye, RenderFilter::All);
        for cutoff in [4.0, 10.0, 25.0] {
            let near = r.render_panorama(&scene, eye, RenderFilter::NearOnly { cutoff });
            let far = r.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff });
            let merged = merge(&near, &far);
            let s = ssim(&merged, &full.frame);
            assert!(
                s > 0.97,
                "cutoff {cutoff}: merged frame diverges from full render (SSIM {s:.4})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_layers_panic() {
        let a = Panorama {
            frame: LumaFrame::new(4, 4),
            mask: vec![0; 16],
        };
        let b = Panorama {
            frame: LumaFrame::new(5, 4),
            mask: vec![0; 20],
        };
        let _ = merge(&a, &b);
    }

    #[test]
    fn merge_of_complementary_layers_has_no_black_holes() {
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(3);
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let near = r.render_panorama(&scene, eye, RenderFilter::NearOnly { cutoff: 8.0 });
        let far = r.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff: 8.0 });
        let merged = merge(&near, &far);
        // A fully void pixel would be exactly 0.0; the sky/ground/fog make
        // true zeros vanishingly unlikely in a composited frame.
        let zeros = merged.data().iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 0, "merged frame has {zeros} uncovered pixels");
    }
}
