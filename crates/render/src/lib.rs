//! # coterie-render
//!
//! Software panoramic renderer for the Coterie reproduction.
//!
//! The paper's clients and server render with Unity; this crate replaces
//! that with a compact equirectangular rasterizer whose projection is the
//! real thing: objects subtend solid angles inversely proportional to
//! distance ("Perspective Projection ... converts faraway objects to be
//! viewed smaller and the nearby objects to be viewed larger", §4.2).
//! Consequently the paper's central observation — the *near-object
//! effect*, where a small viewpoint displacement of a near object changes
//! many more pixels than the same displacement of a far object — emerges
//! from geometry here rather than being assumed.
//!
//! The renderer supports the near/far BE split at the heart of Coterie:
//! a [`RenderFilter`] restricts rendering to objects (and ground) inside
//! or outside a cutoff radius, producing the near-BE and far-BE layers
//! that are later composited by [`merge`].
//!
//! # Example
//!
//! ```
//! use coterie_render::{Renderer, RenderFilter};
//! use coterie_world::{GameId, GameSpec};
//!
//! let spec = GameSpec::for_game(GameId::Fps);
//! let scene = spec.build_scene(1);
//! let renderer = Renderer::default();
//! let eye = scene.eye(scene.bounds().center());
//! let pano = renderer.render_panorama(&scene, eye, RenderFilter::All);
//! assert_eq!(pano.frame.width(), 256);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fov;
pub mod merge;
pub mod panorama;
pub mod stereo;

pub use fov::FovOptions;
pub use merge::{merge, merge_with_simd};
pub use panorama::{Panorama, RenderFilter, RenderOptions, Renderer};
pub use stereo::{StereoOptions, StereoPair};
