//! Field-of-view cropping from panoramic frames.
//!
//! Furion and Coterie prefetch *panoramic* frames so that any head
//! orientation at a grid point can be served "at almost no cost or delay"
//! (§2.2): the client crops the panorama to the current FoV instead of
//! requesting a new render. This module implements that crop as a
//! perspective resampling of the equirectangular image.

use coterie_frame::LumaFrame;
use coterie_world::Vec3;
use serde::{Deserialize, Serialize};

/// Perspective-crop parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FovOptions {
    /// Output width in pixels.
    pub width: u32,
    /// Output height in pixels.
    pub height: u32,
    /// Horizontal field of view in radians.
    pub hfov: f64,
}

impl Default for FovOptions {
    /// A Daydream-like viewport: 100° horizontal FoV at 16:9.
    fn default() -> Self {
        FovOptions {
            width: 160,
            height: 90,
            hfov: 100.0_f64.to_radians(),
        }
    }
}

impl FovOptions {
    /// Vertical field of view implied by the aspect ratio.
    pub fn vfov(&self) -> f64 {
        2.0 * ((self.hfov / 2.0).tan() * self.height as f64 / self.width as f64).atan()
    }

    /// Crops a perspective view with the given yaw/pitch (radians) out of
    /// an equirectangular panorama, bilinearly resampled.
    ///
    /// # Panics
    ///
    /// Panics if `hfov` is not in `(0, π)`.
    pub fn crop(&self, pano: &LumaFrame, yaw: f64, pitch: f64) -> LumaFrame {
        assert!(
            self.hfov > 0.0 && self.hfov < std::f64::consts::PI,
            "hfov must be in (0, pi)"
        );
        let half_w = (self.hfov / 2.0).tan();
        let half_h = half_w * self.height as f64 / self.width as f64;
        // Camera basis: forward from yaw/pitch; up is world-up projected.
        let (sy, cy) = yaw.sin_cos();
        let (sp, cp) = pitch.sin_cos();
        let forward = Vec3::new(sy * cp, sp, cy * cp);
        let right = Vec3::new(cy, 0.0, -sy);
        let up = right.cross(forward).normalized();

        let pw = pano.width() as f64;
        let ph = pano.height() as f64;
        LumaFrame::from_fn(self.width, self.height, |x, y| {
            let u = ((x as f64 + 0.5) / self.width as f64 * 2.0 - 1.0) * half_w;
            let v = (1.0 - (y as f64 + 0.5) / self.height as f64 * 2.0) * half_h;
            let dir = (forward + right * u + up * v).normalized();
            let azimuth = dir.x.atan2(dir.z);
            let elevation = dir.y.asin();
            let fx = (azimuth + std::f64::consts::PI) / std::f64::consts::TAU * pw - 0.5;
            let fy = (std::f64::consts::FRAC_PI_2 - elevation) / std::f64::consts::PI * ph - 0.5;
            pano.sample_bilinear(fx as f32, fy as f32)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_pano() -> LumaFrame {
        // Luma encodes azimuth so we can verify which part of the pano a
        // crop samples.
        LumaFrame::from_fn(256, 128, |x, _| x as f32 / 255.0)
    }

    #[test]
    fn crop_dimensions_match_options() {
        let opts = FovOptions::default();
        let out = opts.crop(&gradient_pano(), 0.0, 0.0);
        assert_eq!(out.width(), opts.width);
        assert_eq!(out.height(), opts.height);
    }

    #[test]
    fn forward_crop_samples_pano_center() {
        let opts = FovOptions::default();
        let out = opts.crop(&gradient_pano(), 0.0, 0.0);
        // Yaw 0 looks along +z = azimuth 0 = pano center column.
        let mid = out.get(opts.width / 2, opts.height / 2);
        assert!((mid - 0.5).abs() < 0.02, "center luma {mid}");
    }

    #[test]
    fn yaw_rotation_shifts_sampled_region() {
        let opts = FovOptions::default();
        let left = opts.crop(&gradient_pano(), -1.0, 0.0);
        let right = opts.crop(&gradient_pano(), 1.0, 0.0);
        let l = left.get(opts.width / 2, opts.height / 2);
        let r = right.get(opts.width / 2, opts.height / 2);
        assert!(l < 0.5 && r > 0.5, "yaw must pan the crop: l={l} r={r}");
    }

    #[test]
    fn pitch_up_samples_upper_rows() {
        let pano = LumaFrame::from_fn(256, 128, |_, y| y as f32 / 127.0);
        let opts = FovOptions::default();
        let level = opts.crop(&pano, 0.0, 0.0);
        let up = opts.crop(&pano, 0.0, 0.6);
        let c_level = level.get(opts.width / 2, opts.height / 2);
        let c_up = up.get(opts.width / 2, opts.height / 2);
        assert!(
            c_up < c_level,
            "pitching up should sample smaller y: {c_up} vs {c_level}"
        );
    }

    #[test]
    fn any_orientation_stays_in_range() {
        let pano = gradient_pano();
        let opts = FovOptions {
            width: 64,
            height: 36,
            hfov: 1.8,
        };
        for i in 0..12 {
            let yaw = i as f64 * 0.55 - 3.0;
            let pitch = (i as f64 * 0.2 - 1.0).clamp(-1.3, 1.3);
            let out = opts.crop(&pano, yaw, pitch);
            for &v in out.data() {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn vfov_smaller_than_hfov_for_wide_aspect() {
        let opts = FovOptions::default();
        assert!(opts.vfov() < opts.hfov);
    }

    #[test]
    #[should_panic(expected = "hfov must be in")]
    fn invalid_hfov_rejected() {
        let opts = FovOptions {
            width: 8,
            height: 8,
            hfov: 4.0,
        };
        let _ = opts.crop(&gradient_pano(), 0.0, 0.0);
    }

    #[test]
    fn crop_is_deterministic() {
        let opts = FovOptions::default();
        let a = opts.crop(&gradient_pano(), 0.3, -0.1);
        let b = opts.crop(&gradient_pano(), 0.3, -0.1);
        assert_eq!(a, b);
    }
}
