//! Equirectangular panorama rendering with near/far filtering.

use coterie_frame::LumaFrame;
use coterie_world::noise::value_noise;
use coterie_world::{ObjectKind, Scene, SceneObject, Vec3};
use serde::{Deserialize, Serialize};

/// Restricts which part of the background environment is rendered.
///
/// Coterie splits the BE at a *cutoff radius*: objects within the radius
/// are the near BE (rendered on the phone), objects outside are the far
/// BE (pre-rendered on the server and prefetched) — Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RenderFilter {
    /// Render everything (whole BE — the Furion/Multi-Furion baseline and
    /// the ground-truth frame).
    All,
    /// Render only content within the cutoff radius (near BE).
    NearOnly {
        /// Cutoff radius in meters.
        cutoff: f64,
    },
    /// Render only content outside the cutoff radius (far BE), leaving a
    /// void inside the radius to be filled by the locally rendered near
    /// BE at merge time.
    FarOnly {
        /// Cutoff radius in meters.
        cutoff: f64,
    },
}

impl RenderFilter {
    /// Whether content at ground distance `d` from the eye is included.
    #[inline]
    pub fn includes(&self, d: f64) -> bool {
        match *self {
            RenderFilter::All => true,
            RenderFilter::NearOnly { cutoff } => d < cutoff,
            RenderFilter::FarOnly { cutoff } => d >= cutoff,
        }
    }

    /// The sky is part of the far BE (it is infinitely far away).
    #[inline]
    fn includes_sky(&self) -> bool {
        !matches!(self, RenderFilter::NearOnly { .. })
    }
}

/// Renderer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenderOptions {
    /// Panorama width in pixels (one full turn of azimuth).
    pub width: u32,
    /// Panorama height in pixels (zenith to nadir).
    pub height: u32,
    /// Maximum object/ground render distance in meters (view culling).
    pub render_distance: f64,
    /// Fog half-distance in meters: scene luma blends toward the horizon
    /// value with `exp(-distance / fog_distance)`.
    pub fog_distance: f64,
    /// Luma the fog converges to.
    pub fog_luma: f32,
    /// Objects whose angular diameter falls below this many pixels are
    /// culled (they could not change any pixel).
    pub min_pixel_size: f64,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 256,
            height: 128,
            render_distance: 400.0,
            fog_distance: 90.0,
            fog_luma: 0.72,
            min_pixel_size: 0.5,
        }
    }
}

impl RenderOptions {
    /// A reduced-resolution profile for bulk similarity sweeps.
    pub fn fast() -> Self {
        RenderOptions {
            width: 192,
            height: 96,
            ..Default::default()
        }
    }
}

/// A rendered panorama: luma plus per-pixel coverage.
///
/// `mask[i] != 0` where the filter actually rendered content; void pixels
/// (e.g. the inside of the cutoff radius in a far-BE frame) carry mask 0
/// and are filled from the other layer at merge time.
#[derive(Debug, Clone, PartialEq)]
pub struct Panorama {
    /// Rendered luma.
    pub frame: LumaFrame,
    /// Per-pixel coverage flags, row-major, same size as `frame`.
    pub mask: Vec<u8>,
}

impl Panorama {
    /// Fraction of pixels covered by the rendered layer.
    pub fn coverage(&self) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        self.mask.iter().filter(|&&m| m != 0).count() as f64 / self.mask.len() as f64
    }
}

/// The software panoramic renderer.
#[derive(Debug, Clone, Default)]
pub struct Renderer {
    opts: RenderOptions,
}

impl Renderer {
    /// Creates a renderer with explicit options.
    pub fn new(opts: RenderOptions) -> Self {
        Renderer { opts }
    }

    /// Renderer options.
    pub fn options(&self) -> &RenderOptions {
        &self.opts
    }

    /// Renders the background environment seen from `eye`, restricted by
    /// `filter`.
    pub fn render_panorama(&self, scene: &Scene, eye: Vec3, filter: RenderFilter) -> Panorama {
        self.render_panorama_with(scene, eye, filter, &[])
    }

    /// Renders the BE plus extra dynamic objects (foreground interactions:
    /// avatars, cars). FI objects are always rendered regardless of the
    /// distance filter, mirroring Coterie's architecture where FI is
    /// always drawn locally.
    pub fn render_panorama_with(
        &self,
        scene: &Scene,
        eye: Vec3,
        filter: RenderFilter,
        fi_objects: &[SceneObject],
    ) -> Panorama {
        let w = self.opts.width;
        let h = self.opts.height;
        let mut frame = LumaFrame::new(w, h);
        let mut mask = vec![0u8; (w * h) as usize];
        let mut depth = vec![f32::INFINITY; (w * h) as usize];

        self.paint_background(scene, eye, filter, &mut frame, &mut mask, &mut depth);

        // Static BE objects, filtered by the cutoff.
        for obj in scene.objects_within(eye.ground(), self.opts.render_distance) {
            let d = obj.ground_distance(eye);
            if !filter.includes(d) {
                continue;
            }
            self.paint_object(obj, eye, &mut frame, &mut mask, &mut depth);
        }
        // FI objects are never filtered.
        for obj in fi_objects {
            if obj.ground_distance(eye) <= self.opts.render_distance {
                self.paint_object(obj, eye, &mut frame, &mut mask, &mut depth);
            }
        }
        Panorama { frame, mask }
    }

    /// Direction of the panorama pixel center `(px, py)`.
    #[inline]
    fn pixel_dir(&self, px: u32, py: u32) -> Vec3 {
        let azimuth = ((px as f64 + 0.5) / self.opts.width as f64) * std::f64::consts::TAU
            - std::f64::consts::PI;
        let elevation = std::f64::consts::FRAC_PI_2
            - ((py as f64 + 0.5) / self.opts.height as f64) * std::f64::consts::PI;
        let (sa, ca) = azimuth.sin_cos();
        let (se, ce) = elevation.sin_cos();
        Vec3::new(sa * ce, se, ca * ce)
    }

    /// Pixel coordinates of a world direction; returns fractional
    /// `(x, y)`.
    #[inline]
    fn dir_to_pixel(&self, dir: Vec3) -> (f64, f64) {
        let azimuth = dir.x.atan2(dir.z);
        let elevation = (dir.y / dir.length().max(1e-12)).asin();
        let x = (azimuth + std::f64::consts::PI) / std::f64::consts::TAU * self.opts.width as f64;
        let y = (std::f64::consts::FRAC_PI_2 - elevation) / std::f64::consts::PI
            * self.opts.height as f64;
        (x, y)
    }

    fn fog(&self, base: f32, dist: f64) -> f32 {
        let k = (-dist / self.opts.fog_distance).exp() as f32;
        base * k + self.opts.fog_luma * (1.0 - k)
    }

    fn paint_background(
        &self,
        scene: &Scene,
        eye: Vec3,
        filter: RenderFilter,
        frame: &mut LumaFrame,
        mask: &mut [u8],
        depth: &mut [f32],
    ) {
        let w = self.opts.width;
        let h = self.opts.height;
        let terrain = scene.terrain();
        let local_ground = terrain.height(eye.ground());
        let eye_above = (eye.y - local_ground).max(0.2);
        let include_sky = filter.includes_sky();
        let mountain_seed = 0x304E_7411u64;

        for py in 0..h {
            for px in 0..w {
                let dir = self.pixel_dir(px, py);
                let idx = (py * w + px) as usize;
                if dir.y >= -1e-4 {
                    // Sky or distant mountain silhouette: both at infinite
                    // distance, part of the far BE.
                    if !include_sky {
                        continue;
                    }
                    let azimuth = dir.x.atan2(dir.z);
                    let elevation = dir.y.asin();
                    let ridge = 0.02
                        + 0.06 * value_noise(mountain_seed, azimuth * 2.2 + 9.0, 0.0)
                        + 0.03 * value_noise(mountain_seed ^ 1, azimuth * 7.0, 0.3);
                    let v = if elevation < ridge {
                        // Mountain band.
                        (0.45
                            + 0.12
                                * value_noise(mountain_seed ^ 2, azimuth * 5.0, elevation * 30.0))
                            as f32
                    } else {
                        // Sky gradient with faint clouds.
                        let t = (elevation / std::f64::consts::FRAC_PI_2).clamp(0.0, 1.0);
                        (0.80
                            + 0.12 * t
                            + 0.05 * value_noise(mountain_seed ^ 3, azimuth * 3.0, elevation * 6.0))
                            as f32
                    };
                    frame.set(px, py, v);
                    mask[idx] = 1;
                    depth[idx] = f32::INFINITY;
                } else {
                    // Ground: intersect the local ground plane, then shade
                    // from the terrain albedo at the hit point. This gives
                    // true ground parallax — the near ground texture
                    // streams past a moving viewpoint, far ground barely
                    // moves.
                    let t = eye_above / (-dir.y);
                    if t > self.opts.render_distance {
                        if !include_sky {
                            continue;
                        }
                        // Beyond the render distance the ground fades into
                        // fog (treated as far BE).
                        frame.set(px, py, self.opts.fog_luma);
                        mask[idx] = 1;
                        depth[idx] = self.opts.render_distance as f32;
                        continue;
                    }
                    // The cutoff radius is horizontal (Figure 4), so the
                    // filter tests the ground-plane distance of the hit.
                    let ground_dist = t * dir.ground().length();
                    if !filter.includes(ground_dist) {
                        continue;
                    }
                    let hit = eye + dir * t;
                    let albedo = terrain.albedo(hit.ground()) as f32;
                    // Slope shading from the terrain normal.
                    let n = terrain.normal(hit.ground());
                    let light = Vec3::new(0.35, 0.85, 0.40).normalized();
                    let lambert = n.dot(light).max(0.0) as f32;
                    let v = self.fog(albedo * (0.45 + 0.55 * lambert), t);
                    frame.set(px, py, v);
                    mask[idx] = 1;
                    depth[idx] = t as f32;
                }
            }
        }
    }

    fn paint_object(
        &self,
        obj: &SceneObject,
        eye: Vec3,
        frame: &mut LumaFrame,
        mask: &mut [u8],
        depth: &mut [f32],
    ) {
        let w = self.opts.width as i64;
        let h = self.opts.height as i64;
        let center = obj.center();
        let v = center - eye;
        let dist = v.length();
        if dist < 1e-6 {
            return;
        }
        // Angular extents.
        let (half_width_ang, base_elev, top_elev) = match obj.kind {
            ObjectKind::Sphere => {
                let a = (obj.radius / dist).min(1.0).asin();
                let ce = (v.y / dist).asin();
                (a, ce - a, ce + a)
            }
            ObjectKind::Cylinder | ObjectKind::Box => {
                let ground_dist = v.ground().length().max(1e-6);
                let widen = if obj.kind == ObjectKind::Box {
                    1.3
                } else {
                    1.0
                };
                let a = ((obj.radius * widen / ground_dist).min(1.0)).asin();
                let base = (obj.position.y - eye.y).atan2(ground_dist);
                let top = (obj.position.y + obj.height - eye.y).atan2(ground_dist);
                (a, base, top)
            }
        };
        // Angular diameter in pixels; cull sub-pixel specks.
        let px_per_rad = self.opts.width as f64 / std::f64::consts::TAU;
        if 2.0 * half_width_ang * px_per_rad < self.opts.min_pixel_size {
            return;
        }

        let center_azimuth = v.x.atan2(v.z);
        let cos_mid = ((base_elev + top_elev) * 0.5).cos().abs().max(0.05);
        let half_w_px = (half_width_ang / cos_mid * px_per_rad).ceil() as i64 + 1;
        let (_, cy) = self.dir_to_pixel(v);
        let py_top = ((std::f64::consts::FRAC_PI_2 - top_elev) / std::f64::consts::PI
            * self.opts.height as f64)
            .floor() as i64
            - 1;
        let py_bot = ((std::f64::consts::FRAC_PI_2 - base_elev) / std::f64::consts::PI
            * self.opts.height as f64)
            .ceil() as i64
            + 1;
        let cx = (center_azimuth + std::f64::consts::PI) / std::f64::consts::TAU
            * self.opts.width as f64;
        let _ = cy;

        let tex_scale = 14.0;
        for py in py_top.max(0)..=py_bot.min(h - 1) {
            for dxi in -half_w_px..=half_w_px {
                let px = (cx as i64 + dxi).rem_euclid(w);
                let dir = self.pixel_dir(px as u32, py as u32);
                let hit = match obj.kind {
                    ObjectKind::Sphere => {
                        let cosang = dir.dot(v) / dist;
                        cosang >= half_width_ang.cos()
                    }
                    ObjectKind::Cylinder | ObjectKind::Box => {
                        let azimuth = dir.x.atan2(dir.z);
                        let mut da = azimuth - center_azimuth;
                        while da > std::f64::consts::PI {
                            da -= std::f64::consts::TAU;
                        }
                        while da < -std::f64::consts::PI {
                            da += std::f64::consts::TAU;
                        }
                        let elevation = dir.y.asin();
                        da.abs() <= half_width_ang && (base_elev..=top_elev).contains(&elevation)
                    }
                };
                if !hit {
                    continue;
                }
                let idx = (py as u32 * self.opts.width + px as u32) as usize;
                if depth[idx] <= dist as f32 {
                    continue;
                }
                // World-anchored-ish texture: parameterize by the viewing
                // direction relative to the object center. Far objects see
                // a stable parameterization; near objects' texture slides
                // quickly with viewpoint — amplifying the near-object
                // effect exactly as real parallax does.
                let rel = (dir * dist - v) / obj.bounding_radius().max(1e-6);
                let tex = value_noise(
                    obj.texture_seed,
                    (rel.x + rel.y * 0.7) * tex_scale,
                    (rel.z - rel.y * 0.4) * tex_scale,
                );
                let shade = (obj.albedo * (0.55 + 0.45 * tex)) as f32;
                frame.set(px as u32, py as u32, self.fog(shade, dist));
                mask[idx] = 1;
                depth[idx] = dist as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_world::{GameCatalog, GameId, GameSpec, Vec2};

    fn fps_scene() -> (Scene, GameSpec) {
        let spec = GameSpec::for_game(GameId::Fps);
        (spec.build_scene(1), spec)
    }

    #[test]
    fn full_render_covers_every_pixel() {
        let (scene, _) = fps_scene();
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let pano = r.render_panorama(&scene, eye, RenderFilter::All);
        assert_eq!(pano.coverage(), 1.0);
    }

    #[test]
    fn near_and_far_partition_coverage() {
        let (scene, _) = fps_scene();
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let cutoff = 10.0;
        let near = r.render_panorama(&scene, eye, RenderFilter::NearOnly { cutoff });
        let far = r.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff });
        // Every pixel is covered by at least one layer, and the near layer
        // is a strict subset.
        for i in 0..near.mask.len() {
            assert!(near.mask[i] != 0 || far.mask[i] != 0, "hole at {i}");
        }
        assert!(near.coverage() > 0.0);
        assert!(near.coverage() < 1.0);
        assert!(far.coverage() < 1.0);
    }

    #[test]
    fn sky_is_far_be() {
        let (scene, _) = fps_scene();
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let near = r.render_panorama(&scene, eye, RenderFilter::NearOnly { cutoff: 5.0 });
        // Top row is sky: never part of near BE.
        for px in 0..r.options().width {
            assert_eq!(near.mask[px as usize], 0);
        }
        let far = r.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff: 5.0 });
        for px in 0..r.options().width {
            assert_eq!(far.mask[px as usize], 1);
        }
    }

    #[test]
    fn renders_are_deterministic() {
        let (scene, _) = fps_scene();
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let a = r.render_panorama(&scene, eye, RenderFilter::All);
        let b = r.render_panorama(&scene, eye, RenderFilter::All);
        assert_eq!(a, b);
    }

    #[test]
    fn near_object_effect_emerges_from_projection() {
        // The decisive property (Figure 3 / §4.2): moving the viewpoint
        // slightly must change far-BE frames much less than whole-BE
        // frames when near objects exist.
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(7);
        let r = Renderer::default();
        // Find a location with nearby objects.
        let mut probe = scene.bounds().center();
        'search: for i in 0..400 {
            let p = Vec2::new(10.0 + (i % 20) as f64 * 8.5, 10.0 + (i / 20) as f64 * 5.5);
            if scene.bounds().contains(p) && scene.triangles_within(p, 6.0) > 20_000 {
                probe = p;
                break 'search;
            }
        }
        let eye_a = scene.eye(probe);
        let eye_b = scene.eye(probe + Vec2::new(0.5, 0.0));
        let whole_a = r.render_panorama(&scene, eye_a, RenderFilter::All);
        let whole_b = r.render_panorama(&scene, eye_b, RenderFilter::All);
        let far_a = r.render_panorama(&scene, eye_a, RenderFilter::FarOnly { cutoff: 12.0 });
        let far_b = r.render_panorama(&scene, eye_b, RenderFilter::FarOnly { cutoff: 12.0 });
        let s_whole = coterie_frame::ssim(&whole_a.frame, &whole_b.frame);
        let s_far = coterie_frame::ssim(&far_a.frame, &far_b.frame);
        assert!(
            s_far > s_whole,
            "far-BE similarity ({s_far:.3}) must exceed whole-BE similarity ({s_whole:.3})"
        );
    }

    #[test]
    fn larger_cutoff_increases_far_similarity() {
        // Figure 5: SSIM between adjacent far-BE frames increases
        // monotonically (in trend) with the cutoff radius.
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(7);
        let r = Renderer::default();
        let p = scene.bounds().center();
        let eye_a = scene.eye(p);
        let eye_b = scene.eye(p + Vec2::new(0.4, 0.0));
        let mut last = -1.0;
        let mut increases = 0;
        let cutoffs = [0.0, 2.0, 6.0, 16.0];
        for &c in &cutoffs {
            let a = r.render_panorama(&scene, eye_a, RenderFilter::FarOnly { cutoff: c });
            let b = r.render_panorama(&scene, eye_b, RenderFilter::FarOnly { cutoff: c });
            let s = coterie_frame::ssim(&a.frame, &b.frame);
            if s >= last {
                increases += 1;
            }
            last = s;
        }
        assert!(increases >= 3, "similarity should rise with cutoff");
    }

    #[test]
    fn fi_objects_render_regardless_of_filter() {
        let (scene, _) = fps_scene();
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let avatar = SceneObject {
            id: coterie_world::ObjectId(u32::MAX),
            position: (eye.ground() + Vec2::new(2.0, 2.0)).with_y(0.0),
            radius: 0.5,
            height: 1.8,
            triangles: 5000,
            albedo: 0.95,
            kind: ObjectKind::Cylinder,
            texture_seed: 1,
        };
        let without = r.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff: 50.0 });
        let with = r.render_panorama_with(
            &scene,
            eye,
            RenderFilter::FarOnly { cutoff: 50.0 },
            std::slice::from_ref(&avatar),
        );
        assert_ne!(without.frame, with.frame, "FI avatar must appear");
    }

    #[test]
    fn every_game_renders_without_panic() {
        let r = Renderer::new(RenderOptions::fast());
        for spec in GameCatalog::all() {
            let scene = spec.build_scene(3);
            let eye = scene.eye(scene.bounds().center());
            let pano = r.render_panorama(&scene, eye, RenderFilter::All);
            assert_eq!(pano.coverage(), 1.0, "{}", spec.id);
            let mean = pano.frame.mean();
            assert!(
                (0.05..0.95).contains(&mean),
                "{}: implausible mean luma {mean}",
                spec.id
            );
        }
    }

    #[test]
    fn pixel_dir_roundtrip() {
        let r = Renderer::default();
        for &(px, py) in &[(0u32, 0u32), (100, 60), (255, 127), (128, 64)] {
            let dir = r.pixel_dir(px, py);
            assert!((dir.length() - 1.0).abs() < 1e-9);
            let (x, y) = r.dir_to_pixel(dir);
            assert!((x - (px as f64 + 0.5)).abs() < 0.51, "px {px} -> {x}");
            assert!((y - (py as f64 + 0.5)).abs() < 0.51, "py {py} -> {y}");
        }
    }

    #[test]
    fn filter_includes_semantics() {
        assert!(RenderFilter::All.includes(1e9));
        let near = RenderFilter::NearOnly { cutoff: 5.0 };
        assert!(near.includes(4.9));
        assert!(!near.includes(5.0));
        let far = RenderFilter::FarOnly { cutoff: 5.0 };
        assert!(far.includes(5.0));
        assert!(!far.includes(4.9));
    }
}
