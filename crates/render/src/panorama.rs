//! Equirectangular panorama rendering with near/far filtering.
//!
//! # Hot-path design
//!
//! Rendering cost is the mobile-VR bottleneck the paper is built around
//! (§4.3), and every experiment in this repro funnels through this
//! rasterizer, so it is engineered as a hot kernel:
//!
//! * **Trig tables.** The pixel grid is fixed by [`RenderOptions`], so
//!   every per-pixel transcendental — the `sin_cos` pair behind each
//!   pixel's direction vector, the `atan2`/`asin` of the sky and object
//!   hit tests — is a function of the pixel's row/column alone. They are
//!   computed once per renderer (lazily, shared across clones) and every
//!   frame after that is table lookups plus arithmetic.
//! * **Row hoisting.** A pixel row shares one elevation, so the ground
//!   ray length, the fog attenuation `exp`, and the sky gradient are
//!   lifted out of the column loop.
//! * **Object binning.** Scene/FI objects are projected to their angular
//!   row/column spans once per frame ([`coterie_world::AngularExtent`])
//!   and only rasterized over the rows they can touch.
//! * **Band parallelism.** The panorama splits into horizontal bands
//!   that own disjoint `frame`/`mask`/`depth` slices; bands run on the
//!   shared [`coterie_parallel`] substrate. Rows are computed
//!   independently (background first, then objects in a fixed order), so
//!   output is bit-identical at any worker count — the golden-frame test
//!   pins this against the original scalar renderer's hashes.

use coterie_frame::LumaFrame;
use coterie_parallel::par_for_each;
use coterie_parallel::simd::{self, SimdLevel, SphereHit};
use coterie_telemetry::{Stage, TelemetrySink, TrackId, KERNEL_PID};
use coterie_world::noise::{value_noise, value_noise_cached, NoiseCellCache};
use coterie_world::{ObjectKind, Scene, SceneObject, Terrain, Vec3};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Restricts which part of the background environment is rendered.
///
/// Coterie splits the BE at a *cutoff radius*: objects within the radius
/// are the near BE (rendered on the phone), objects outside are the far
/// BE (pre-rendered on the server and prefetched) — Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RenderFilter {
    /// Render everything (whole BE — the Furion/Multi-Furion baseline and
    /// the ground-truth frame).
    All,
    /// Render only content within the cutoff radius (near BE).
    NearOnly {
        /// Cutoff radius in meters.
        cutoff: f64,
    },
    /// Render only content outside the cutoff radius (far BE), leaving a
    /// void inside the radius to be filled by the locally rendered near
    /// BE at merge time.
    FarOnly {
        /// Cutoff radius in meters.
        cutoff: f64,
    },
}

impl RenderFilter {
    /// Whether content at ground distance `d` from the eye is included.
    #[inline]
    pub fn includes(&self, d: f64) -> bool {
        match *self {
            RenderFilter::All => true,
            RenderFilter::NearOnly { cutoff } => d < cutoff,
            RenderFilter::FarOnly { cutoff } => d >= cutoff,
        }
    }

    /// The sky is part of the far BE (it is infinitely far away).
    #[inline]
    fn includes_sky(&self) -> bool {
        !matches!(self, RenderFilter::NearOnly { .. })
    }
}

/// Renderer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenderOptions {
    /// Panorama width in pixels (one full turn of azimuth).
    pub width: u32,
    /// Panorama height in pixels (zenith to nadir).
    pub height: u32,
    /// Maximum object/ground render distance in meters (view culling).
    pub render_distance: f64,
    /// Fog half-distance in meters: scene luma blends toward the horizon
    /// value with `exp(-distance / fog_distance)`.
    pub fog_distance: f64,
    /// Luma the fog converges to.
    pub fog_luma: f32,
    /// Objects whose angular diameter falls below this many pixels are
    /// culled (they could not change any pixel).
    pub min_pixel_size: f64,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 256,
            height: 128,
            render_distance: 400.0,
            fog_distance: 90.0,
            fog_luma: 0.72,
            min_pixel_size: 0.5,
        }
    }
}

impl RenderOptions {
    /// A reduced-resolution profile for bulk similarity sweeps.
    pub fn fast() -> Self {
        RenderOptions {
            width: 192,
            height: 96,
            ..Default::default()
        }
    }
}

/// A rendered panorama: luma plus per-pixel coverage.
///
/// `mask[i] != 0` where the filter actually rendered content; void pixels
/// (e.g. the inside of the cutoff radius in a far-BE frame) carry mask 0
/// and are filled from the other layer at merge time.
#[derive(Debug, Clone, PartialEq)]
pub struct Panorama {
    /// Rendered luma.
    pub frame: LumaFrame,
    /// Per-pixel coverage flags, row-major, same size as `frame`.
    pub mask: Vec<u8>,
}

impl Panorama {
    /// Fraction of pixels covered by the rendered layer.
    pub fn coverage(&self) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        self.mask.iter().filter(|&&m| m != 0).count() as f64 / self.mask.len() as f64
    }
}

/// Per-options trig tables (see the module docs).
///
/// Each entry reproduces, bit-exactly, the value the scalar renderer
/// computed per pixel: `col_*`/`row_*` are the `sin_cos` factors of
/// [`Renderer::pixel_dir`], `azimuth` is `dir.x.atan2(dir.z)` and
/// `elevation` is `dir.y.asin()`. The azimuth roundtrip picks up the
/// row's `cos(elevation)` factor in its low bits, so it is a full
/// per-pixel map rather than a per-column table; `elevation` depends on
/// the row alone.
#[derive(Debug)]
struct TrigTables {
    /// `sin(azimuth)` per column.
    col_sin: Vec<f64>,
    /// `cos(azimuth)` per column.
    col_cos: Vec<f64>,
    /// `sin(elevation)` per row (this is `dir.y`).
    row_sin: Vec<f64>,
    /// `cos(elevation)` per row.
    row_cos: Vec<f64>,
    /// `dir.x.atan2(dir.z)` per pixel, row-major.
    azimuth: Vec<f64>,
    /// `dir.y.asin()` per row.
    elevation: Vec<f64>,
}

impl TrigTables {
    fn build(opts: &RenderOptions) -> Self {
        let w = opts.width as usize;
        let h = opts.height as usize;
        let mut col_sin = Vec::with_capacity(w);
        let mut col_cos = Vec::with_capacity(w);
        for px in 0..w {
            let azimuth = ((px as f64 + 0.5) / opts.width as f64) * std::f64::consts::TAU
                - std::f64::consts::PI;
            let (sa, ca) = azimuth.sin_cos();
            col_sin.push(sa);
            col_cos.push(ca);
        }
        let mut row_sin = Vec::with_capacity(h);
        let mut row_cos = Vec::with_capacity(h);
        let mut elevation = Vec::with_capacity(h);
        for py in 0..h {
            let elev = std::f64::consts::FRAC_PI_2
                - ((py as f64 + 0.5) / opts.height as f64) * std::f64::consts::PI;
            let (se, ce) = elev.sin_cos();
            row_sin.push(se);
            row_cos.push(ce);
            elevation.push(se.asin());
        }
        let mut azimuth = Vec::with_capacity(w * h);
        for &ce in row_cos.iter().take(h) {
            for (&cs, &cc) in col_sin.iter().zip(&col_cos) {
                azimuth.push((cs * ce).atan2(cc * ce));
            }
        }
        TrigTables {
            col_sin,
            col_cos,
            row_sin,
            row_cos,
            azimuth,
            elevation,
        }
    }

    /// Direction of the pixel center `(px, py)` — the same products
    /// `pixel_dir` evaluates, with the `sin_cos` factors looked up.
    #[inline]
    fn dir(&self, px: usize, py: usize) -> Vec3 {
        let ce = self.row_cos[py];
        Vec3::new(
            self.col_sin[px] * ce,
            self.row_sin[py],
            self.col_cos[px] * ce,
        )
    }
}

/// One frame-binned paint job: an object plus its projected pixel spans
/// and every per-object quantity the scalar inner loop recomputed per
/// pixel (hit-test cosine, fog attenuation, texture normalization).
struct ObjectJob<'a> {
    obj: &'a SceneObject,
    /// Eye-to-center vector.
    v: Vec3,
    dist: f64,
    half_width: f64,
    /// `half_width.cos()` — the sphere hit-test threshold.
    cos_half_width: f64,
    base_elevation: f64,
    top_elevation: f64,
    center_azimuth: f64,
    /// Fractional center column.
    cx: f64,
    half_w_px: i64,
    /// Candidate row span (unclamped; bands clip it).
    py_top: i64,
    py_bot: i64,
    /// `exp(-dist / fog_distance) as f32`, hoisted out of the pixel loop.
    fog_k: f32,
    /// `bounding_radius().max(1e-6)` — texture-space normalization.
    bounding: f64,
}

/// A horizontal band owning disjoint slices of the output buffers.
struct Band<'a> {
    /// First row of the band.
    y0: usize,
    rows: usize,
    frame: &'a mut [f32],
    mask: &'a mut [u8],
    depth: &'a mut [f32],
    /// Per-band hit-mask scratch row (one byte per panorama column),
    /// reused across every object segment the band paints.
    scratch: Vec<u8>,
}

/// The software panoramic renderer.
#[derive(Debug, Clone)]
pub struct Renderer {
    opts: RenderOptions,
    /// Requested band-parallel worker count; `0`/`1` renders serially.
    workers: usize,
    /// Lazily built trig tables, shared across clones of this renderer.
    tables: OnceLock<Arc<TrigTables>>,
    /// Telemetry sink for per-band render spans; disabled (a single
    /// branch per band) unless installed with [`Renderer::with_telemetry`].
    telemetry: TelemetrySink,
    /// SIMD dispatch level for the hit-test/merge kernels. Every level
    /// replicates the scalar operation order exactly, so output is
    /// bit-identical at any setting (the golden-frame test pins this).
    simd: SimdLevel,
}

impl Default for Renderer {
    fn default() -> Self {
        Renderer {
            opts: RenderOptions::default(),
            workers: 0,
            tables: OnceLock::new(),
            telemetry: TelemetrySink::default(),
            simd: simd::detected_level(),
        }
    }
}

impl Renderer {
    /// Creates a renderer with explicit options.
    pub fn new(opts: RenderOptions) -> Self {
        Renderer {
            opts,
            workers: 1,
            tables: OnceLock::new(),
            telemetry: TelemetrySink::disabled(),
            simd: simd::detected_level(),
        }
    }

    /// Pins the SIMD dispatch level for the renderer's hit-test kernels
    /// (all levels produce bit-identical panoramas; useful for benches
    /// and the golden-frame parity test).
    pub fn with_simd_level(mut self, level: SimdLevel) -> Self {
        self.simd = level;
        self
    }

    /// Installs a telemetry sink: each rendered band emits one span on
    /// the kernel lane (wall-clock duration — bands are real compute,
    /// not simulated time).
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Sets the band-parallel worker count. The panorama is split into
    /// that many horizontal bands rendered concurrently on scoped
    /// threads; output is bit-identical at any count. Defaults to 1
    /// (serial) so nested parallelism — e.g. the pre-render farm mapping
    /// over frames — stays under the caller's control.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Renderer options.
    pub fn options(&self) -> &RenderOptions {
        &self.opts
    }

    /// Effective band-parallel worker count.
    pub fn workers(&self) -> usize {
        self.workers.max(1)
    }

    fn tables(&self) -> &Arc<TrigTables> {
        self.tables.get_or_init(|| {
            let t = Arc::new(TrigTables::build(&self.opts));
            // The tables must reproduce pixel_dir bit-for-bit; spot-check
            // the corners and center so a drifted formula fails fast.
            for &(px, py) in &[
                (0u32, 0u32),
                (self.opts.width - 1, 0),
                (0, self.opts.height - 1),
                (self.opts.width / 2, self.opts.height / 2),
            ] {
                debug_assert_eq!(
                    t.dir(px as usize, py as usize),
                    self.pixel_dir(px, py),
                    "trig table drifted from pixel_dir at ({px},{py})"
                );
            }
            t
        })
    }

    /// Renders the background environment seen from `eye`, restricted by
    /// `filter`.
    pub fn render_panorama(&self, scene: &Scene, eye: Vec3, filter: RenderFilter) -> Panorama {
        self.render_panorama_with(scene, eye, filter, &[])
    }

    /// Renders the BE plus extra dynamic objects (foreground interactions:
    /// avatars, cars). FI objects are always rendered regardless of the
    /// distance filter, mirroring Coterie's architecture where FI is
    /// always drawn locally.
    pub fn render_panorama_with(
        &self,
        scene: &Scene,
        eye: Vec3,
        filter: RenderFilter,
        fi_objects: &[SceneObject],
    ) -> Panorama {
        let w = self.opts.width;
        let h = self.opts.height;
        let tables = Arc::clone(self.tables());
        let mut frame = LumaFrame::new(w, h);
        let mut mask = vec![0u8; (w * h) as usize];
        let mut depth = vec![f32::INFINITY; (w * h) as usize];

        // Bin the frame's objects by angular span, preserving the scalar
        // renderer's paint order: filtered BE objects first, FI last.
        let mut jobs: Vec<ObjectJob<'_>> = Vec::new();
        for obj in scene.objects_within(eye.ground(), self.opts.render_distance) {
            let d = obj.ground_distance(eye);
            if !filter.includes(d) {
                continue;
            }
            if let Some(job) = self.object_job(obj, eye) {
                jobs.push(job);
            }
        }
        for obj in fi_objects {
            if obj.ground_distance(eye) <= self.opts.render_distance {
                if let Some(job) = self.object_job(obj, eye) {
                    jobs.push(job);
                }
            }
        }

        // Split the output buffers into per-band row ranges; every band
        // paints its rows completely (background, then objects clipped to
        // the band), so bands never touch each other's memory.
        let band_count = self.workers().min(h as usize).max(1);
        let rows_per_band = (h as usize).div_ceil(band_count);
        let mut bands: Vec<Band<'_>> = Vec::with_capacity(band_count);
        {
            let mut frame_rest = frame.data_mut();
            let mut mask_rest = mask.as_mut_slice();
            let mut depth_rest = depth.as_mut_slice();
            let mut y0 = 0usize;
            while y0 < h as usize {
                let rows = rows_per_band.min(h as usize - y0);
                let take = rows * w as usize;
                let (f_head, f_tail) = frame_rest.split_at_mut(take);
                let (m_head, m_tail) = mask_rest.split_at_mut(take);
                let (d_head, d_tail) = depth_rest.split_at_mut(take);
                frame_rest = f_tail;
                mask_rest = m_tail;
                depth_rest = d_tail;
                bands.push(Band {
                    y0,
                    rows,
                    frame: f_head,
                    mask: m_head,
                    depth: d_head,
                    scratch: vec![0u8; w as usize],
                });
                y0 += rows;
            }
        }
        par_for_each(bands, |mut band| {
            let started = self.telemetry.is_enabled().then(std::time::Instant::now);
            self.paint_background_band(scene, eye, filter, &tables, &mut band);
            let band_end = (band.y0 + band.rows) as i64;
            for job in &jobs {
                if job.py_bot < band.y0 as i64 || job.py_top >= band_end {
                    continue;
                }
                self.paint_object_band(job, &tables, &mut band);
            }
            if let Some(t0) = started {
                self.telemetry.span(
                    TrackId {
                        pid: KERNEL_PID,
                        tid: (band.y0 / rows_per_band) as u32,
                    },
                    Stage::Render,
                    "render-band",
                    self.telemetry.now_ms(),
                    t0.elapsed().as_secs_f64() * 1000.0,
                    0,
                );
            }
        });
        Panorama { frame, mask }
    }

    /// Direction of the panorama pixel center `(px, py)`.
    ///
    /// The table-driven fast path reproduces this exactly; it remains the
    /// readable reference definition (and the source of truth the tables
    /// are checked against).
    #[inline]
    fn pixel_dir(&self, px: u32, py: u32) -> Vec3 {
        let azimuth = ((px as f64 + 0.5) / self.opts.width as f64) * std::f64::consts::TAU
            - std::f64::consts::PI;
        let elevation = std::f64::consts::FRAC_PI_2
            - ((py as f64 + 0.5) / self.opts.height as f64) * std::f64::consts::PI;
        let (sa, ca) = azimuth.sin_cos();
        let (se, ce) = elevation.sin_cos();
        Vec3::new(sa * ce, se, ca * ce)
    }

    /// Pixel coordinates of a world direction; returns fractional
    /// `(x, y)`.
    #[inline]
    fn dir_to_pixel(&self, dir: Vec3) -> (f64, f64) {
        let azimuth = dir.x.atan2(dir.z);
        let elevation = (dir.y / dir.length().max(1e-12)).asin();
        let x = (azimuth + std::f64::consts::PI) / std::f64::consts::TAU * self.opts.width as f64;
        let y = (std::f64::consts::FRAC_PI_2 - elevation) / std::f64::consts::PI
            * self.opts.height as f64;
        (x, y)
    }

    /// Fog blend with a precomputed attenuation factor
    /// `k = exp(-dist / fog_distance) as f32`.
    #[inline]
    fn fog_apply(&self, base: f32, k: f32) -> f32 {
        base * k + self.opts.fog_luma * (1.0 - k)
    }

    fn fog_k(&self, dist: f64) -> f32 {
        (-dist / self.opts.fog_distance).exp() as f32
    }

    /// Projects an object to its pixel-space paint job, or `None` when
    /// it is degenerate or spans less than `min_pixel_size` pixels.
    fn object_job<'a>(&self, obj: &'a SceneObject, eye: Vec3) -> Option<ObjectJob<'a>> {
        let ext = obj.angular_extent(eye)?;
        // Angular diameter in pixels; cull sub-pixel specks.
        let px_per_rad = self.opts.width as f64 / std::f64::consts::TAU;
        if 2.0 * ext.half_width * px_per_rad < self.opts.min_pixel_size {
            return None;
        }
        let v = obj.center() - eye;
        let cos_mid = ((ext.base_elevation + ext.top_elevation) * 0.5)
            .cos()
            .abs()
            .max(0.05);
        let half_w_px = (ext.half_width / cos_mid * px_per_rad).ceil() as i64 + 1;
        let (cx, _) = self.dir_to_pixel(v);
        let py_top = ((std::f64::consts::FRAC_PI_2 - ext.top_elevation) / std::f64::consts::PI
            * self.opts.height as f64)
            .floor() as i64
            - 1;
        let py_bot = ((std::f64::consts::FRAC_PI_2 - ext.base_elevation) / std::f64::consts::PI
            * self.opts.height as f64)
            .ceil() as i64
            + 1;
        Some(ObjectJob {
            obj,
            v,
            dist: ext.distance,
            half_width: ext.half_width,
            cos_half_width: ext.half_width.cos(),
            base_elevation: ext.base_elevation,
            top_elevation: ext.top_elevation,
            center_azimuth: ext.center_azimuth,
            cx,
            half_w_px,
            py_top: py_top.max(0),
            py_bot: py_bot.min(self.opts.height as i64 - 1),
            fog_k: self.fog_k(ext.distance),
            bounding: obj.bounding_radius().max(1e-6),
        })
    }

    fn paint_background_band(
        &self,
        scene: &Scene,
        eye: Vec3,
        filter: RenderFilter,
        tables: &TrigTables,
        band: &mut Band<'_>,
    ) {
        let w = self.opts.width as usize;
        let terrain: &Terrain = scene.terrain();
        let local_ground = terrain.height(eye.ground());
        let eye_above = (eye.y - local_ground).max(0.2);
        let include_sky = filter.includes_sky();
        let mountain_seed = 0x304E_7411u64;
        // Hoisted: the scalar renderer rebuilt this unit vector per pixel.
        let light = Vec3::new(0.35, 0.85, 0.40).normalized();
        // Cell-cached noise: consecutive pixels share lattice cells, so
        // these skip nearly all hashing while returning identical values.
        let mut sampler = terrain.sampler();
        let mut ridge_broad = NoiseCellCache::new();
        let mut ridge_fine = NoiseCellCache::new();
        let mut mountain_tex = NoiseCellCache::new();
        let mut cloud_tex = NoiseCellCache::new();

        for row in 0..band.rows {
            let py = band.y0 + row;
            let se = tables.row_sin[py];
            let row_off = row * w;
            if se >= -1e-4 {
                // Sky or distant mountain silhouette: both at infinite
                // distance, part of the far BE. One elevation per row.
                if !include_sky {
                    continue;
                }
                let elevation = tables.elevation[py];
                let t = (elevation / std::f64::consts::FRAC_PI_2).clamp(0.0, 1.0);
                let sky_base = 0.80 + 0.12 * t;
                let az_row = &tables.azimuth[py * w..(py + 1) * w];
                for (px, &azimuth) in az_row.iter().enumerate() {
                    let ridge = 0.02
                        + 0.06
                            * value_noise_cached(
                                &mut ridge_broad,
                                mountain_seed,
                                azimuth * 2.2 + 9.0,
                                0.0,
                            )
                        + 0.03
                            * value_noise_cached(
                                &mut ridge_fine,
                                mountain_seed ^ 1,
                                azimuth * 7.0,
                                0.3,
                            );
                    let v = if elevation < ridge {
                        // Mountain band.
                        (0.45
                            + 0.12
                                * value_noise_cached(
                                    &mut mountain_tex,
                                    mountain_seed ^ 2,
                                    azimuth * 5.0,
                                    elevation * 30.0,
                                )) as f32
                    } else {
                        // Sky gradient with faint clouds.
                        (sky_base
                            + 0.05
                                * value_noise_cached(
                                    &mut cloud_tex,
                                    mountain_seed ^ 3,
                                    azimuth * 3.0,
                                    elevation * 6.0,
                                )) as f32
                    };
                    let idx = row_off + px;
                    band.frame[idx] = v.clamp(0.0, 1.0);
                    band.mask[idx] = 1;
                    band.depth[idx] = f32::INFINITY;
                }
            } else {
                // Ground: intersect the local ground plane, then shade
                // from the terrain albedo at the hit point. This gives
                // true ground parallax — the near ground texture
                // streams past a moving viewpoint, far ground barely
                // moves. The ray length `t` is shared by the whole row.
                let t = eye_above / (-se);
                if t > self.opts.render_distance {
                    if !include_sky {
                        continue;
                    }
                    // Beyond the render distance the ground fades into
                    // fog (treated as far BE): three row-wide fills
                    // instead of a per-pixel store loop.
                    let fog = self.opts.fog_luma.clamp(0.0, 1.0);
                    band.frame[row_off..row_off + w].fill(fog);
                    band.mask[row_off..row_off + w].fill(1);
                    band.depth[row_off..row_off + w].fill(self.opts.render_distance as f32);
                    continue;
                }
                let fog_k = self.fog_k(t);
                // The cutoff radius is horizontal (Figure 4), so the
                // filter tests the ground-plane distance of the hit. With
                // the `All` filter that distance is never consumed, so
                // skip computing it (a sqrt per pixel).
                let filtered = !matches!(filter, RenderFilter::All);
                for px in 0..w {
                    let dir = tables.dir(px, py);
                    if filtered {
                        let ground_dist = t * dir.ground().length();
                        if !filter.includes(ground_dist) {
                            continue;
                        }
                    }
                    let hit = eye + dir * t;
                    let albedo = sampler.albedo(hit.ground()) as f32;
                    // Slope shading from the terrain normal.
                    let n = sampler.normal(hit.ground());
                    let lambert = n.dot(light).max(0.0) as f32;
                    let v = self.fog_apply(albedo * (0.45 + 0.55 * lambert), fog_k);
                    let idx = row_off + px;
                    band.frame[idx] = v.clamp(0.0, 1.0);
                    band.mask[idx] = 1;
                    band.depth[idx] = t as f32;
                }
            }
        }
    }

    fn paint_object_band(&self, job: &ObjectJob<'_>, tables: &TrigTables, band: &mut Band<'_>) {
        let w = self.opts.width as i64;
        let wu = self.opts.width as usize;
        let band_end = (band.y0 + band.rows) as i64;
        // The column walk `(cx + dxi).rem_euclid(w)` over
        // `dxi in -half_w_px..=half_w_px` visits `span_len` pixels. When
        // the span is narrower than the panorama each column appears at
        // most once, as one or two contiguous segments (a wrap at the
        // seam), which is the shape the SIMD hit-test kernels need. A
        // span that laps the panorama revisits columns, so it keeps the
        // original scalar walk.
        let span_len = (2 * job.half_w_px + 1) as usize;
        for py in job.py_top.max(band.y0 as i64)..=job.py_bot.min(band_end - 1) {
            let pyu = py as usize;
            // The slab hit test's elevation half is row-constant; rows in
            // the conservative [py_top, py_bot] margin that miss it reject
            // every column, so skip them wholesale.
            if matches!(job.obj.kind, ObjectKind::Cylinder | ObjectKind::Box) {
                let elevation = tables.elevation[pyu];
                if !(job.base_elevation..=job.top_elevation).contains(&elevation) {
                    continue;
                }
            }
            let row_off = (pyu - band.y0) * wu;
            if span_len >= wu {
                for dxi in -job.half_w_px..=job.half_w_px {
                    let px = (job.cx as i64 + dxi).rem_euclid(w) as usize;
                    let dir = tables.dir(px, pyu);
                    let hit = match job.obj.kind {
                        ObjectKind::Sphere => {
                            let cosang = dir.dot(job.v) / job.dist;
                            cosang >= job.cos_half_width
                        }
                        ObjectKind::Cylinder | ObjectKind::Box => {
                            // Elevation containment already held for this
                            // row.
                            let azimuth = tables.azimuth[pyu * wu + px];
                            let mut da = azimuth - job.center_azimuth;
                            while da > std::f64::consts::PI {
                                da -= std::f64::consts::TAU;
                            }
                            while da < -std::f64::consts::PI {
                                da += std::f64::consts::TAU;
                            }
                            da.abs() <= job.half_width
                        }
                    };
                    if hit {
                        self.paint_object_pixel(job, tables, band, row_off, px, pyu);
                    }
                }
                continue;
            }
            let start = (job.cx as i64 - job.half_w_px).rem_euclid(w) as usize;
            let seg1 = span_len.min(wu - start);
            for (s0, len) in [(start, seg1), (0, span_len - seg1)] {
                if len == 0 {
                    continue;
                }
                {
                    let hits = &mut band.scratch[..len];
                    match job.obj.kind {
                        ObjectKind::Sphere => {
                            let p = SphereHit {
                                ce: tables.row_cos[pyu],
                                vx: job.v.x,
                                vz: job.v.z,
                                y_term: tables.row_sin[pyu] * job.v.y,
                                dist: job.dist,
                                cos_half_width: job.cos_half_width,
                            };
                            simd::sphere_hit_mask(
                                &tables.col_sin[s0..s0 + len],
                                &tables.col_cos[s0..s0 + len],
                                &p,
                                hits,
                                self.simd,
                            );
                        }
                        ObjectKind::Cylinder | ObjectKind::Box => {
                            // Elevation containment already held for this
                            // row; only the azimuthal slab remains.
                            let az0 = pyu * wu + s0;
                            simd::slab_hit_mask(
                                &tables.azimuth[az0..az0 + len],
                                job.center_azimuth,
                                job.half_width,
                                hits,
                                self.simd,
                            );
                        }
                    }
                }
                for i in 0..len {
                    if band.scratch[i] != 0 {
                        self.paint_object_pixel(job, tables, band, row_off, s0 + i, pyu);
                    }
                }
            }
        }
    }

    /// Shades one hit pixel: depth test, viewpoint-relative texture, fog.
    /// Shared by the scalar walk and the hit-mask paint loop.
    #[inline]
    fn paint_object_pixel(
        &self,
        job: &ObjectJob<'_>,
        tables: &TrigTables,
        band: &mut Band<'_>,
        row_off: usize,
        px: usize,
        pyu: usize,
    ) {
        let dist_f32 = job.dist as f32;
        let idx = row_off + px;
        if band.depth[idx] <= dist_f32 {
            return;
        }
        let dir = tables.dir(px, pyu);
        // World-anchored-ish texture: parameterize by the viewing
        // direction relative to the object center. Far objects see
        // a stable parameterization; near objects' texture slides
        // quickly with viewpoint — amplifying the near-object
        // effect exactly as real parallax does.
        let tex_scale = 14.0;
        let rel = (dir * job.dist - job.v) / job.bounding;
        let tex = value_noise(
            job.obj.texture_seed,
            (rel.x + rel.y * 0.7) * tex_scale,
            (rel.z - rel.y * 0.4) * tex_scale,
        );
        let shade = (job.obj.albedo * (0.55 + 0.45 * tex)) as f32;
        band.frame[idx] = self.fog_apply(shade, job.fog_k).clamp(0.0, 1.0);
        band.mask[idx] = 1;
        band.depth[idx] = dist_f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_world::{GameCatalog, GameId, GameSpec, Vec2};

    fn fps_scene() -> (Scene, GameSpec) {
        let spec = GameSpec::for_game(GameId::Fps);
        (spec.build_scene(1), spec)
    }

    #[test]
    fn full_render_covers_every_pixel() {
        let (scene, _) = fps_scene();
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let pano = r.render_panorama(&scene, eye, RenderFilter::All);
        assert_eq!(pano.coverage(), 1.0);
    }

    #[test]
    fn near_and_far_partition_coverage() {
        let (scene, _) = fps_scene();
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let cutoff = 10.0;
        let near = r.render_panorama(&scene, eye, RenderFilter::NearOnly { cutoff });
        let far = r.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff });
        // Every pixel is covered by at least one layer, and the near layer
        // is a strict subset.
        for i in 0..near.mask.len() {
            assert!(near.mask[i] != 0 || far.mask[i] != 0, "hole at {i}");
        }
        assert!(near.coverage() > 0.0);
        assert!(near.coverage() < 1.0);
        assert!(far.coverage() < 1.0);
    }

    #[test]
    fn sky_is_far_be() {
        let (scene, _) = fps_scene();
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let near = r.render_panorama(&scene, eye, RenderFilter::NearOnly { cutoff: 5.0 });
        // Top row is sky: never part of near BE.
        for px in 0..r.options().width {
            assert_eq!(near.mask[px as usize], 0);
        }
        let far = r.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff: 5.0 });
        for px in 0..r.options().width {
            assert_eq!(far.mask[px as usize], 1);
        }
    }

    #[test]
    fn renders_are_deterministic() {
        let (scene, _) = fps_scene();
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let a = r.render_panorama(&scene, eye, RenderFilter::All);
        let b = r.render_panorama(&scene, eye, RenderFilter::All);
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(7);
        let eye = scene.eye(scene.bounds().center());
        let serial = Renderer::default();
        let reference = serial.render_panorama(&scene, eye, RenderFilter::All);
        for workers in [2usize, 3, 8, 64] {
            let banded = Renderer::default().with_workers(workers);
            for filter in [
                RenderFilter::All,
                RenderFilter::NearOnly { cutoff: 10.0 },
                RenderFilter::FarOnly { cutoff: 10.0 },
            ] {
                let a = serial.render_panorama(&scene, eye, filter);
                let b = banded.render_panorama(&scene, eye, filter);
                assert_eq!(a, b, "filter {filter:?} diverged at {workers} workers");
            }
            let again = banded.render_panorama(&scene, eye, RenderFilter::All);
            assert_eq!(reference, again);
        }
    }

    #[test]
    fn near_object_effect_emerges_from_projection() {
        // The decisive property (Figure 3 / §4.2): moving the viewpoint
        // slightly must change far-BE frames much less than whole-BE
        // frames when near objects exist.
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(7);
        let r = Renderer::default();
        // Find a location with nearby objects.
        let mut probe = scene.bounds().center();
        'search: for i in 0..400 {
            let p = Vec2::new(10.0 + (i % 20) as f64 * 8.5, 10.0 + (i / 20) as f64 * 5.5);
            if scene.bounds().contains(p) && scene.triangles_within(p, 6.0) > 20_000 {
                probe = p;
                break 'search;
            }
        }
        let eye_a = scene.eye(probe);
        let eye_b = scene.eye(probe + Vec2::new(0.5, 0.0));
        let whole_a = r.render_panorama(&scene, eye_a, RenderFilter::All);
        let whole_b = r.render_panorama(&scene, eye_b, RenderFilter::All);
        let far_a = r.render_panorama(&scene, eye_a, RenderFilter::FarOnly { cutoff: 12.0 });
        let far_b = r.render_panorama(&scene, eye_b, RenderFilter::FarOnly { cutoff: 12.0 });
        let s_whole = coterie_frame::ssim(&whole_a.frame, &whole_b.frame);
        let s_far = coterie_frame::ssim(&far_a.frame, &far_b.frame);
        assert!(
            s_far > s_whole,
            "far-BE similarity ({s_far:.3}) must exceed whole-BE similarity ({s_whole:.3})"
        );
    }

    #[test]
    fn larger_cutoff_increases_far_similarity() {
        // Figure 5: SSIM between adjacent far-BE frames increases
        // monotonically (in trend) with the cutoff radius.
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(7);
        let r = Renderer::default();
        let p = scene.bounds().center();
        let eye_a = scene.eye(p);
        let eye_b = scene.eye(p + Vec2::new(0.4, 0.0));
        let mut last = -1.0;
        let mut increases = 0;
        let cutoffs = [0.0, 2.0, 6.0, 16.0];
        for &c in &cutoffs {
            let a = r.render_panorama(&scene, eye_a, RenderFilter::FarOnly { cutoff: c });
            let b = r.render_panorama(&scene, eye_b, RenderFilter::FarOnly { cutoff: c });
            let s = coterie_frame::ssim(&a.frame, &b.frame);
            if s >= last {
                increases += 1;
            }
            last = s;
        }
        assert!(increases >= 3, "similarity should rise with cutoff");
    }

    #[test]
    fn fi_objects_render_regardless_of_filter() {
        let (scene, _) = fps_scene();
        let r = Renderer::default();
        let eye = scene.eye(scene.bounds().center());
        let avatar = SceneObject {
            id: coterie_world::ObjectId(u32::MAX),
            position: (eye.ground() + Vec2::new(2.0, 2.0)).with_y(0.0),
            radius: 0.5,
            height: 1.8,
            triangles: 5000,
            albedo: 0.95,
            kind: ObjectKind::Cylinder,
            texture_seed: 1,
        };
        let without = r.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff: 50.0 });
        let with = r.render_panorama_with(
            &scene,
            eye,
            RenderFilter::FarOnly { cutoff: 50.0 },
            std::slice::from_ref(&avatar),
        );
        assert_ne!(without.frame, with.frame, "FI avatar must appear");
    }

    #[test]
    fn every_game_renders_without_panic() {
        let r = Renderer::new(RenderOptions::fast());
        for spec in GameCatalog::all() {
            let scene = spec.build_scene(3);
            let eye = scene.eye(scene.bounds().center());
            let pano = r.render_panorama(&scene, eye, RenderFilter::All);
            assert_eq!(pano.coverage(), 1.0, "{}", spec.id);
            let mean = pano.frame.mean();
            assert!(
                (0.05..0.95).contains(&mean),
                "{}: implausible mean luma {mean}",
                spec.id
            );
        }
    }

    #[test]
    fn pixel_dir_roundtrip() {
        let r = Renderer::default();
        for &(px, py) in &[(0u32, 0u32), (100, 60), (255, 127), (128, 64)] {
            let dir = r.pixel_dir(px, py);
            assert!((dir.length() - 1.0).abs() < 1e-9);
            let (x, y) = r.dir_to_pixel(dir);
            assert!((x - (px as f64 + 0.5)).abs() < 0.51, "px {px} -> {x}");
            assert!((y - (py as f64 + 0.5)).abs() < 0.51, "py {py} -> {y}");
        }
    }

    #[test]
    fn trig_tables_match_pixel_dir_everywhere() {
        let r = Renderer::default();
        let tables = r.tables();
        for py in 0..r.opts.height {
            for px in 0..r.opts.width {
                assert_eq!(
                    tables.dir(px as usize, py as usize),
                    r.pixel_dir(px, py),
                    "table dir drifted at ({px},{py})"
                );
            }
        }
        // The azimuth/elevation maps must be the exact roundtrips the
        // scalar hit tests computed.
        for py in (0..r.opts.height as usize).step_by(7) {
            for px in (0..r.opts.width as usize).step_by(11) {
                let dir = tables.dir(px, py);
                assert_eq!(tables.azimuth[py * r.opts.width as usize + px], {
                    dir.x.atan2(dir.z)
                });
                assert_eq!(tables.elevation[py], dir.y.asin());
            }
        }
    }

    #[test]
    fn filter_includes_semantics() {
        assert!(RenderFilter::All.includes(1e9));
        let near = RenderFilter::NearOnly { cutoff: 5.0 };
        assert!(near.includes(4.9));
        assert!(!near.includes(5.0));
        let far = RenderFilter::FarOnly { cutoff: 5.0 };
        assert!(far.includes(5.0));
        assert!(!far.includes(4.9));
    }
}
