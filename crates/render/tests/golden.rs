//! Golden-frame regression guard for the renderer hot path.
//!
//! The hashes below were produced by the scalar pre-optimization
//! renderer (per-pixel `sin_cos`/`atan2`/`asin`, no banding) at the
//! default 256×128 options. The optimized trig-table + band renderer
//! must reproduce every panorama byte-for-byte, at any worker count —
//! the determinism claim the band decomposition is built on.
//!
//! Regenerate with:
//! `cargo test -p coterie-render --test golden print_golden_hashes -- --ignored --nocapture`

use coterie_render::{Panorama, RenderFilter, RenderOptions, Renderer};
use coterie_world::{GameCatalog, GameId};

const SCENE_SEED: u64 = 3;
const CUTOFF: f64 = 10.0;

/// FNV-1a over the frame's f32 bit patterns followed by the mask bytes.
fn pano_hash(p: &Panorama) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    };
    for v in p.frame.data() {
        for b in v.to_bits().to_le_bytes() {
            eat(b);
        }
    }
    for &m in &p.mask {
        eat(m);
    }
    h
}

fn filters() -> [(&'static str, RenderFilter); 3] {
    [
        ("All", RenderFilter::All),
        ("NearOnly", RenderFilter::NearOnly { cutoff: CUTOFF }),
        ("FarOnly", RenderFilter::FarOnly { cutoff: CUTOFF }),
    ]
}

/// `(game, filter, hash)` captured from the pre-refactor scalar renderer.
const GOLDEN: &[(GameId, &str, u64)] = &[
    // GENERATED — do not edit by hand; see module docs.
    (GameId::RacingMountain, "All", 0xf45cc34594db6661),
    (GameId::RacingMountain, "NearOnly", 0x4a0aac9299030a8f),
    (GameId::RacingMountain, "FarOnly", 0x6eeae70730c80bdf),
    (GameId::Ds, "All", 0xa7bf866be01902be),
    (GameId::Ds, "NearOnly", 0x45c4b713e29d3cb4),
    (GameId::Ds, "FarOnly", 0x8c17273fd0a4510e),
    (GameId::VikingVillage, "All", 0x40bb6478764b42bc),
    (GameId::VikingVillage, "NearOnly", 0xf6a34fee02df0bbd),
    (GameId::VikingVillage, "FarOnly", 0xfa5471060fe09e85),
    (GameId::Cts, "All", 0xaf799805eedba03c),
    (GameId::Cts, "NearOnly", 0x3fe8d5ad374eedcc),
    (GameId::Cts, "FarOnly", 0x51c7277835b5f781),
    (GameId::Fps, "All", 0x684f67b12845e021),
    (GameId::Fps, "NearOnly", 0x8ee53c901564ae0b),
    (GameId::Fps, "FarOnly", 0xde1d53ffc5ce4d4b),
    (GameId::Soccer, "All", 0x5ea7b8a807d21192),
    (GameId::Soccer, "NearOnly", 0x6dc1e54f5df95da9),
    (GameId::Soccer, "FarOnly", 0x89e311bce5fbd88d),
    (GameId::Pool, "All", 0x92bb2428c9898d19),
    (GameId::Pool, "NearOnly", 0x2beb46f444076a72),
    (GameId::Pool, "FarOnly", 0x4b936d3914300831),
    (GameId::Bowling, "All", 0x8b49836185f56322),
    (GameId::Bowling, "NearOnly", 0xa42dff96439d6b37),
    (GameId::Bowling, "FarOnly", 0x4e4597a36fd10ee6),
    (GameId::Corridor, "All", 0x8acf63a590f620e9),
    (GameId::Corridor, "NearOnly", 0x7c8c49d651c4b77c),
    (GameId::Corridor, "FarOnly", 0x5c90ce89f66c980f),
];

#[test]
#[ignore = "generator: prints the GOLDEN table for this file"]
fn print_golden_hashes() {
    let renderer = Renderer::new(RenderOptions::default());
    for spec in GameCatalog::all() {
        let scene = spec.build_scene(SCENE_SEED);
        let eye = scene.eye(scene.bounds().center());
        for (name, filter) in filters() {
            let hash = pano_hash(&renderer.render_panorama(&scene, eye, filter));
            println!("    (GameId::{:?}, \"{name}\", 0x{hash:016x}),", spec.id);
        }
    }
}

#[test]
fn optimized_renderer_matches_scalar_golden_hashes() {
    for level in coterie_parallel::simd::available_levels() {
        for &workers in &[1usize, 2, 8] {
            let renderer = Renderer::new(RenderOptions::default())
                .with_workers(workers)
                .with_simd_level(level);
            for spec in GameCatalog::all() {
                let scene = spec.build_scene(SCENE_SEED);
                let eye = scene.eye(scene.bounds().center());
                for (name, filter) in filters() {
                    let pano = renderer.render_panorama(&scene, eye, filter);
                    let hash = pano_hash(&pano);
                    let expected = GOLDEN
                        .iter()
                        .find(|(g, f, _)| *g == spec.id && *f == name)
                        .map(|(_, _, h)| *h)
                        .unwrap_or_else(|| panic!("no golden entry for {:?}/{name}", spec.id));
                    assert_eq!(
                        hash, expected,
                        "{:?}/{name} diverged from the scalar renderer at {workers} workers ({level:?})",
                        spec.id
                    );
                }
            }
        }
    }
}
