//! # coterie-codec
//!
//! Intra-frame transform codec standing in for x264.
//!
//! The paper's server encodes pre-rendered panoramas with x264 (H.264,
//! Constant Rate Factor 25, fastdecode tuning, §5.1) and the phone
//! decodes them with the hardware `MediaCodec`. We cannot ship H.264, but
//! the experiments only need two properties of the codec, both of which a
//! real DCT transform codec provides and a byte-count formula would not:
//!
//! 1. **Content-dependent sizes** — far-BE frames (smooth, distant
//!    content) must compress better than whole-BE frames (detailed near
//!    content), which is what makes Coterie's prefetch traffic 2–3×
//!    smaller per frame (§7.2).
//! 2. **True lossy round-trips** — Table 7 measures SSIM *after*
//!    encode/decode; Coterie scores higher than Multi-Furion because only
//!    its far layer suffers codec loss. Our decoder reproduces that.
//!
//! The pipeline is the classic JPEG/H.264-intra shape: 8×8 blocks →
//! DCT-II → quantization scaled by a CRF-like quality factor → zig-zag →
//! run-length + varint entropy coding.
//!
//! [`SizeModel`] maps byte sizes at our render resolution to the paper's
//! 4K-equivalent sizes for the network experiments.
//!
//! # Example
//!
//! ```
//! use coterie_codec::{Encoder, Quality};
//! use coterie_frame::{LumaFrame, ssim};
//!
//! let frame = LumaFrame::from_fn(64, 64, |x, y| ((x * y) % 17) as f32 / 16.0);
//! let enc = Encoder::new(Quality::CRF25);
//! let encoded = enc.encode(&frame);
//! let decoded = enc.decode(&encoded)?;
//! assert!(ssim(&frame, &decoded) > 0.8);
//! # Ok::<(), coterie_codec::CodecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dct;
pub mod delta;
mod entropy;

pub use delta::{DeltaEncoder, EncodedDelta};
pub use entropy::CodecError;

use bytes::Bytes;
use coterie_frame::LumaFrame;
use serde::{Deserialize, Serialize};

/// Encoding quality, named after x264's Constant Rate Factor scale
/// (lower CRF = higher quality and larger frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Quality {
    /// Visually lossless-ish (CRF ≈ 18).
    CRF18,
    /// The paper's operating point (CRF 25, §5.1).
    #[default]
    CRF25,
    /// Aggressive compression (CRF ≈ 32).
    CRF32,
}

impl Quality {
    /// Quantization scale factor applied to the base matrix.
    pub(crate) fn quant_scale(self) -> f32 {
        match self {
            Quality::CRF18 => 0.5,
            Quality::CRF25 => 1.0,
            Quality::CRF32 => 2.2,
        }
    }
}

/// An encoded frame: header + entropy-coded payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedFrame {
    /// Original width in pixels.
    pub width: u32,
    /// Original height in pixels.
    pub height: u32,
    /// Quality used to encode.
    pub quality: Quality,
    /// Entropy-coded payload.
    pub payload: Bytes,
}

impl EncodedFrame {
    /// Encoded size in bytes (payload plus a nominal 16-byte header).
    pub fn size_bytes(&self) -> usize {
        self.payload.len() + 16
    }
}

/// JPEG-style base quantization matrix (luminance), scaled by quality.
pub(crate) const BASE_QUANT: [f32; 64] = [
    16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0, //
    12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0, //
    14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0, //
    14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0, //
    18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0, //
    24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0, 92.0, //
    49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0, //
    72.0, 92.0, 95.0, 98.0, 112.0, 100.0, 103.0, 99.0,
];

/// Zig-zag scan order for an 8×8 block.
pub(crate) const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// The intra-frame encoder/decoder.
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    quality: Quality,
}

impl Encoder {
    /// Creates an encoder at the given quality.
    pub fn new(quality: Quality) -> Self {
        Encoder { quality }
    }

    /// The configured quality.
    pub fn quality(&self) -> Quality {
        self.quality
    }

    /// [`Encoder::encode`] wrapped in a telemetry span on the caller's
    /// lane (wall-clock duration — encoding is real compute). A
    /// disabled sink adds one branch.
    pub fn encode_traced(
        &self,
        frame: &LumaFrame,
        sink: &coterie_telemetry::TelemetrySink,
        track: coterie_telemetry::TrackId,
        frame_no: u64,
    ) -> EncodedFrame {
        let started = sink.is_enabled().then(std::time::Instant::now);
        let encoded = self.encode(frame);
        if let Some(t0) = started {
            sink.span(
                track,
                coterie_telemetry::Stage::Encode,
                "encode",
                sink.now_ms(),
                t0.elapsed().as_secs_f64() * 1000.0,
                frame_no,
            );
        }
        encoded
    }

    /// [`Encoder::decode`] wrapped in a telemetry span on the caller's
    /// lane (wall-clock duration).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the payload is truncated or malformed.
    pub fn decode_traced(
        &self,
        encoded: &EncodedFrame,
        sink: &coterie_telemetry::TelemetrySink,
        track: coterie_telemetry::TrackId,
        frame_no: u64,
    ) -> Result<LumaFrame, CodecError> {
        let started = sink.is_enabled().then(std::time::Instant::now);
        let decoded = self.decode(encoded);
        if let Some(t0) = started {
            sink.span(
                track,
                coterie_telemetry::Stage::Decode,
                "decode",
                sink.now_ms(),
                t0.elapsed().as_secs_f64() * 1000.0,
                frame_no,
            );
        }
        decoded
    }

    /// Encodes a luma frame.
    pub fn encode(&self, frame: &LumaFrame) -> EncodedFrame {
        let w = frame.width();
        let h = frame.height();
        let bw = w.div_ceil(8);
        let bh = h.div_ceil(8);
        let scale = self.quality.quant_scale();
        let mut writer = entropy::Writer::new();
        let mut prev_dc: i32 = 0;
        let mut block = [0.0f32; 64];
        let mut coeffs = [0.0f32; 64];
        let mut quantized = [0i32; 64];
        for by in 0..bh {
            for bx in 0..bw {
                // Gather the 8x8 block with edge clamping.
                for y in 0..8 {
                    for x in 0..8 {
                        let sx = (bx * 8 + x).min(w - 1);
                        let sy = (by * 8 + y).min(h - 1);
                        block[(y * 8 + x) as usize] = frame.get(sx, sy) - 0.5;
                    }
                }
                dct::forward_8x8(&block, &mut coeffs);
                for i in 0..64 {
                    let q = BASE_QUANT[i] * scale / 255.0;
                    quantized[i] = (coeffs[i] / q).round() as i32;
                }
                // DC delta + zig-zag RLE for AC.
                let dc = quantized[0];
                writer.write_signed(dc - prev_dc);
                prev_dc = dc;
                let mut run = 0u32;
                for &zi in ZIGZAG.iter().skip(1) {
                    let v = quantized[zi];
                    if v == 0 {
                        run += 1;
                    } else {
                        writer.write_unsigned(run);
                        writer.write_signed(v);
                        run = 0;
                    }
                }
                writer.write_eob();
            }
        }
        EncodedFrame {
            width: w,
            height: h,
            quality: self.quality,
            payload: writer.into_bytes(),
        }
    }

    /// Decodes an encoded frame back into luma.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the payload is truncated or malformed.
    pub fn decode(&self, encoded: &EncodedFrame) -> Result<LumaFrame, CodecError> {
        let w = encoded.width;
        let h = encoded.height;
        let bw = w.div_ceil(8);
        let bh = h.div_ceil(8);
        let scale = encoded.quality.quant_scale();
        let mut reader = entropy::Reader::new(&encoded.payload);
        let mut frame = LumaFrame::new(w, h);
        let mut prev_dc: i32 = 0;
        let mut quantized = [0i32; 64];
        let mut coeffs = [0.0f32; 64];
        let mut block = [0.0f32; 64];
        for by in 0..bh {
            for bx in 0..bw {
                quantized.fill(0);
                let dc_delta = reader.read_signed()?;
                prev_dc += dc_delta;
                quantized[0] = prev_dc;
                let mut pos = 1usize;
                loop {
                    match reader.read_run()? {
                        entropy::Run::Eob => break,
                        entropy::Run::Pair { zeros, value } => {
                            pos += zeros as usize;
                            if pos >= 64 {
                                return Err(CodecError::Malformed("AC index overflow"));
                            }
                            quantized[ZIGZAG[pos]] = value;
                            pos += 1;
                        }
                    }
                    if pos >= 64 {
                        // A full block must be terminated by EOB.
                        match reader.read_run()? {
                            entropy::Run::Eob => break,
                            _ => return Err(CodecError::Malformed("missing EOB")),
                        }
                    }
                }
                for i in 0..64 {
                    let q = BASE_QUANT[i] * scale / 255.0;
                    coeffs[i] = quantized[i] as f32 * q;
                }
                dct::inverse_8x8(&coeffs, &mut block);
                for y in 0..8 {
                    for x in 0..8 {
                        let dx = bx * 8 + x;
                        let dy = by * 8 + y;
                        if dx < w && dy < h {
                            frame.set(dx, dy, block[(y * 8 + x) as usize] + 0.5);
                        }
                    }
                }
            }
        }
        Ok(frame)
    }
}

/// Maps encoded sizes at render resolution to 4K-equivalent transfer
/// sizes (the paper's frames are 3840×2160 panoramas).
///
/// Bytes scale with pixel area, discounted by `h264_efficiency` — the
/// factor by which real x264 at CRF 25 out-compresses this intra-only
/// codec (motion-compensated prediction, CABAC, deblocking). The default
/// is calibrated so whole-BE frames land in the paper's 440–680 KB range
/// and far-BE frames in 150–280 KB (Tables 1 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeModel {
    /// Target ("paper") resolution width.
    pub target_width: u32,
    /// Target resolution height.
    pub target_height: u32,
    /// Ratio of x264 bytes to this codec's bytes at equal quality.
    pub h264_efficiency: f64,
}

impl Default for SizeModel {
    fn default() -> Self {
        SizeModel {
            target_width: 3840,
            target_height: 2160,
            h264_efficiency: 0.35,
        }
    }
}

impl SizeModel {
    /// 4K-equivalent size in bytes for an encoded frame.
    pub fn scaled_bytes(&self, encoded: &EncodedFrame) -> u64 {
        let src_area = (encoded.width as f64) * (encoded.height as f64);
        let dst_area = (self.target_width as f64) * (self.target_height as f64);
        // Detail does not fully survive upscaling: empirically bits grow
        // sublinearly with area; exponent 0.9 keeps the growth honest
        // without claiming linearity.
        let ratio = (dst_area / src_area).powf(0.9);
        (encoded.size_bytes() as f64 * ratio * self.h264_efficiency).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_frame::ssim;

    fn textured_frame() -> LumaFrame {
        LumaFrame::from_fn(64, 48, |x, y| {
            let v = ((x * 13 + y * 7) % 23) as f32 / 23.0;
            0.2 + 0.6 * v
        })
    }

    fn smooth_frame() -> LumaFrame {
        LumaFrame::from_fn(64, 48, |x, y| {
            0.3 + 0.3 * (x as f32 / 64.0) + 0.1 * (y as f32 / 48.0)
        })
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let f = textured_frame();
        let enc = Encoder::new(Quality::CRF25);
        let decoded = enc.decode(&enc.encode(&f)).unwrap();
        assert_eq!(decoded.width(), f.width());
        assert_eq!(decoded.height(), f.height());
        let s = ssim(&f, &decoded);
        assert!(s > 0.85, "decode quality too low: SSIM {s}");
    }

    #[test]
    fn roundtrip_is_lossy_but_bounded() {
        let f = textured_frame();
        let enc = Encoder::new(Quality::CRF25);
        let decoded = enc.decode(&enc.encode(&f)).unwrap();
        assert_ne!(f, decoded, "transform quantization must lose something");
        let max_err = f
            .data()
            .iter()
            .zip(decoded.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.35, "max per-pixel error {max_err} too large");
    }

    #[test]
    fn higher_quality_is_larger_and_better() {
        let f = textured_frame();
        let lo = Encoder::new(Quality::CRF32);
        let hi = Encoder::new(Quality::CRF18);
        let e_lo = lo.encode(&f);
        let e_hi = hi.encode(&f);
        assert!(e_hi.size_bytes() > e_lo.size_bytes());
        let s_lo = ssim(&f, &lo.decode(&e_lo).unwrap());
        let s_hi = ssim(&f, &hi.decode(&e_hi).unwrap());
        assert!(s_hi > s_lo, "CRF18 ({s_hi}) must beat CRF32 ({s_lo})");
    }

    #[test]
    fn smooth_content_compresses_better() {
        // The property Coterie's traffic reduction rests on: simpler
        // (far-BE-like) content costs fewer bytes.
        let enc = Encoder::default();
        let smooth = enc.encode(&smooth_frame());
        let textured = enc.encode(&textured_frame());
        assert!(
            smooth.size_bytes() * 2 < textured.size_bytes(),
            "smooth {} vs textured {}",
            smooth.size_bytes(),
            textured.size_bytes()
        );
    }

    #[test]
    fn constant_frame_is_tiny() {
        let f = LumaFrame::filled(64, 64, 0.5);
        let enc = Encoder::default();
        let e = enc.encode(&f);
        // 64 blocks, each ~2 bytes (DC delta 0 + EOB).
        assert!(
            e.size_bytes() < 200,
            "constant frame took {} bytes",
            e.size_bytes()
        );
        let d = enc.decode(&e).unwrap();
        assert!(ssim(&f, &d) > 0.999);
    }

    #[test]
    fn non_multiple_of_8_dimensions() {
        let f = LumaFrame::from_fn(50, 35, |x, y| ((x + y) % 11) as f32 / 11.0);
        let enc = Encoder::default();
        let d = enc.decode(&enc.encode(&f)).unwrap();
        assert_eq!((d.width(), d.height()), (50, 35));
        assert!(ssim(&f, &d) > 0.6);
    }

    #[test]
    fn truncated_payload_is_error() {
        let enc = Encoder::default();
        let mut e = enc.encode(&textured_frame());
        e.payload = e.payload.slice(0..e.payload.len() / 2);
        assert!(enc.decode(&e).is_err());
    }

    #[test]
    fn size_model_scales_with_area() {
        let enc = Encoder::default();
        let e = enc.encode(&textured_frame());
        let model = SizeModel::default();
        let scaled = model.scaled_bytes(&e);
        assert!(
            scaled > e.size_bytes() as u64 * 50,
            "4K scaling too small: {scaled}"
        );
        // Efficiency discount reduces size.
        let cheap = SizeModel {
            h264_efficiency: 0.1,
            ..model
        };
        assert!(cheap.scaled_bytes(&e) < scaled);
    }

    #[test]
    fn encode_is_deterministic() {
        let f = textured_frame();
        let enc = Encoder::default();
        assert_eq!(enc.encode(&f), enc.encode(&f));
    }
}
