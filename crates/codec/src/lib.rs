//! # coterie-codec
//!
//! Intra-frame transform codec standing in for x264.
//!
//! The paper's server encodes pre-rendered panoramas with x264 (H.264,
//! Constant Rate Factor 25, fastdecode tuning, §5.1) and the phone
//! decodes them with the hardware `MediaCodec`. We cannot ship H.264, but
//! the experiments only need two properties of the codec, both of which a
//! real DCT transform codec provides and a byte-count formula would not:
//!
//! 1. **Content-dependent sizes** — far-BE frames (smooth, distant
//!    content) must compress better than whole-BE frames (detailed near
//!    content), which is what makes Coterie's prefetch traffic 2–3×
//!    smaller per frame (§7.2).
//! 2. **True lossy round-trips** — Table 7 measures SSIM *after*
//!    encode/decode; Coterie scores higher than Multi-Furion because only
//!    its far layer suffers codec loss. Our decoder reproduces that.
//!
//! The pipeline is the classic JPEG/H.264-intra shape: 8×8 blocks →
//! DCT-II → quantization scaled by a CRF-like quality factor → zig-zag →
//! run-length + varint entropy coding.
//!
//! [`SizeModel`] maps byte sizes at our render resolution to the paper's
//! 4K-equivalent sizes for the network experiments.
//!
//! # Example
//!
//! ```
//! use coterie_codec::{Encoder, Quality};
//! use coterie_frame::{LumaFrame, ssim};
//!
//! let frame = LumaFrame::from_fn(64, 64, |x, y| ((x * y) % 17) as f32 / 16.0);
//! let enc = Encoder::new(Quality::CRF25);
//! let encoded = enc.encode(&frame);
//! let decoded = enc.decode(&encoded)?;
//! assert!(ssim(&frame, &decoded) > 0.8);
//! # Ok::<(), coterie_codec::CodecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dct;
pub mod delta;
mod entropy;

pub use delta::{DeltaEncoder, EncodedDelta};
pub use entropy::CodecError;

use bytes::Bytes;
use coterie_frame::LumaFrame;
use coterie_parallel::simd::{self, SimdLevel};
use serde::{Deserialize, Serialize};

/// Encoding quality, named after x264's Constant Rate Factor scale
/// (lower CRF = higher quality and larger frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Quality {
    /// Visually lossless-ish (CRF ≈ 18).
    CRF18,
    /// The paper's operating point (CRF 25, §5.1).
    #[default]
    CRF25,
    /// Aggressive compression (CRF ≈ 32).
    CRF32,
}

impl Quality {
    /// Quantization scale factor applied to the base matrix.
    pub(crate) fn quant_scale(self) -> f32 {
        match self {
            Quality::CRF18 => 0.5,
            Quality::CRF25 => 1.0,
            Quality::CRF32 => 2.2,
        }
    }
}

/// An encoded frame: header + entropy-coded payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedFrame {
    /// Original width in pixels.
    pub width: u32,
    /// Original height in pixels.
    pub height: u32,
    /// Quality used to encode.
    pub quality: Quality,
    /// Entropy-coded payload.
    pub payload: Bytes,
}

impl EncodedFrame {
    /// Encoded size in bytes (payload plus a nominal 16-byte header).
    pub fn size_bytes(&self) -> usize {
        self.payload.len() + 16
    }
}

/// JPEG-style base quantization matrix (luminance), scaled by quality.
pub(crate) const BASE_QUANT: [f32; 64] = [
    16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0, //
    12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0, //
    14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0, //
    14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0, //
    18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0, //
    24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0, 92.0, //
    49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0, //
    72.0, 92.0, 95.0, 98.0, 112.0, 100.0, 103.0, 99.0,
];

/// Zig-zag scan order for an 8×8 block.
pub(crate) const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Builds the quantization table for a quality level, entry-for-entry
/// the historical per-coefficient expression.
pub(crate) fn quant_table(quality: Quality) -> [f32; 64] {
    let scale = quality.quant_scale();
    let mut q = [0.0f32; 64];
    for (i, v) in q.iter_mut().enumerate() {
        *v = BASE_QUANT[i] * scale / 255.0;
    }
    q
}

/// The zig-zag order as the i32 table [`simd::zigzag_gather`] consumes.
pub(crate) fn zigzag_order() -> [i32; 64] {
    let mut zz = [0i32; 64];
    for (i, v) in zz.iter_mut().enumerate() {
        *v = ZIGZAG[i] as i32;
    }
    zz
}

/// Copies the 8×8 block at `(bx, by)` out of a row-major plane with
/// edge clamping (the same `min(w-1)/min(h-1)` replication the per-pixel
/// gather used). Interior blocks take the eight-row memcpy fast path.
pub(crate) fn gather_block(
    plane: &[f32],
    w: usize,
    h: usize,
    bx: usize,
    by: usize,
    block: &mut [f32; 64],
) {
    let x0 = bx * 8;
    let y0 = by * 8;
    if x0 + 8 <= w && y0 + 8 <= h {
        for y in 0..8 {
            let row = (y0 + y) * w + x0;
            block[y * 8..y * 8 + 8].copy_from_slice(&plane[row..row + 8]);
        }
    } else {
        for y in 0..8 {
            let sy = (y0 + y).min(h - 1);
            for x in 0..8 {
                let sx = (x0 + x).min(w - 1);
                block[y * 8 + x] = plane[sy * w + sx];
            }
        }
    }
}

/// Writes an 8×8 block into a row-major plane, clipping at the edges
/// (every pixel belongs to exactly one block, so no write overlaps).
pub(crate) fn scatter_block(
    plane: &mut [f32],
    w: usize,
    h: usize,
    bx: usize,
    by: usize,
    block: &[f32; 64],
) {
    let x0 = bx * 8;
    let y0 = by * 8;
    let cols = (w - x0).min(8);
    for y in 0..8 {
        let dy = y0 + y;
        if dy >= h {
            break;
        }
        let row = dy * w + x0;
        plane[row..row + cols].copy_from_slice(&block[y * 8..y * 8 + cols]);
    }
}

/// The intra-frame encoder/decoder.
#[derive(Debug, Clone)]
pub struct Encoder {
    quality: Quality,
    qtable: [f32; 64],
    dct: dct::Dct8x8,
    zz: [i32; 64],
    level: SimdLevel,
}

impl Default for Encoder {
    fn default() -> Self {
        Encoder::new(Quality::default())
    }
}

impl Encoder {
    /// Creates an encoder at the given quality, using the process-wide
    /// detected SIMD level.
    pub fn new(quality: Quality) -> Self {
        Self::with_simd_level(quality, simd::detected_level())
    }

    /// Creates an encoder pinned to an explicit SIMD dispatch level
    /// (clamped to CPU capability inside every kernel). All levels
    /// produce byte-identical payloads; this exists for tests and
    /// benchmarks.
    pub fn with_simd_level(quality: Quality, level: SimdLevel) -> Self {
        Encoder {
            quality,
            qtable: quant_table(quality),
            dct: dct::Dct8x8::new(),
            zz: zigzag_order(),
            level,
        }
    }

    /// The configured quality.
    pub fn quality(&self) -> Quality {
        self.quality
    }

    /// [`Encoder::encode`] wrapped in a telemetry span on the caller's
    /// lane (wall-clock duration — encoding is real compute). A
    /// disabled sink adds one branch.
    pub fn encode_traced(
        &self,
        frame: &LumaFrame,
        sink: &coterie_telemetry::TelemetrySink,
        track: coterie_telemetry::TrackId,
        frame_no: u64,
    ) -> EncodedFrame {
        let started = sink.is_enabled().then(std::time::Instant::now);
        let encoded = self.encode(frame);
        if let Some(t0) = started {
            sink.span(
                track,
                coterie_telemetry::Stage::Encode,
                "encode",
                sink.now_ms(),
                t0.elapsed().as_secs_f64() * 1000.0,
                frame_no,
            );
        }
        encoded
    }

    /// [`Encoder::decode`] wrapped in a telemetry span on the caller's
    /// lane (wall-clock duration).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the payload is truncated or malformed.
    pub fn decode_traced(
        &self,
        encoded: &EncodedFrame,
        sink: &coterie_telemetry::TelemetrySink,
        track: coterie_telemetry::TrackId,
        frame_no: u64,
    ) -> Result<LumaFrame, CodecError> {
        let started = sink.is_enabled().then(std::time::Instant::now);
        let decoded = self.decode(encoded);
        if let Some(t0) = started {
            sink.span(
                track,
                coterie_telemetry::Stage::Decode,
                "decode",
                sink.now_ms(),
                t0.elapsed().as_secs_f64() * 1000.0,
                frame_no,
            );
        }
        decoded
    }

    /// Encodes a luma frame.
    pub fn encode(&self, frame: &LumaFrame) -> EncodedFrame {
        let w = frame.width() as usize;
        let h = frame.height() as usize;
        let bw = w.div_ceil(8);
        let bh = h.div_ceil(8);
        let mut writer = entropy::Writer::new();
        let mut prev_dc: i32 = 0;
        let mut block = [0.0f32; 64];
        let mut coeffs = [0.0f32; 64];
        let mut quantized = [0i32; 64];
        let mut scan = [0i32; 64];
        // Center the whole plane once (pixel - 0.5, exactly the old
        // per-pixel gather), then blocks are plain memcpys.
        let mut centered = vec![0.0f32; w * h];
        simd::sub_scalar_f32(frame.data(), 0.5, &mut centered, self.level);
        for by in 0..bh {
            for bx in 0..bw {
                gather_block(&centered, w, h, bx, by, &mut block);
                self.dct.forward(&block, &mut coeffs, self.level);
                simd::quantize_8x8(&coeffs, &self.qtable, &mut quantized, self.level);
                simd::zigzag_gather(&quantized, &self.zz, &mut scan, self.level);
                // DC delta + zig-zag RLE for AC (scan[0] is the DC:
                // ZIGZAG[0] == 0).
                let dc = scan[0];
                writer.write_signed(dc - prev_dc);
                prev_dc = dc;
                let mut run = 0u32;
                for &v in scan.iter().skip(1) {
                    if v == 0 {
                        run += 1;
                    } else {
                        writer.write_unsigned(run);
                        writer.write_signed(v);
                        run = 0;
                    }
                }
                writer.write_eob();
            }
        }
        EncodedFrame {
            width: frame.width(),
            height: frame.height(),
            quality: self.quality,
            payload: writer.into_bytes(),
        }
    }

    /// Decodes an encoded frame back into luma.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the payload is truncated or malformed.
    pub fn decode(&self, encoded: &EncodedFrame) -> Result<LumaFrame, CodecError> {
        let w = encoded.width as usize;
        let h = encoded.height as usize;
        let bw = w.div_ceil(8);
        let bh = h.div_ceil(8);
        // The payload's quality wins over the decoder's own (it may
        // have been encoded elsewhere at a different operating point).
        let qtable = if encoded.quality == self.quality {
            self.qtable
        } else {
            quant_table(encoded.quality)
        };
        let mut reader = entropy::Reader::new(&encoded.payload);
        let mut plane = vec![0.0f32; w * h];
        let mut prev_dc: i32 = 0;
        let mut quantized = [0i32; 64];
        let mut coeffs = [0.0f32; 64];
        let mut block = [0.0f32; 64];
        for by in 0..bh {
            for bx in 0..bw {
                quantized.fill(0);
                let dc_delta = reader.read_signed()?;
                prev_dc += dc_delta;
                quantized[0] = prev_dc;
                let mut pos = 1usize;
                loop {
                    match reader.read_run()? {
                        entropy::Run::Eob => break,
                        entropy::Run::Pair { zeros, value } => {
                            pos += zeros as usize;
                            if pos >= 64 {
                                return Err(CodecError::Malformed("AC index overflow"));
                            }
                            quantized[ZIGZAG[pos]] = value;
                            pos += 1;
                        }
                    }
                    if pos >= 64 {
                        // A full block must be terminated by EOB.
                        match reader.read_run()? {
                            entropy::Run::Eob => break,
                            _ => return Err(CodecError::Malformed("missing EOB")),
                        }
                    }
                }
                simd::dequantize_8x8(&quantized, &qtable, &mut coeffs, self.level);
                self.dct.inverse(&coeffs, &mut block, self.level);
                scatter_block(&mut plane, w, h, bx, by, &block);
            }
        }
        // Un-center and clamp in one fused plane pass (block value
        // + 0.5, then the `[0, 1]` clamp `LumaFrame::set` used to
        // apply — same values as the two separate passes).
        simd::add_clamp_unit_f32(&mut plane, 0.5, self.level);
        Ok(LumaFrame::from_raw(encoded.width, encoded.height, plane))
    }
}

/// Maps encoded sizes at render resolution to 4K-equivalent transfer
/// sizes (the paper's frames are 3840×2160 panoramas).
///
/// Bytes scale with pixel area, discounted by `h264_efficiency` — the
/// factor by which real x264 at CRF 25 out-compresses this intra-only
/// codec (motion-compensated prediction, CABAC, deblocking). The default
/// is calibrated so whole-BE frames land in the paper's 440–680 KB range
/// and far-BE frames in 150–280 KB (Tables 1 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeModel {
    /// Target ("paper") resolution width.
    pub target_width: u32,
    /// Target resolution height.
    pub target_height: u32,
    /// Ratio of x264 bytes to this codec's bytes at equal quality.
    pub h264_efficiency: f64,
}

impl Default for SizeModel {
    fn default() -> Self {
        SizeModel {
            target_width: 3840,
            target_height: 2160,
            h264_efficiency: 0.35,
        }
    }
}

impl SizeModel {
    /// 4K-equivalent size in bytes for an encoded frame.
    pub fn scaled_bytes(&self, encoded: &EncodedFrame) -> u64 {
        let src_area = (encoded.width as f64) * (encoded.height as f64);
        let dst_area = (self.target_width as f64) * (self.target_height as f64);
        // Detail does not fully survive upscaling: empirically bits grow
        // sublinearly with area; exponent 0.9 keeps the growth honest
        // without claiming linearity.
        let ratio = (dst_area / src_area).powf(0.9);
        (encoded.size_bytes() as f64 * ratio * self.h264_efficiency).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_frame::ssim;

    fn textured_frame() -> LumaFrame {
        LumaFrame::from_fn(64, 48, |x, y| {
            let v = ((x * 13 + y * 7) % 23) as f32 / 23.0;
            0.2 + 0.6 * v
        })
    }

    fn smooth_frame() -> LumaFrame {
        LumaFrame::from_fn(64, 48, |x, y| {
            0.3 + 0.3 * (x as f32 / 64.0) + 0.1 * (y as f32 / 48.0)
        })
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let f = textured_frame();
        let enc = Encoder::new(Quality::CRF25);
        let decoded = enc.decode(&enc.encode(&f)).unwrap();
        assert_eq!(decoded.width(), f.width());
        assert_eq!(decoded.height(), f.height());
        let s = ssim(&f, &decoded);
        assert!(s > 0.85, "decode quality too low: SSIM {s}");
    }

    #[test]
    fn roundtrip_is_lossy_but_bounded() {
        let f = textured_frame();
        let enc = Encoder::new(Quality::CRF25);
        let decoded = enc.decode(&enc.encode(&f)).unwrap();
        assert_ne!(f, decoded, "transform quantization must lose something");
        let max_err = f
            .data()
            .iter()
            .zip(decoded.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.35, "max per-pixel error {max_err} too large");
    }

    #[test]
    fn higher_quality_is_larger_and_better() {
        let f = textured_frame();
        let lo = Encoder::new(Quality::CRF32);
        let hi = Encoder::new(Quality::CRF18);
        let e_lo = lo.encode(&f);
        let e_hi = hi.encode(&f);
        assert!(e_hi.size_bytes() > e_lo.size_bytes());
        let s_lo = ssim(&f, &lo.decode(&e_lo).unwrap());
        let s_hi = ssim(&f, &hi.decode(&e_hi).unwrap());
        assert!(s_hi > s_lo, "CRF18 ({s_hi}) must beat CRF32 ({s_lo})");
    }

    #[test]
    fn smooth_content_compresses_better() {
        // The property Coterie's traffic reduction rests on: simpler
        // (far-BE-like) content costs fewer bytes.
        let enc = Encoder::default();
        let smooth = enc.encode(&smooth_frame());
        let textured = enc.encode(&textured_frame());
        assert!(
            smooth.size_bytes() * 2 < textured.size_bytes(),
            "smooth {} vs textured {}",
            smooth.size_bytes(),
            textured.size_bytes()
        );
    }

    #[test]
    fn constant_frame_is_tiny() {
        let f = LumaFrame::filled(64, 64, 0.5);
        let enc = Encoder::default();
        let e = enc.encode(&f);
        // 64 blocks, each ~2 bytes (DC delta 0 + EOB).
        assert!(
            e.size_bytes() < 200,
            "constant frame took {} bytes",
            e.size_bytes()
        );
        let d = enc.decode(&e).unwrap();
        assert!(ssim(&f, &d) > 0.999);
    }

    #[test]
    fn non_multiple_of_8_dimensions() {
        let f = LumaFrame::from_fn(50, 35, |x, y| ((x + y) % 11) as f32 / 11.0);
        let enc = Encoder::default();
        let d = enc.decode(&enc.encode(&f)).unwrap();
        assert_eq!((d.width(), d.height()), (50, 35));
        assert!(ssim(&f, &d) > 0.6);
    }

    #[test]
    fn truncated_payload_is_error() {
        let enc = Encoder::default();
        let mut e = enc.encode(&textured_frame());
        e.payload = e.payload.slice(0..e.payload.len() / 2);
        assert!(enc.decode(&e).is_err());
    }

    #[test]
    fn size_model_scales_with_area() {
        let enc = Encoder::default();
        let e = enc.encode(&textured_frame());
        let model = SizeModel::default();
        let scaled = model.scaled_bytes(&e);
        assert!(
            scaled > e.size_bytes() as u64 * 50,
            "4K scaling too small: {scaled}"
        );
        // Efficiency discount reduces size.
        let cheap = SizeModel {
            h264_efficiency: 0.1,
            ..model
        };
        assert!(cheap.scaled_bytes(&e) < scaled);
    }

    #[test]
    fn encode_is_deterministic() {
        let f = textured_frame();
        let enc = Encoder::default();
        assert_eq!(enc.encode(&f), enc.encode(&f));
    }
}
