//! Inter-frame (P-frame) coding against a reference frame.
//!
//! The paper's server encodes with x264, whose motion-compensated
//! P-frames spend bits only on what *changed* since the reference. This
//! module implements the zero-motion-vector version of that: the block
//! residual against a reference frame is transformed and entropy-coded,
//! and unchanged blocks cost two bytes.
//!
//! Its purpose in the reproduction is evidential: the simulation's
//! [`crate::SizeModel`] charges far-BE frames a *lower* H.264-equivalence
//! factor than whole-BE frames on the grounds that far content barely
//! moves between adjacent grid points while near content moves a lot.
//! The `coterie-sim` test `delta_coding_validates_size_asymmetry` uses
//! this codec to verify that claim end-to-end: P-frame savings between
//! adjacent-viewpoint renders are materially larger for far-BE layers
//! than for whole-BE layers.

use crate::{dct, entropy, CodecError, Quality, BASE_QUANT, ZIGZAG};
use bytes::Bytes;
use coterie_frame::LumaFrame;

/// An encoded inter-frame: residual payload plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedDelta {
    /// Frame width, pixels.
    pub width: u32,
    /// Frame height, pixels.
    pub height: u32,
    /// Quality used.
    pub quality: Quality,
    /// Entropy-coded residual payload.
    pub payload: Bytes,
    /// Number of blocks that were skipped (identical to reference after
    /// quantization).
    pub skipped_blocks: u32,
}

impl EncodedDelta {
    /// Encoded size in bytes (payload plus a nominal 16-byte header).
    pub fn size_bytes(&self) -> usize {
        self.payload.len() + 16
    }
}

/// Inter-frame encoder/decoder.
#[derive(Debug, Clone, Default)]
pub struct DeltaEncoder {
    quality: Quality,
}

impl DeltaEncoder {
    /// Creates a P-frame encoder at the given quality.
    pub fn new(quality: Quality) -> Self {
        DeltaEncoder { quality }
    }

    /// Encodes `frame` as a residual against `reference`.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different dimensions.
    pub fn encode(&self, frame: &LumaFrame, reference: &LumaFrame) -> EncodedDelta {
        assert_eq!(frame.width(), reference.width(), "frame widths differ");
        assert_eq!(frame.height(), reference.height(), "frame heights differ");
        let w = frame.width();
        let h = frame.height();
        let bw = w.div_ceil(8);
        let bh = h.div_ceil(8);
        let scale = self.quality.quant_scale();
        let mut writer = entropy::Writer::new();
        let mut skipped = 0u32;
        let mut block = [0.0f32; 64];
        let mut coeffs = [0.0f32; 64];
        let mut quantized = [0i32; 64];
        for by in 0..bh {
            for bx in 0..bw {
                let mut any_residual = false;
                for y in 0..8 {
                    for x in 0..8 {
                        let sx = (bx * 8 + x).min(w - 1);
                        let sy = (by * 8 + y).min(h - 1);
                        let r = frame.get(sx, sy) - reference.get(sx, sy);
                        block[(y * 8 + x) as usize] = r;
                        if r.abs() > 1e-6 {
                            any_residual = true;
                        }
                    }
                }
                if !any_residual {
                    // Skip flag: zero DC delta + EOB.
                    writer.write_signed(0);
                    writer.write_eob();
                    skipped += 1;
                    continue;
                }
                dct::forward_8x8(&block, &mut coeffs);
                let mut all_zero = true;
                for i in 0..64 {
                    let q = BASE_QUANT[i] * scale / 255.0;
                    quantized[i] = (coeffs[i] / q).round() as i32;
                    all_zero &= quantized[i] == 0;
                }
                if all_zero {
                    skipped += 1;
                }
                // Residual DC is coded directly (no prediction chain:
                // residual DCs are already near zero).
                writer.write_signed(quantized[0]);
                let mut run = 0u32;
                for &zi in ZIGZAG.iter().skip(1) {
                    let v = quantized[zi];
                    if v == 0 {
                        run += 1;
                    } else {
                        writer.write_unsigned(run);
                        writer.write_signed(v);
                        run = 0;
                    }
                }
                writer.write_eob();
            }
        }
        EncodedDelta {
            width: w,
            height: h,
            quality: self.quality,
            payload: writer.into_bytes(),
            skipped_blocks: skipped,
        }
    }

    /// Reconstructs a frame from a residual and its reference.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or malformed payloads.
    ///
    /// # Panics
    ///
    /// Panics if `reference` does not match the encoded dimensions.
    pub fn decode(
        &self,
        encoded: &EncodedDelta,
        reference: &LumaFrame,
    ) -> Result<LumaFrame, CodecError> {
        assert_eq!(reference.width(), encoded.width, "reference width differs");
        assert_eq!(
            reference.height(),
            encoded.height,
            "reference height differs"
        );
        let w = encoded.width;
        let h = encoded.height;
        let bw = w.div_ceil(8);
        let bh = h.div_ceil(8);
        let scale = encoded.quality.quant_scale();
        let mut reader = entropy::Reader::new(&encoded.payload);
        let mut frame = LumaFrame::new(w, h);
        let mut quantized = [0i32; 64];
        let mut coeffs = [0.0f32; 64];
        let mut block = [0.0f32; 64];
        for by in 0..bh {
            for bx in 0..bw {
                quantized.fill(0);
                quantized[0] = reader.read_signed()?;
                let mut pos = 1usize;
                loop {
                    match reader.read_run()? {
                        entropy::Run::Eob => break,
                        entropy::Run::Pair { zeros, value } => {
                            pos += zeros as usize;
                            if pos >= 64 {
                                return Err(CodecError::Malformed("AC index overflow"));
                            }
                            quantized[ZIGZAG[pos]] = value;
                            pos += 1;
                        }
                    }
                    if pos >= 64 {
                        match reader.read_run()? {
                            entropy::Run::Eob => break,
                            _ => return Err(CodecError::Malformed("missing EOB")),
                        }
                    }
                }
                for i in 0..64 {
                    let q = BASE_QUANT[i] * scale / 255.0;
                    coeffs[i] = quantized[i] as f32 * q;
                }
                dct::inverse_8x8(&coeffs, &mut block);
                for y in 0..8 {
                    for x in 0..8 {
                        let dx = bx * 8 + x;
                        let dy = by * 8 + y;
                        if dx < w && dy < h {
                            let v = reference.get(dx, dy) + block[(y * 8 + x) as usize];
                            frame.set(dx, dy, v);
                        }
                    }
                }
            }
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoder;
    use coterie_frame::ssim;

    fn textured(seed: u32) -> LumaFrame {
        LumaFrame::from_fn(64, 48, |x, y| {
            ((x.wrapping_mul(13) ^ y.wrapping_mul(7) ^ seed) % 31) as f32 / 31.0
        })
    }

    #[test]
    fn identical_frames_cost_almost_nothing() {
        let f = textured(1);
        let enc = DeltaEncoder::new(Quality::CRF25);
        let d = enc.encode(&f, &f);
        // 48 blocks x 2 bytes of skip flags.
        assert!(
            d.size_bytes() < 250,
            "still frame cost {} bytes",
            d.size_bytes()
        );
        assert_eq!(d.skipped_blocks, 48);
        let decoded = enc.decode(&d, &f).unwrap();
        assert!(ssim(&f, &decoded) > 0.999);
    }

    #[test]
    fn small_change_is_localized() {
        let reference = textured(1);
        let mut frame = reference.clone();
        for y in 0..8 {
            for x in 0..8 {
                frame.set(x + 16, y + 16, 1.0 - frame.get(x + 16, y + 16));
            }
        }
        let enc = DeltaEncoder::new(Quality::CRF25);
        let d = enc.encode(&frame, &reference);
        assert_eq!(d.skipped_blocks, 47, "only the touched block carries bits");
        let decoded = enc.decode(&d, &reference).unwrap();
        assert!(ssim(&frame, &decoded) > 0.9);
    }

    #[test]
    fn delta_beats_intra_for_similar_frames() {
        // The temporal-redundancy claim: frames that barely changed cost
        // far fewer bits as P-frames than as I-frames.
        let reference = textured(3);
        let mut frame = reference.clone();
        for (i, v) in frame.data_mut().iter_mut().enumerate() {
            if i % 97 == 0 {
                *v = (*v + 0.06).min(1.0);
            }
        }
        let intra = Encoder::new(Quality::CRF25).encode(&frame);
        let delta = DeltaEncoder::new(Quality::CRF25).encode(&frame, &reference);
        assert!(
            delta.size_bytes() * 3 < intra.size_bytes(),
            "delta {} should be far smaller than intra {}",
            delta.size_bytes(),
            intra.size_bytes()
        );
    }

    #[test]
    fn unrelated_frames_gain_nothing() {
        let a = textured(1);
        let b = textured(999);
        let intra = Encoder::new(Quality::CRF25).encode(&b);
        let delta = DeltaEncoder::new(Quality::CRF25).encode(&b, &a);
        // Residual of unrelated noise is as expensive as the content.
        assert!(delta.size_bytes() as f64 > intra.size_bytes() as f64 * 0.6);
    }

    #[test]
    fn roundtrip_quality_matches_intra() {
        let reference = textured(5);
        let mut frame = reference.clone();
        for v in frame.data_mut().iter_mut().step_by(11) {
            *v = (*v * 0.8 + 0.1).clamp(0.0, 1.0);
        }
        let enc = DeltaEncoder::new(Quality::CRF25);
        let decoded = enc
            .decode(&enc.encode(&frame, &reference), &reference)
            .unwrap();
        let s = ssim(&frame, &decoded);
        assert!(s > 0.9, "delta round-trip SSIM {s:.3}");
    }

    #[test]
    fn truncated_delta_errors() {
        let reference = textured(5);
        let enc = DeltaEncoder::new(Quality::CRF25);
        let mut d = enc.encode(&textured(6), &reference);
        d.payload = d.payload.slice(0..d.payload.len() / 3);
        assert!(enc.decode(&d, &reference).is_err());
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_reference_panics() {
        let enc = DeltaEncoder::new(Quality::CRF25);
        let _ = enc.encode(&LumaFrame::new(16, 16), &LumaFrame::new(24, 16));
    }
}
