//! Inter-frame (P-frame) coding against a reference frame.
//!
//! The paper's server encodes with x264, whose motion-compensated
//! P-frames spend bits only on what *changed* since the reference. This
//! module implements the zero-motion-vector version of that: the block
//! residual against a reference frame is transformed and entropy-coded,
//! and unchanged blocks cost two bytes.
//!
//! Its purpose in the reproduction is evidential: the simulation's
//! [`crate::SizeModel`] charges far-BE frames a *lower* H.264-equivalence
//! factor than whole-BE frames on the grounds that far content barely
//! moves between adjacent grid points while near content moves a lot.
//! The `coterie-sim` test `delta_coding_validates_size_asymmetry` uses
//! this codec to verify that claim end-to-end: P-frame savings between
//! adjacent-viewpoint renders are materially larger for far-BE layers
//! than for whole-BE layers.

use crate::{
    dct, entropy, gather_block, quant_table, scatter_block, zigzag_order, CodecError, Quality,
    ZIGZAG,
};
use bytes::Bytes;
use coterie_frame::LumaFrame;
use coterie_parallel::simd::{self, SimdLevel};

/// An encoded inter-frame: residual payload plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedDelta {
    /// Frame width, pixels.
    pub width: u32,
    /// Frame height, pixels.
    pub height: u32,
    /// Quality used.
    pub quality: Quality,
    /// Entropy-coded residual payload.
    pub payload: Bytes,
    /// Number of blocks that were skipped (identical to reference after
    /// quantization).
    pub skipped_blocks: u32,
}

impl EncodedDelta {
    /// Encoded size in bytes (payload plus a nominal 16-byte header).
    pub fn size_bytes(&self) -> usize {
        self.payload.len() + 16
    }
}

/// Inter-frame encoder/decoder.
#[derive(Debug, Clone)]
pub struct DeltaEncoder {
    quality: Quality,
    qtable: [f32; 64],
    dct: dct::Dct8x8,
    zz: [i32; 64],
    level: SimdLevel,
}

impl Default for DeltaEncoder {
    fn default() -> Self {
        DeltaEncoder::new(Quality::default())
    }
}

impl DeltaEncoder {
    /// Creates a P-frame encoder at the given quality, using the
    /// process-wide detected SIMD level.
    pub fn new(quality: Quality) -> Self {
        Self::with_simd_level(quality, simd::detected_level())
    }

    /// Creates a P-frame encoder pinned to an explicit SIMD dispatch
    /// level (all levels produce byte-identical payloads).
    pub fn with_simd_level(quality: Quality, level: SimdLevel) -> Self {
        DeltaEncoder {
            quality,
            qtable: quant_table(quality),
            dct: dct::Dct8x8::new(),
            zz: zigzag_order(),
            level,
        }
    }

    /// Encodes `frame` as a residual against `reference`.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different dimensions.
    pub fn encode(&self, frame: &LumaFrame, reference: &LumaFrame) -> EncodedDelta {
        assert_eq!(frame.width(), reference.width(), "frame widths differ");
        assert_eq!(frame.height(), reference.height(), "frame heights differ");
        let w = frame.width() as usize;
        let h = frame.height() as usize;
        let bw = w.div_ceil(8);
        let bh = h.div_ceil(8);
        let mut writer = entropy::Writer::new();
        let mut skipped = 0u32;
        let mut block = [0.0f32; 64];
        let mut coeffs = [0.0f32; 64];
        let mut quantized = [0i32; 64];
        let mut scan = [0i32; 64];
        // One plane-wide subtraction replaces the per-pixel residual
        // gather; blocks then memcpy out of the residual plane.
        let mut residual = vec![0.0f32; w * h];
        simd::sub_planes_f32(frame.data(), reference.data(), &mut residual, self.level);
        for by in 0..bh {
            for bx in 0..bw {
                gather_block(&residual, w, h, bx, by, &mut block);
                if !simd::any_abs_above(&block, 1e-6, self.level) {
                    // Skip flag: zero DC delta + EOB.
                    writer.write_signed(0);
                    writer.write_eob();
                    skipped += 1;
                    continue;
                }
                self.dct.forward(&block, &mut coeffs, self.level);
                let all_zero =
                    simd::quantize_8x8(&coeffs, &self.qtable, &mut quantized, self.level);
                if all_zero {
                    skipped += 1;
                }
                simd::zigzag_gather(&quantized, &self.zz, &mut scan, self.level);
                // Residual DC is coded directly (no prediction chain:
                // residual DCs are already near zero).
                writer.write_signed(scan[0]);
                let mut run = 0u32;
                for &v in scan.iter().skip(1) {
                    if v == 0 {
                        run += 1;
                    } else {
                        writer.write_unsigned(run);
                        writer.write_signed(v);
                        run = 0;
                    }
                }
                writer.write_eob();
            }
        }
        EncodedDelta {
            width: frame.width(),
            height: frame.height(),
            quality: self.quality,
            payload: writer.into_bytes(),
            skipped_blocks: skipped,
        }
    }

    /// Reconstructs a frame from a residual and its reference.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or malformed payloads.
    ///
    /// # Panics
    ///
    /// Panics if `reference` does not match the encoded dimensions.
    pub fn decode(
        &self,
        encoded: &EncodedDelta,
        reference: &LumaFrame,
    ) -> Result<LumaFrame, CodecError> {
        assert_eq!(reference.width(), encoded.width, "reference width differs");
        assert_eq!(
            reference.height(),
            encoded.height,
            "reference height differs"
        );
        let w = encoded.width as usize;
        let h = encoded.height as usize;
        let bw = w.div_ceil(8);
        let bh = h.div_ceil(8);
        let qtable = if encoded.quality == self.quality {
            self.qtable
        } else {
            quant_table(encoded.quality)
        };
        let mut reader = entropy::Reader::new(&encoded.payload);
        let mut quantized = [0i32; 64];
        let mut coeffs = [0.0f32; 64];
        let mut block = [0.0f32; 64];
        // Decoded residual blocks land in a zero plane, then one
        // plane-wide add applies the reference (reference + residual,
        // exactly the old per-pixel order).
        let mut residual = vec![0.0f32; w * h];
        for by in 0..bh {
            for bx in 0..bw {
                quantized.fill(0);
                quantized[0] = reader.read_signed()?;
                let mut pos = 1usize;
                loop {
                    match reader.read_run()? {
                        entropy::Run::Eob => break,
                        entropy::Run::Pair { zeros, value } => {
                            pos += zeros as usize;
                            if pos >= 64 {
                                return Err(CodecError::Malformed("AC index overflow"));
                            }
                            quantized[ZIGZAG[pos]] = value;
                            pos += 1;
                        }
                    }
                    if pos >= 64 {
                        match reader.read_run()? {
                            entropy::Run::Eob => break,
                            _ => return Err(CodecError::Malformed("missing EOB")),
                        }
                    }
                }
                simd::dequantize_8x8(&quantized, &qtable, &mut coeffs, self.level);
                self.dct.inverse(&coeffs, &mut block, self.level);
                scatter_block(&mut residual, w, h, bx, by, &block);
            }
        }
        let mut out = reference.data().to_vec();
        simd::add_planes_f32(&mut out, &residual, self.level);
        // The `[0, 1]` clamp `LumaFrame::set` used to apply per pixel.
        simd::clamp_unit_f32(&mut out, self.level);
        Ok(LumaFrame::from_raw(encoded.width, encoded.height, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoder;
    use coterie_frame::ssim;

    fn textured(seed: u32) -> LumaFrame {
        LumaFrame::from_fn(64, 48, |x, y| {
            ((x.wrapping_mul(13) ^ y.wrapping_mul(7) ^ seed) % 31) as f32 / 31.0
        })
    }

    #[test]
    fn identical_frames_cost_almost_nothing() {
        let f = textured(1);
        let enc = DeltaEncoder::new(Quality::CRF25);
        let d = enc.encode(&f, &f);
        // 48 blocks x 2 bytes of skip flags.
        assert!(
            d.size_bytes() < 250,
            "still frame cost {} bytes",
            d.size_bytes()
        );
        assert_eq!(d.skipped_blocks, 48);
        let decoded = enc.decode(&d, &f).unwrap();
        assert!(ssim(&f, &decoded) > 0.999);
    }

    #[test]
    fn small_change_is_localized() {
        let reference = textured(1);
        let mut frame = reference.clone();
        for y in 0..8 {
            for x in 0..8 {
                frame.set(x + 16, y + 16, 1.0 - frame.get(x + 16, y + 16));
            }
        }
        let enc = DeltaEncoder::new(Quality::CRF25);
        let d = enc.encode(&frame, &reference);
        assert_eq!(d.skipped_blocks, 47, "only the touched block carries bits");
        let decoded = enc.decode(&d, &reference).unwrap();
        assert!(ssim(&frame, &decoded) > 0.9);
    }

    #[test]
    fn delta_beats_intra_for_similar_frames() {
        // The temporal-redundancy claim: frames that barely changed cost
        // far fewer bits as P-frames than as I-frames.
        let reference = textured(3);
        let mut frame = reference.clone();
        for (i, v) in frame.data_mut().iter_mut().enumerate() {
            if i % 97 == 0 {
                *v = (*v + 0.06).min(1.0);
            }
        }
        let intra = Encoder::new(Quality::CRF25).encode(&frame);
        let delta = DeltaEncoder::new(Quality::CRF25).encode(&frame, &reference);
        assert!(
            delta.size_bytes() * 3 < intra.size_bytes(),
            "delta {} should be far smaller than intra {}",
            delta.size_bytes(),
            intra.size_bytes()
        );
    }

    #[test]
    fn unrelated_frames_gain_nothing() {
        let a = textured(1);
        let b = textured(999);
        let intra = Encoder::new(Quality::CRF25).encode(&b);
        let delta = DeltaEncoder::new(Quality::CRF25).encode(&b, &a);
        // Residual of unrelated noise is as expensive as the content.
        assert!(delta.size_bytes() as f64 > intra.size_bytes() as f64 * 0.6);
    }

    #[test]
    fn roundtrip_quality_matches_intra() {
        let reference = textured(5);
        let mut frame = reference.clone();
        for v in frame.data_mut().iter_mut().step_by(11) {
            *v = (*v * 0.8 + 0.1).clamp(0.0, 1.0);
        }
        let enc = DeltaEncoder::new(Quality::CRF25);
        let decoded = enc
            .decode(&enc.encode(&frame, &reference), &reference)
            .unwrap();
        let s = ssim(&frame, &decoded);
        assert!(s > 0.9, "delta round-trip SSIM {s:.3}");
    }

    #[test]
    fn truncated_delta_errors() {
        let reference = textured(5);
        let enc = DeltaEncoder::new(Quality::CRF25);
        let mut d = enc.encode(&textured(6), &reference);
        d.payload = d.payload.slice(0..d.payload.len() / 3);
        assert!(enc.decode(&d, &reference).is_err());
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_reference_panics() {
        let enc = DeltaEncoder::new(Quality::CRF25);
        let _ = enc.encode(&LumaFrame::new(16, 16), &LumaFrame::new(24, 16));
    }
}
