//! Varint + run-length entropy coding for quantized DCT blocks.
//!
//! Layout per block: `signed_varint(dc_delta)` followed by zero or more
//! `(unsigned_varint(zero_run), signed_varint(value))` pairs and a
//! terminating end-of-block marker. The EOB marker is an unsigned run of
//! `RUN_EOB`, a value no legal run can take (runs are < 64).

use bytes::{Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// Sentinel run value marking end-of-block.
const RUN_EOB: u32 = 0x7F;

/// Errors produced while decoding a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended mid-symbol.
    Truncated,
    /// The payload decoded to an impossible structure.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "encoded payload ended unexpectedly"),
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl Error for CodecError {}

/// Zig-zag maps signed to unsigned so small magnitudes stay small.
#[inline]
fn zigzag_encode(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

#[inline]
fn zigzag_decode(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// Bit-packing writer (LEB128 varints into a byte buffer).
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer {
            buf: BytesMut::with_capacity(1024),
        }
    }

    /// Writes an unsigned varint.
    pub fn write_unsigned(&mut self, mut v: u32) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.extend_from_slice(&[byte]);
                return;
            }
            self.buf.extend_from_slice(&[byte | 0x80]);
        }
    }

    /// Writes a signed varint (zig-zag mapped).
    pub fn write_signed(&mut self, v: i32) {
        self.write_unsigned(zigzag_encode(v));
    }

    /// Writes the end-of-block marker.
    pub fn write_eob(&mut self) {
        self.write_unsigned(RUN_EOB);
    }

    /// Finalizes into an immutable byte buffer.
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A decoded run symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Run {
    /// `zeros` zero coefficients followed by `value`.
    Pair {
        /// Number of zeros preceding the value.
        zeros: u32,
        /// The non-zero coefficient.
        value: i32,
    },
    /// End of block.
    Eob,
}

/// Varint reader over an encoded payload.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at the start of the payload.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Reads an unsigned varint.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the payload ends mid-varint, or
    /// [`CodecError::Malformed`] if the varint overflows 32 bits.
    #[inline]
    pub fn read_unsigned(&mut self) -> Result<u32, CodecError> {
        // Fast path: almost every symbol (runs, small quantized
        // coefficients) fits one byte.
        let byte = *self.data.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        if byte & 0x80 == 0 {
            return Ok(byte as u32);
        }
        self.read_unsigned_slow((byte & 0x7F) as u32)
    }

    /// Continuation bytes of a multi-byte varint (first byte's payload
    /// already in `result`).
    #[cold]
    fn read_unsigned_slow(&mut self, mut result: u32) -> Result<u32, CodecError> {
        let mut shift = 7u32;
        loop {
            let byte = *self.data.get(self.pos).ok_or(CodecError::Truncated)?;
            self.pos += 1;
            if shift >= 32 {
                return Err(CodecError::Malformed("varint overflow"));
            }
            result |= ((byte & 0x7F) as u32) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads a signed varint.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Reader::read_unsigned`].
    #[inline]
    pub fn read_signed(&mut self) -> Result<i32, CodecError> {
        Ok(zigzag_decode(self.read_unsigned()?))
    }

    /// Reads the next run symbol (a `(zeros, value)` pair or EOB).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Reader::read_unsigned`], plus
    /// [`CodecError::Malformed`] for an impossible run length.
    #[inline]
    pub fn read_run(&mut self) -> Result<Run, CodecError> {
        let run = self.read_unsigned()?;
        if run == RUN_EOB {
            return Ok(Run::Eob);
        }
        if run >= 64 {
            return Err(CodecError::Malformed("zero-run exceeds block size"));
        }
        let value = self.read_signed()?;
        Ok(Run::Pair { zeros: run, value })
    }

    /// Bytes consumed so far.
    #[allow(dead_code)] // exercised by unit tests; useful for diagnostics
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1000, -2, -1, 0, 1, 2, 1000, i32::MIN / 2, i32::MAX / 2] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes map small.
        assert!(zigzag_encode(-1) <= 2);
        assert!(zigzag_encode(1) <= 2);
    }

    #[test]
    fn varint_roundtrip() {
        let mut w = Writer::new();
        let values = [0u32, 1, 127, 128, 300, 65_535, 1 << 20, u32::MAX / 2];
        for &v in &values {
            w.write_unsigned(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_unsigned().unwrap(), v);
        }
        assert_eq!(r.position(), bytes.len());
    }

    #[test]
    fn signed_roundtrip() {
        let mut w = Writer::new();
        let values = [-100_000, -1, 0, 1, 7, 100_000];
        for &v in &values {
            w.write_signed(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_signed().unwrap(), v);
        }
    }

    #[test]
    fn run_roundtrip_with_eob() {
        let mut w = Writer::new();
        w.write_unsigned(3);
        w.write_signed(-7);
        w.write_unsigned(0);
        w.write_signed(12);
        w.write_eob();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            r.read_run().unwrap(),
            Run::Pair {
                zeros: 3,
                value: -7
            }
        );
        assert_eq!(
            r.read_run().unwrap(),
            Run::Pair {
                zeros: 0,
                value: 12
            }
        );
        assert_eq!(r.read_run().unwrap(), Run::Eob);
    }

    #[test]
    fn truncated_payload_errors() {
        let mut w = Writer::new();
        w.write_unsigned(5);
        w.write_signed(9);
        let bytes = w.into_bytes();
        // Cut mid-pair.
        let mut r = Reader::new(&bytes[..1]);
        assert_eq!(r.read_run(), Err(CodecError::Truncated));
    }

    #[test]
    fn illegal_run_is_malformed() {
        let mut w = Writer::new();
        w.write_unsigned(80); // not EOB (127), not a legal run (<64)
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.read_run(), Err(CodecError::Malformed(_))));
    }

    #[test]
    fn continuation_bits_never_terminate() {
        // 5 bytes with continuation set but no terminator -> overflow.
        let data = [0xFFu8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF];
        let mut r = Reader::new(&data);
        assert!(matches!(
            r.read_unsigned(),
            Err(CodecError::Malformed("varint overflow"))
        ));
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", CodecError::Truncated).contains("unexpectedly"));
        assert!(format!("{}", CodecError::Malformed("x")).contains("x"));
    }
}
