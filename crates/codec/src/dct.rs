//! 8×8 type-II DCT and its inverse (separable, orthonormal).
//!
//! The transform itself lives in [`coterie_parallel::simd::Dct8x8`],
//! which precomputes the cosine basis (and its transpose, the layout
//! the SIMD row pass needs) once per instance — the encoder constructs
//! one per codec instead of consulting a `OnceLock` per block — and
//! dispatches between scalar, SSE2 and AVX2 matmuls that are
//! bit-identical to each other.

pub(crate) use coterie_parallel::simd::Dct8x8;

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_parallel::simd::available_levels;

    #[test]
    fn roundtrip_is_identity() {
        let dct = Dct8x8::new();
        let mut input = [0.0f32; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = ((i * 7919) % 100) as f32 / 100.0 - 0.5;
        }
        for level in available_levels() {
            let mut coeffs = [0.0f32; 64];
            let mut back = [0.0f32; 64];
            dct.forward(&input, &mut coeffs, level);
            dct.inverse(&coeffs, &mut back, level);
            for i in 0..64 {
                assert!((input[i] - back[i]).abs() < 1e-5, "{level:?} idx {i}");
            }
        }
    }

    #[test]
    fn dc_of_constant_block() {
        let dct = Dct8x8::new();
        let input = [0.25f32; 64];
        for level in available_levels() {
            let mut coeffs = [0.0f32; 64];
            dct.forward(&input, &mut coeffs, level);
            // Orthonormal: DC = 8 * mean = 8 * 0.25.
            assert!((coeffs[0] - 2.0).abs() < 1e-5, "{level:?}");
            for (i, &c) in coeffs.iter().enumerate().skip(1) {
                assert!(c.abs() < 1e-5, "{level:?} AC {i} = {c}");
            }
        }
    }

    #[test]
    fn energy_preservation_parseval() {
        let dct = Dct8x8::new();
        let mut input = [0.0f32; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = (i as f32 * 0.37).sin() * 0.5;
        }
        for level in available_levels() {
            let mut coeffs = [0.0f32; 64];
            dct.forward(&input, &mut coeffs, level);
            let e_in: f32 = input.iter().map(|v| v * v).sum();
            let e_out: f32 = coeffs.iter().map(|v| v * v).sum();
            assert!((e_in - e_out).abs() < 1e-4, "{level:?}: {e_in} vs {e_out}");
        }
    }

    #[test]
    fn smooth_gradient_concentrates_low_frequencies() {
        let dct = Dct8x8::new();
        let mut input = [0.0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                input[y * 8 + x] = x as f32 / 8.0 - 0.5;
            }
        }
        for level in available_levels() {
            let mut coeffs = [0.0f32; 64];
            dct.forward(&input, &mut coeffs, level);
            let low: f32 = coeffs[..16].iter().map(|v| v.abs()).sum();
            let high: f32 = coeffs[32..].iter().map(|v| v.abs()).sum();
            assert!(low > high * 10.0, "{level:?}: low {low} vs high {high}");
        }
    }
}
