//! 8×8 type-II DCT and its inverse (separable, orthonormal).

use std::sync::OnceLock;

/// Cosine basis: `COS[u][x] = c(u) * cos((2x+1) u π / 16)` with the
/// orthonormal scaling `c(0)=sqrt(1/8)`, `c(u)=sqrt(2/8)`.
fn basis() -> &'static [[f32; 8]; 8] {
    static BASIS: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0.0f32; 8]; 8];
        for (u, row) in b.iter_mut().enumerate() {
            let c = if u == 0 {
                (1.0f64 / 8.0).sqrt()
            } else {
                (2.0f64 / 8.0).sqrt()
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = (c * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos())
                    as f32;
            }
        }
        b
    })
}

/// Forward 2-D DCT of an 8×8 block (row-major).
pub fn forward_8x8(input: &[f32; 64], output: &mut [f32; 64]) {
    let b = basis();
    // Rows first.
    let mut tmp = [0.0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0f32;
            for x in 0..8 {
                acc += input[y * 8 + x] * b[u][x];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    // Then columns.
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0.0f32;
            for y in 0..8 {
                acc += tmp[y * 8 + u] * b[v][y];
            }
            output[v * 8 + u] = acc;
        }
    }
}

/// Inverse 2-D DCT of an 8×8 coefficient block (row-major).
pub fn inverse_8x8(coeffs: &[f32; 64], output: &mut [f32; 64]) {
    let b = basis();
    let mut tmp = [0.0f32; 64];
    // Columns first (transpose of forward).
    for u in 0..8 {
        for y in 0..8 {
            let mut acc = 0.0f32;
            for v in 0..8 {
                acc += coeffs[v * 8 + u] * b[v][y];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0f32;
            for u in 0..8 {
                acc += tmp[y * 8 + u] * b[u][x];
            }
            output[y * 8 + x] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_identity() {
        let mut input = [0.0f32; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = ((i * 7919) % 100) as f32 / 100.0 - 0.5;
        }
        let mut coeffs = [0.0f32; 64];
        let mut back = [0.0f32; 64];
        forward_8x8(&input, &mut coeffs);
        inverse_8x8(&coeffs, &mut back);
        for i in 0..64 {
            assert!((input[i] - back[i]).abs() < 1e-5, "idx {i}");
        }
    }

    #[test]
    fn dc_of_constant_block() {
        let input = [0.25f32; 64];
        let mut coeffs = [0.0f32; 64];
        forward_8x8(&input, &mut coeffs);
        // Orthonormal: DC = 8 * mean = 8 * 0.25.
        assert!((coeffs[0] - 2.0).abs() < 1e-5);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-5, "AC {i} = {c}");
        }
    }

    #[test]
    fn energy_preservation_parseval() {
        let mut input = [0.0f32; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = (i as f32 * 0.37).sin() * 0.5;
        }
        let mut coeffs = [0.0f32; 64];
        forward_8x8(&input, &mut coeffs);
        let e_in: f32 = input.iter().map(|v| v * v).sum();
        let e_out: f32 = coeffs.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() < 1e-4, "{e_in} vs {e_out}");
    }

    #[test]
    fn smooth_gradient_concentrates_low_frequencies() {
        let mut input = [0.0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                input[y * 8 + x] = x as f32 / 8.0 - 0.5;
            }
        }
        let mut coeffs = [0.0f32; 64];
        forward_8x8(&input, &mut coeffs);
        let low: f32 = coeffs[..16].iter().map(|v| v.abs()).sum();
        let high: f32 = coeffs[32..].iter().map(|v| v.abs()).sum();
        assert!(low > high * 10.0, "low {low} vs high {high}");
    }
}
