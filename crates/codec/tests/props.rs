//! Property-based tests for the transform codec.

use coterie_codec::{Encoder, Quality, SizeModel};
use coterie_frame::{ssim_with, LumaFrame, SsimOptions};
use proptest::prelude::*;

fn frame_strategy() -> impl Strategy<Value = LumaFrame> {
    (8u32..48, 8u32..48).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0.0f32..=1.0, (w * h) as usize)
            .prop_map(move |data| LumaFrame::from_raw(w, h, data))
    })
}

/// Smooth frames (realistic content) for quality assertions; pure white
/// noise is the pathological worst case for any transform codec.
fn smooth_frame_strategy() -> impl Strategy<Value = LumaFrame> {
    (8u32..48, 8u32..48, 0u64..1000).prop_map(|(w, h, seed)| {
        LumaFrame::from_fn(w, h, |x, y| {
            let fx = x as f32 / w as f32;
            let fy = y as f32 / h as f32;
            let s = seed as f32 * 0.01;
            (0.5 + 0.3 * (fx * 6.0 + s).sin() * (fy * 5.0 - s).cos()).clamp(0.0, 1.0)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_frame_roundtrips_without_error(f in frame_strategy()) {
        for q in [Quality::CRF18, Quality::CRF25, Quality::CRF32] {
            let enc = Encoder::new(q);
            let encoded = enc.encode(&f);
            let decoded = enc.decode(&encoded);
            prop_assert!(decoded.is_ok(), "decode failed at {q:?}");
            let d = decoded.unwrap();
            prop_assert_eq!(d.width(), f.width());
            prop_assert_eq!(d.height(), f.height());
        }
    }

    #[test]
    fn decoded_pixels_stay_in_unit_range(f in frame_strategy()) {
        let enc = Encoder::new(Quality::CRF25);
        let decoded = enc.decode(&enc.encode(&f)).unwrap();
        for &v in decoded.data() {
            prop_assert!((0.0..=1.0).contains(&v), "pixel {v} escaped range");
        }
    }

    #[test]
    fn encoding_is_deterministic(f in frame_strategy()) {
        let enc = Encoder::new(Quality::CRF25);
        prop_assert_eq!(enc.encode(&f), enc.encode(&f));
    }

    #[test]
    fn smooth_content_decodes_faithfully(f in smooth_frame_strategy()) {
        let enc = Encoder::new(Quality::CRF25);
        let decoded = enc.decode(&enc.encode(&f)).unwrap();
        let s = ssim_with(&f, &decoded, &SsimOptions::fast());
        prop_assert!(s > 0.9, "smooth content should survive: SSIM {s:.3}");
    }

    #[test]
    fn higher_quality_never_larger_error(f in smooth_frame_strategy()) {
        let hi = Encoder::new(Quality::CRF18);
        let lo = Encoder::new(Quality::CRF32);
        let d_hi = hi.decode(&hi.encode(&f)).unwrap();
        let d_lo = lo.decode(&lo.encode(&f)).unwrap();
        let err = |a: &LumaFrame, b: &LumaFrame| {
            a.data().iter().zip(b.data()).map(|(x, y)| ((x - y) as f64).powi(2)).sum::<f64>()
        };
        prop_assert!(err(&f, &d_hi) <= err(&f, &d_lo) + 1e-6);
    }

    #[test]
    fn truncation_never_panics(f in frame_strategy(), cut in 0usize..100) {
        let enc = Encoder::new(Quality::CRF25);
        let mut e = enc.encode(&f);
        let keep = e.payload.len() * cut / 100;
        e.payload = e.payload.slice(0..keep);
        // Must return Ok or Err but never panic. (Truncation may still
        // decode successfully when the cut lands on a block boundary near
        // the end.)
        let _ = enc.decode(&e);
    }

    #[test]
    fn size_model_monotone_in_resolution(f in smooth_frame_strategy()) {
        let enc = Encoder::new(Quality::CRF25);
        let e = enc.encode(&f);
        let small = SizeModel { target_width: 1280, target_height: 720, h264_efficiency: 0.35 };
        let big = SizeModel { target_width: 3840, target_height: 2160, h264_efficiency: 0.35 };
        prop_assert!(small.scaled_bytes(&e) <= big.scaled_bytes(&e));
    }
}
