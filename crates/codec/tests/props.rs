//! Property-based tests for the transform codec, including scalar-vs-SIMD
//! parity for every kernel the codec dispatches through
//! [`coterie_parallel::simd`].

use coterie_codec::{DeltaEncoder, Encoder, Quality, SizeModel};
use coterie_frame::{ssim_with, LumaFrame, SsimOptions};
use coterie_parallel::simd::{self, SimdLevel};
use proptest::prelude::*;

fn frame_strategy() -> impl Strategy<Value = LumaFrame> {
    (8u32..48, 8u32..48).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0.0f32..=1.0, (w * h) as usize)
            .prop_map(move |data| LumaFrame::from_raw(w, h, data))
    })
}

/// Smooth frames (realistic content) for quality assertions; pure white
/// noise is the pathological worst case for any transform codec.
fn smooth_frame_strategy() -> impl Strategy<Value = LumaFrame> {
    (8u32..48, 8u32..48, 0u64..1000).prop_map(|(w, h, seed)| {
        LumaFrame::from_fn(w, h, |x, y| {
            let fx = x as f32 / w as f32;
            let fy = y as f32 / h as f32;
            let s = seed as f32 * 0.01;
            (0.5 + 0.3 * (fx * 6.0 + s).sin() * (fy * 5.0 - s).cos()).clamp(0.0, 1.0)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_frame_roundtrips_without_error(f in frame_strategy()) {
        for q in [Quality::CRF18, Quality::CRF25, Quality::CRF32] {
            let enc = Encoder::new(q);
            let encoded = enc.encode(&f);
            let decoded = enc.decode(&encoded);
            prop_assert!(decoded.is_ok(), "decode failed at {q:?}");
            let d = decoded.unwrap();
            prop_assert_eq!(d.width(), f.width());
            prop_assert_eq!(d.height(), f.height());
        }
    }

    #[test]
    fn decoded_pixels_stay_in_unit_range(f in frame_strategy()) {
        let enc = Encoder::new(Quality::CRF25);
        let decoded = enc.decode(&enc.encode(&f)).unwrap();
        for &v in decoded.data() {
            prop_assert!((0.0..=1.0).contains(&v), "pixel {v} escaped range");
        }
    }

    #[test]
    fn encoding_is_deterministic(f in frame_strategy()) {
        let enc = Encoder::new(Quality::CRF25);
        prop_assert_eq!(enc.encode(&f), enc.encode(&f));
    }

    #[test]
    fn smooth_content_decodes_faithfully(f in smooth_frame_strategy()) {
        let enc = Encoder::new(Quality::CRF25);
        let decoded = enc.decode(&enc.encode(&f)).unwrap();
        let s = ssim_with(&f, &decoded, &SsimOptions::fast());
        prop_assert!(s > 0.9, "smooth content should survive: SSIM {s:.3}");
    }

    #[test]
    fn higher_quality_never_larger_error(f in smooth_frame_strategy()) {
        let hi = Encoder::new(Quality::CRF18);
        let lo = Encoder::new(Quality::CRF32);
        let d_hi = hi.decode(&hi.encode(&f)).unwrap();
        let d_lo = lo.decode(&lo.encode(&f)).unwrap();
        let err = |a: &LumaFrame, b: &LumaFrame| {
            a.data().iter().zip(b.data()).map(|(x, y)| ((x - y) as f64).powi(2)).sum::<f64>()
        };
        prop_assert!(err(&f, &d_hi) <= err(&f, &d_lo) + 1e-6);
    }

    #[test]
    fn truncation_never_panics(f in frame_strategy(), cut in 0usize..100) {
        let enc = Encoder::new(Quality::CRF25);
        let mut e = enc.encode(&f);
        let keep = e.payload.len() * cut / 100;
        e.payload = e.payload.slice(0..keep);
        // Must return Ok or Err but never panic. (Truncation may still
        // decode successfully when the cut lands on a block boundary near
        // the end.)
        let _ = enc.decode(&e);
    }

    #[test]
    fn size_model_monotone_in_resolution(f in smooth_frame_strategy()) {
        let enc = Encoder::new(Quality::CRF25);
        let e = enc.encode(&f);
        let small = SizeModel { target_width: 1280, target_height: 720, h264_efficiency: 0.35 };
        let big = SizeModel { target_width: 3840, target_height: 2160, h264_efficiency: 0.35 };
        prop_assert!(small.scaled_bytes(&e) <= big.scaled_bytes(&e));
    }

    // --- scalar-vs-SIMD parity ------------------------------------------
    //
    // Integer/byte kernels must agree *exactly* across dispatch levels;
    // the f32 DCT gets the spec'd ≤1e-5 relative tolerance (in practice
    // the kernels replicate the scalar association and are bit-identical,
    // so these bounds are loose by design).

    #[test]
    fn quantize_zigzag_dequantize_parity_is_exact(
        coeffs in proptest::collection::vec(-512.0f32..512.0, 64),
        qraw in proptest::collection::vec(0.5f32..64.0, 64),
        order_raw in proptest::collection::vec(0i32..64, 64),
    ) {
        let coeffs: [f32; 64] = coeffs.try_into().unwrap();
        let qtable: [f32; 64] = qraw.try_into().unwrap();
        let order: [i32; 64] = order_raw.try_into().unwrap();
        let mut want_q = [0i32; 64];
        let want_zero = simd::quantize_8x8(&coeffs, &qtable, &mut want_q, SimdLevel::Scalar);
        let mut want_z = [0i32; 64];
        simd::zigzag_gather(&want_q, &order, &mut want_z, SimdLevel::Scalar);
        let mut want_d = [0.0f32; 64];
        simd::dequantize_8x8(&want_q, &qtable, &mut want_d, SimdLevel::Scalar);
        for level in simd::available_levels() {
            let mut got_q = [0i32; 64];
            let got_zero = simd::quantize_8x8(&coeffs, &qtable, &mut got_q, level);
            prop_assert_eq!(got_q, want_q, "quantize diverged at {:?}", level);
            prop_assert_eq!(got_zero, want_zero, "all_zero flag diverged at {:?}", level);
            let mut got_z = [0i32; 64];
            simd::zigzag_gather(&got_q, &order, &mut got_z, level);
            prop_assert_eq!(got_z, want_z, "zig-zag diverged at {:?}", level);
            let mut got_d = [0.0f32; 64];
            simd::dequantize_8x8(&got_q, &qtable, &mut got_d, level);
            for (g, w) in got_d.iter().zip(&want_d) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "dequantize diverged at {:?}", level);
            }
        }
    }

    #[test]
    fn delta_plane_kernels_parity_is_exact(
        a in proptest::collection::vec(-2.0f32..2.0, 67),
        b in proptest::collection::vec(-2.0f32..2.0, 67),
        s in -1.0f32..1.0,
    ) {
        // 67 elements: odd length exercises every SIMD tail path.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        let mut want_sub = vec![0.0f32; a.len()];
        simd::sub_planes_f32(&a, &b, &mut want_sub, SimdLevel::Scalar);
        let mut want_add = a.clone();
        simd::add_planes_f32(&mut want_add, &b, SimdLevel::Scalar);
        let mut want_subs = vec![0.0f32; a.len()];
        simd::sub_scalar_f32(&a, s, &mut want_subs, SimdLevel::Scalar);
        let mut want_adds = a.clone();
        simd::add_scalar_f32(&mut want_adds, s, SimdLevel::Scalar);
        let mut want_clamp = a.clone();
        simd::clamp_unit_f32(&mut want_clamp, SimdLevel::Scalar);
        let want_above = simd::any_abs_above(&a, 0.5, SimdLevel::Scalar);
        for level in simd::available_levels() {
            let mut got = vec![0.0f32; a.len()];
            simd::sub_planes_f32(&a, &b, &mut got, level);
            prop_assert_eq!(bits(&got), bits(&want_sub), "sub_planes diverged at {:?}", level);
            let mut got = a.clone();
            simd::add_planes_f32(&mut got, &b, level);
            prop_assert_eq!(bits(&got), bits(&want_add), "add_planes diverged at {:?}", level);
            let mut got = vec![0.0f32; a.len()];
            simd::sub_scalar_f32(&a, s, &mut got, level);
            prop_assert_eq!(bits(&got), bits(&want_subs), "sub_scalar diverged at {:?}", level);
            let mut got = a.clone();
            simd::add_scalar_f32(&mut got, s, level);
            prop_assert_eq!(bits(&got), bits(&want_adds), "add_scalar diverged at {:?}", level);
            let mut got = a.clone();
            simd::clamp_unit_f32(&mut got, level);
            prop_assert_eq!(bits(&got), bits(&want_clamp), "clamp_unit diverged at {:?}", level);
            prop_assert_eq!(
                simd::any_abs_above(&a, 0.5, level), want_above,
                "any_abs_above diverged at {:?}", level
            );
        }
    }

    #[test]
    fn dct_parity_within_tolerance(block in proptest::collection::vec(-0.5f32..0.5, 64)) {
        let block: [f32; 64] = block.try_into().unwrap();
        let dct = simd::Dct8x8::new();
        let mut want_f = [0.0f32; 64];
        dct.forward(&block, &mut want_f, SimdLevel::Scalar);
        let mut want_i = [0.0f32; 64];
        dct.inverse(&want_f, &mut want_i, SimdLevel::Scalar);
        for level in simd::available_levels() {
            let mut got_f = [0.0f32; 64];
            dct.forward(&block, &mut got_f, level);
            for (g, w) in got_f.iter().zip(&want_f) {
                let tol = 1e-5f32 * w.abs().max(1.0);
                prop_assert!((g - w).abs() <= tol, "forward DCT diverged at {level:?}: {g} vs {w}");
            }
            let mut got_i = [0.0f32; 64];
            dct.inverse(&got_f, &mut got_i, level);
            for (g, w) in got_i.iter().zip(&want_i) {
                let tol = 1e-5f32 * w.abs().max(1.0);
                prop_assert!((g - w).abs() <= tol, "inverse DCT diverged at {level:?}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn whole_codec_is_identical_across_levels(f in frame_strategy(), g in frame_strategy()) {
        // End-to-end: the kernels replicate scalar operation order, so the
        // *entire* intra and delta codec paths — bitstream included — must
        // agree bit-for-bit at every dispatch level.
        let want_enc = Encoder::with_simd_level(Quality::CRF25, SimdLevel::Scalar);
        let want = want_enc.encode(&f);
        let want_dec = want_enc.decode(&want).unwrap();
        for level in simd::available_levels() {
            let enc = Encoder::with_simd_level(Quality::CRF25, level);
            let e = enc.encode(&f);
            prop_assert_eq!(&e, &want, "intra bitstream diverged at {:?}", level);
            let d = enc.decode(&e).unwrap();
            prop_assert_eq!(d.data(), want_dec.data(), "intra decode diverged at {:?}", level);
        }
        // Delta path needs same-sized frames; resample g onto f's grid.
        let reference = LumaFrame::from_fn(f.width(), f.height(), |x, y| {
            g.sample_bilinear(
                x as f32 * g.width() as f32 / f.width() as f32,
                y as f32 * g.height() as f32 / f.height() as f32,
            )
        });
        let want_enc = DeltaEncoder::with_simd_level(Quality::CRF25, SimdLevel::Scalar);
        let want = want_enc.encode(&f, &reference);
        let want_dec = want_enc.decode(&want, &reference).unwrap();
        for level in simd::available_levels() {
            let enc = DeltaEncoder::with_simd_level(Quality::CRF25, level);
            let e = enc.encode(&f, &reference);
            prop_assert_eq!(&e, &want, "delta bitstream diverged at {:?}", level);
            let d = enc.decode(&e, &reference).unwrap();
            prop_assert_eq!(d.data(), want_dec.data(), "delta decode diverged at {:?}", level);
        }
    }
}
