//! Loopback integration: real server + real clients over UDS and TCP.
//!
//! These are the acceptance tests for the serving plane: N clients × M
//! frames with zero protocol errors, bounded egress under a slow
//! reader, and a graceful drain on shutdown.

use coterie_net::wire::{
    ByeReason, ResumeRejectReason, WireMessage, MIN_PROTO_VERSION, PROTO_VERSION,
};
use coterie_net::NetScenario;
use coterie_server::{
    loadgen, Endpoint, Listener, LoadConfig, Server, ServerConfig, CONTROL_OVERDRAFT_BYTES,
};
use coterie_telemetry::TelemetrySink;
use coterie_world::GameId;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("coterie-loop-{}-{tag}.sock", std::process::id()))
}

fn start_uds(tag: &str, config: ServerConfig) -> (Server, PathBuf) {
    let path = sock_path(tag);
    let listener = Listener::bind_uds(&path).expect("bind uds");
    let server = Server::start(listener, config, TelemetrySink::disabled()).expect("start");
    (server, path)
}

fn base_load(path: &Path, clients: usize, frames: u64) -> LoadConfig {
    LoadConfig {
        endpoint: Endpoint::Uds(path.to_path_buf()),
        clients,
        frames_per_client: frames,
        game: GameId::VikingVillage,
        rooms: 2,
        net: NetScenario::None,
        seed: 42,
        realtime: false,
        reconnect_at: None,
    }
}

/// The headline acceptance run: N clients × M frames over UDS, every
/// session completes the full protocol, zero errors on both sides,
/// clean shutdown with no connections left behind.
#[test]
fn n_clients_m_frames_over_uds_zero_errors() {
    let (server, path) = start_uds("accept", ServerConfig::default());
    let clients = 4;
    let frames = 50;
    let report = loadgen::run(&base_load(&path, clients, frames));
    let stats = server.stop();
    let _ = std::fs::remove_file(&path);

    assert_eq!(report.sessions, clients, "{}", report.summary_line());
    assert_eq!(
        report.sessions_completed,
        clients,
        "{}",
        report.summary_line()
    );
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.decode_failures, 0);
    // Every pose that left a client came back as exactly one frame
    // (FI background loss may skip a few sends; those never reach the
    // server, so both sides agree).
    assert_eq!(report.frames_received, report.poses_sent);
    assert_eq!(
        report.poses_sent + report.poses_lost,
        clients as u64 * frames
    );
    assert_eq!(stats.poses, report.poses_sent);
    assert_eq!(stats.frames_sent, report.frames_received);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.accepted, clients as u64);
    assert_eq!(stats.closed, clients as u64);
    assert_eq!(stats.live, 0);
    // Co-located players in a room share poses → the store serves hits.
    assert!(stats.store_hit_ratio > 0.0, "stats {stats:?}");
}

/// Same protocol over real TCP loopback.
#[test]
fn tcp_loopback_round_trips() {
    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind tcp");
    let server =
        Server::start(listener, ServerConfig::default(), TelemetrySink::disabled()).expect("start");
    let addr = server.local_addr().expect("tcp addr");
    let report = loadgen::run(&LoadConfig {
        endpoint: Endpoint::Tcp(addr.to_string()),
        clients: 2,
        frames_per_client: 20,
        ..base_load(&PathBuf::new(), 2, 20)
    });
    let stats = server.stop();
    assert_eq!(report.sessions_completed, 2, "{}", report.summary_line());
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(report.frames_received, report.poses_sent);
}

/// Reads until the next message, with a deadline.
fn read_msg(
    stream: &mut UnixStream,
    asm: &mut coterie_net::FrameAssembler,
    deadline: Duration,
) -> Option<WireMessage> {
    let start = Instant::now();
    let mut buf = [0u8; 8192];
    loop {
        if let Ok(Some(m)) = asm.next_message() {
            return Some(m);
        }
        if start.elapsed() > deadline {
            return None;
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => asm.push(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
            Err(_) => return None,
        }
    }
}

fn hello() -> Vec<u8> {
    WireMessage::Hello {
        proto: PROTO_VERSION,
        game: GameId::VikingVillage,
        room: 0,
        seed: 42,
    }
    .encode_frame()
}

fn pose(seq: u64) -> Vec<u8> {
    WireMessage::Pose {
        seq,
        t_ms: seq as f64 * 16.7,
        x: (seq % 7) as f64 * 0.25,
        z: (seq % 5) as f64 * 0.25,
        yaw: 0.0,
    }
    .encode_frame()
}

/// A reader that joins, then sends poses without ever reading: the
/// egress queue must cap at the configured limit (+ control overdraft),
/// frames must drop rather than accumulate, and the server must keep
/// serving other clients.
#[test]
fn slow_reader_egress_stays_bounded_and_drops_frames() {
    let egress_limit = 16 * 1024;
    let (server, path) = start_uds(
        "slow",
        ServerConfig {
            egress_limit_bytes: egress_limit,
            ..ServerConfig::default()
        },
    );

    let mut stream = UnixStream::connect(&path).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stream.write_all(&hello()).expect("hello");
    let mut asm = coterie_net::FrameAssembler::new();
    let welcome = read_msg(&mut stream, &mut asm, Duration::from_secs(5));
    assert!(matches!(welcome, Some(WireMessage::Welcome { .. })));

    // Flood poses; never read. The kernel socket buffer fills first,
    // then the server-side egress queue, then frames drop.
    for seq in 0..600u64 {
        stream.write_all(&pose(seq)).expect("pose");
    }

    // Wait until the server has chewed through all 600 poses.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let s = server.stats();
        if s.poses >= 600 || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stats();
    assert_eq!(stats.poses, 600, "server never saw the flood: {stats:?}");
    assert!(stats.frames_dropped > 0, "no backpressure drops: {stats:?}");

    // The per-connection queue high-water mark is folded into the
    // shared counters when the connection closes.
    drop(stream);
    let final_stats = server.stop();
    let _ = std::fs::remove_file(&path);
    assert_eq!(final_stats.live, 0);
    assert!(
        final_stats.peak_queue_bytes > 0,
        "queue never filled: {final_stats:?}"
    );
    assert!(
        final_stats.peak_queue_bytes <= (egress_limit + CONTROL_OVERDRAFT_BYTES) as u64,
        "egress queue exceeded its bound: {final_stats:?}"
    );
}

/// Shutdown while a session is mid-stream: the client receives a
/// `Goodbye(Shutdown)` notice, not a silent reset.
#[test]
fn shutdown_drains_with_goodbye() {
    let (server, path) = start_uds("drain", ServerConfig::default());

    let mut stream = UnixStream::connect(&path).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stream.write_all(&hello()).expect("hello");
    let mut asm = coterie_net::FrameAssembler::new();
    assert!(matches!(
        read_msg(&mut stream, &mut asm, Duration::from_secs(5)),
        Some(WireMessage::Welcome { .. })
    ));
    stream.write_all(&pose(0)).expect("pose");
    assert!(matches!(
        read_msg(&mut stream, &mut asm, Duration::from_secs(5)),
        Some(WireMessage::Frame { .. })
    ));

    let stopper = std::thread::spawn(move || server.stop());
    let mut saw_goodbye = false;
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match read_msg(&mut stream, &mut asm, Duration::from_secs(1)) {
            Some(WireMessage::Goodbye { reason }) => {
                assert_eq!(reason, ByeReason::Shutdown);
                saw_goodbye = true;
                break;
            }
            Some(_) => continue,
            None => break,
        }
    }
    let stats = stopper.join().expect("stop joins");
    let _ = std::fs::remove_file(&path);
    assert!(saw_goodbye, "no shutdown goodbye (stats {stats:?})");
    assert_eq!(stats.live, 0);
}

/// An out-of-window protocol version is answered with the structured
/// supported range, then the connection is torn down without
/// disturbing the server.
#[test]
fn bad_version_is_rejected_with_supported_window() {
    let (server, path) = start_uds("badver", ServerConfig::default());
    let mut stream = UnixStream::connect(&path).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stream
        .write_all(
            &WireMessage::Hello {
                proto: PROTO_VERSION + 1,
                game: GameId::VikingVillage,
                room: 0,
                seed: 42,
            }
            .encode_frame(),
        )
        .expect("hello");
    let mut asm = coterie_net::FrameAssembler::new();
    let reply = read_msg(&mut stream, &mut asm, Duration::from_secs(5));
    match reply {
        Some(WireMessage::VersionReject { min, max }) => {
            assert_eq!(min, MIN_PROTO_VERSION);
            assert_eq!(max, PROTO_VERSION);
        }
        other => panic!("expected VersionReject, got {other:?}"),
    }
    let stats = server.stop();
    let _ = std::fs::remove_file(&path);
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.versions_rejected, 1);
}

/// A dropped socket (no `Bye`) parks the session; a fresh connection
/// presenting the `Welcome` token within the TTL resumes the same
/// room/player identity with quality state intact, and the session
/// keeps serving frames.
#[test]
fn dropped_session_resumes_by_token_within_ttl() {
    let (server, path) = start_uds("resume", ServerConfig::default());

    let mut stream = UnixStream::connect(&path).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stream.write_all(&hello()).expect("hello");
    let mut asm = coterie_net::FrameAssembler::new();
    let (room, player, token) = match read_msg(&mut stream, &mut asm, Duration::from_secs(5)) {
        Some(WireMessage::Welcome {
            room,
            player,
            token,
            ..
        }) => (room, player, token.expect("v3 welcome carries a token")),
        other => panic!("expected Welcome, got {other:?}"),
    };
    stream.write_all(&pose(0)).expect("pose");
    assert!(matches!(
        read_msg(&mut stream, &mut asm, Duration::from_secs(5)),
        Some(WireMessage::Frame { .. })
    ));

    // Dead link: drop the socket with no Bye, give the server a poll
    // tick to park the session.
    drop(stream);
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().sessions_parked == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().sessions_parked, 1, "session never parked");

    let mut stream = UnixStream::connect(&path).expect("reconnect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stream
        .write_all(
            &WireMessage::Resume {
                proto: PROTO_VERSION,
                token,
            }
            .encode_frame(),
        )
        .expect("resume");
    let mut asm = coterie_net::FrameAssembler::new();
    match read_msg(&mut stream, &mut asm, Duration::from_secs(5)) {
        Some(WireMessage::Welcome {
            room: r,
            player: p,
            token: t,
            ..
        }) => {
            assert_eq!((r, p), (room, player), "resume changed the identity");
            assert!(t.is_some(), "resumed welcome carries a fresh token");
        }
        other => panic!("expected resumed Welcome, got {other:?}"),
    }
    // The resumed session keeps serving: pose → frame still works.
    stream.write_all(&pose(1)).expect("pose after resume");
    assert!(matches!(
        read_msg(&mut stream, &mut asm, Duration::from_secs(5)),
        Some(WireMessage::Frame { .. })
    ));
    stream.write_all(&WireMessage::Bye.encode_frame()).unwrap();
    assert!(matches!(
        read_msg(&mut stream, &mut asm, Duration::from_secs(5)),
        Some(WireMessage::Goodbye { .. })
    ));

    let stats = server.stop();
    let _ = std::fs::remove_file(&path);
    assert_eq!(stats.sessions_parked, 1);
    assert_eq!(stats.sessions_resumed, 1);
    assert_eq!(stats.resume_rejects, 0);
    assert_eq!(stats.protocol_errors, 0);
}

/// With a zero TTL every parked session is already expired when the
/// `Resume` arrives: the server answers with a structured
/// `ResumeReject(Expired)`, not a silent drop or an Unknown.
#[test]
fn expired_resume_token_gets_structured_reject() {
    let (server, path) = start_uds(
        "expire",
        ServerConfig {
            resume_ttl_ms: 0,
            ..ServerConfig::default()
        },
    );

    let mut stream = UnixStream::connect(&path).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stream.write_all(&hello()).expect("hello");
    let mut asm = coterie_net::FrameAssembler::new();
    let token = match read_msg(&mut stream, &mut asm, Duration::from_secs(5)) {
        Some(WireMessage::Welcome { token, .. }) => token.expect("token"),
        other => panic!("expected Welcome, got {other:?}"),
    };
    drop(stream);
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().sessions_parked == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut stream = UnixStream::connect(&path).expect("reconnect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stream
        .write_all(
            &WireMessage::Resume {
                proto: PROTO_VERSION,
                token,
            }
            .encode_frame(),
        )
        .expect("resume");
    let mut asm = coterie_net::FrameAssembler::new();
    match read_msg(&mut stream, &mut asm, Duration::from_secs(5)) {
        Some(WireMessage::ResumeReject { reason }) => {
            assert_eq!(reason, ResumeRejectReason::Expired);
        }
        other => panic!("expected ResumeReject(Expired), got {other:?}"),
    }
    let stats = server.stop();
    let _ = std::fs::remove_file(&path);
    assert_eq!(stats.resume_rejects, 1);
}

/// A token the server never issued (bad signature) is rejected as
/// malformed without touching any session state.
#[test]
fn forged_resume_token_is_rejected_as_malformed() {
    let (server, path) = start_uds("forged", ServerConfig::default());
    let mut stream = UnixStream::connect(&path).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stream
        .write_all(
            &WireMessage::Resume {
                proto: PROTO_VERSION,
                token: [0xAB; coterie_net::wire::TOKEN_BYTES],
            }
            .encode_frame(),
        )
        .expect("resume");
    let mut asm = coterie_net::FrameAssembler::new();
    match read_msg(&mut stream, &mut asm, Duration::from_secs(5)) {
        Some(WireMessage::ResumeReject { reason }) => {
            assert_eq!(reason, ResumeRejectReason::Malformed);
        }
        other => panic!("expected ResumeReject(Malformed), got {other:?}"),
    }
    let stats = server.stop();
    let _ = std::fs::remove_file(&path);
    assert_eq!(stats.resume_rejects, 1);
    assert_eq!(stats.sessions_resumed, 0);
}

/// The load generator's churn mode end to end: every client drops its
/// socket mid-run and resumes by token; all sessions still complete
/// cleanly and quality state survives the drop.
#[test]
fn loadgen_reconnect_mode_resumes_every_session() {
    let (server, path) = start_uds("lgresume", ServerConfig::default());
    let clients = 3;
    let mut config = base_load(&path, clients, 30);
    config.reconnect_at = Some(15);
    let report = loadgen::run(&config);
    let stats = server.stop();
    let _ = std::fs::remove_file(&path);

    assert_eq!(
        report.sessions_completed,
        clients,
        "{}",
        report.summary_line()
    );
    assert_eq!(report.sessions_resumed, clients as u64);
    assert_eq!(report.resume_rejects, 0);
    assert_eq!(report.resume_scale_mismatches, 0);
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(stats.sessions_parked, clients as u64);
    assert_eq!(stats.sessions_resumed, clients as u64);
    assert!(report.summary_line().contains("resumed"));
}

/// Version negotiation keeps old clients working: a v1 `Hello` joins
/// and completes a pose → frame exchange exactly like a current one.
#[test]
fn v1_client_is_still_served() {
    let (server, path) = start_uds("v1", ServerConfig::default());
    let mut stream = UnixStream::connect(&path).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stream
        .write_all(
            &WireMessage::Hello {
                proto: MIN_PROTO_VERSION,
                game: GameId::VikingVillage,
                room: 0,
                seed: 42,
            }
            .encode_frame(),
        )
        .expect("hello");
    let mut asm = coterie_net::FrameAssembler::new();
    match read_msg(&mut stream, &mut asm, Duration::from_secs(5)) {
        Some(WireMessage::Welcome { token, .. }) => {
            assert!(token.is_none(), "v1 welcome must not grow a token tail");
        }
        other => panic!("expected Welcome, got {other:?}"),
    }
    stream.write_all(&pose(0)).expect("pose");
    assert!(matches!(
        read_msg(&mut stream, &mut asm, Duration::from_secs(5)),
        Some(WireMessage::Frame { .. })
    ));
    drop(stream);
    let stats = server.stop();
    let _ = std::fs::remove_file(&path);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.versions_rejected, 0);
}
