//! Two-shard fleet over UDS: two real servers, two coordinators, and a
//! client session proving that frames rendered on one worker process
//! serve store hits on the other — the socket-plane acceptance test for
//! the sharded store.

use coterie_net::wire::{WireMessage, PROTO_VERSION};
use coterie_server::{Endpoint, Listener, Server, ServerConfig, ShardCoordinator, ShardPlan};
use coterie_telemetry::TelemetrySink;
use coterie_world::{GameId, Vec2};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn sock_path(shard: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "coterie-shard-uds-{}-{shard}.sock",
        std::process::id()
    ))
}

fn start_shard(path: &std::path::Path) -> Server {
    let listener = Listener::bind_uds(path).expect("bind uds");
    Server::start(listener, ServerConfig::default(), TelemetrySink::disabled()).expect("start")
}

fn read_msg(
    stream: &mut UnixStream,
    asm: &mut coterie_net::FrameAssembler,
    deadline: Duration,
) -> Option<WireMessage> {
    let start = Instant::now();
    let mut buf = [0u8; 8192];
    loop {
        if let Ok(Some(m)) = asm.next_message() {
            return Some(m);
        }
        if start.elapsed() > deadline {
            return None;
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => asm.push(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
            Err(_) => return None,
        }
    }
}

/// A client session against shard 0 renders frames; the coordinators
/// replicate them; the same positions served from shard 1's core are
/// store hits with byte-identical payloads, no render.
#[test]
fn cross_shard_hits_land_over_uds() {
    let paths = [sock_path(0), sock_path(1)];
    let server_a = start_shard(&paths[0]);
    let server_b = start_shard(&paths[1]);
    let coord_a = ShardCoordinator::start(
        server_a.service().clone(),
        ShardPlan {
            shard: 0,
            shards: 2,
            peers: vec![Endpoint::Uds(paths[1].clone())],
        },
    );
    let coord_b = ShardCoordinator::start(
        server_b.service().clone(),
        ShardPlan {
            shard: 1,
            shards: 2,
            peers: vec![Endpoint::Uds(paths[0].clone())],
        },
    );

    // One raw session on shard 0: three poses at distinct positions.
    let mut stream = UnixStream::connect(&paths[0]).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stream
        .write_all(
            &WireMessage::Hello {
                proto: PROTO_VERSION,
                game: GameId::VikingVillage,
                room: 0,
                seed: 42,
            }
            .encode_frame(),
        )
        .expect("hello");
    let mut asm = coterie_net::FrameAssembler::new();
    assert!(matches!(
        read_msg(&mut stream, &mut asm, Duration::from_secs(5)),
        Some(WireMessage::Welcome { .. })
    ));
    let positions = [(0.0, 0.0), (2.0, 0.0), (0.0, 2.0)];
    let mut payloads = Vec::new();
    for (seq, (x, z)) in positions.iter().enumerate() {
        stream
            .write_all(
                &WireMessage::Pose {
                    seq: seq as u64,
                    t_ms: seq as f64 * 16.7,
                    x: *x,
                    z: *z,
                    yaw: 0.0,
                }
                .encode_frame(),
            )
            .expect("pose");
        match read_msg(&mut stream, &mut asm, Duration::from_secs(5)) {
            Some(WireMessage::Frame { payload, .. }) => payloads.push(payload),
            other => panic!("expected Frame, got {other:?}"),
        }
    }
    stream
        .write_all(&WireMessage::Bye.encode_frame())
        .expect("bye");

    // The exchange plane ships the renders to shard 1.
    let deadline = Instant::now() + Duration::from_secs(10);
    while (server_b.service().stats().shard_frames_applied as usize) < positions.len() {
        assert!(
            Instant::now() < deadline,
            "shard 1 never received the frames: {:?}",
            server_b.service().stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The same positions on shard 1 are hits, byte for byte.
    let service_b = server_b.service().clone();
    service_b.join(GameId::VikingVillage, 0);
    for ((x, z), sent) in positions.iter().zip(&payloads) {
        let reply = service_b.frame_for(GameId::VikingVillage, 0, Vec2::new(*x, *z), 0);
        assert!(reply.store_hit, "({x}, {z}) must be a cross-shard hit");
        assert_eq!(&reply.encoded.payload.to_vec(), sent, "payload diverged");
    }
    assert_eq!(service_b.stats().store_misses, 0, "shard 1 never rendered");

    drop(stream);
    let ca = coord_a.stop();
    let cb = coord_b.stop();
    assert!(ca.frames_out >= positions.len() as u64, "{ca:?}");
    assert_eq!(cb.link_failures, 0, "{cb:?}");
    let sa = server_a.stop();
    let sb = server_b.stop();
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
    assert_eq!(sa.protocol_errors, 0, "{sa:?}");
    assert_eq!(sb.protocol_errors, 0, "{sb:?}");
    assert!(sb.shard_frames_in >= positions.len() as u64, "{sb:?}");
    assert_eq!(sa.live, 0);
    assert_eq!(sb.live, 0);
}
