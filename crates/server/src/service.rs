//! The serving core: everything between a decoded `Pose` and an
//! encoded `Frame`, shared by all worker threads.
//!
//! [`ServiceCore`] hosts the `coterie-serve` fleet machinery behind the
//! wire protocol: the cross-room frame store (any [`FrameStore`]
//! backend — a private [`LocalStore`] by default, or one shard of a
//! fleet-wide store wired up by a shard coordinator) answers the
//! paper's three-criteria similarity lookup (session-id-free, so any
//! room's frames serve any room of the same game), the
//! [`PrerenderFarm`] turns misses into speculative neighbour renders,
//! and a per-room quality controller converts egress-queue drops into
//! degrade notices — the paper's "ship smaller frames until the link
//! recovers" loop, driven by *measured* socket backpressure instead of
//! a simulated budget.
//!
//! The store tracks identity and byte accounting only; the codec-encoded
//! payloads live in a bounded FIFO payload cache alongside it. Frames
//! are produced by a deterministic procedural renderer (a cheap smooth
//! luma field seeded by the grid point) and encoded with the real
//! `coterie-codec` transform — real serialization cost on the server,
//! real decode cost on the client, without dragging the full panorama
//! renderer into the per-request path.

use coterie_codec::{EncodedFrame, Encoder, Quality};
use coterie_core::cache::{CacheQuery, FrameMeta};
use coterie_frame::LumaFrame;
use coterie_serve::farm::PrerenderFarm;
use coterie_serve::{FrameStore, LocalStore, StoreConfig};
use coterie_telemetry::{Stage, TelemetrySink, TrackId, SERVE_PID, VSYNC_BUDGET_MS};
use coterie_world::{GameId, GameSpec, GridPoint, LeafId, Scene, Vec2};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Consecutive dropped frames on a room before its scale degrades.
pub const DEGRADE_AFTER_DROPS: u32 = 4;
/// Consecutive clean deliveries before a degraded room recovers a step.
pub const RECOVER_AFTER_CLEAN: u32 = 64;
/// Multiplicative degrade step, per-mille scale.
pub const DEGRADE_STEP: f64 = 0.75;
/// Multiplicative recovery step.
pub const RECOVER_STEP: f64 = 1.15;
/// Floor the controller never degrades below, per-mille.
pub const MIN_SCALE_PM: u16 = 250;

/// Room size the affinity placement policy packs up to — the paper's
/// four-player sessions. Rooms at or past this are not affinity
/// targets (the requested room is honored instead).
pub const AFFINITY_ROOM_CAP: u32 = 4;

/// Base far-BE frame width at full scale, px. Height is half (the
/// far-field band of an equirect panorama).
pub const BASE_WIDTH: u32 = 128;

/// Payload-cache entry cap. The frame store owns the byte budget and
/// LRU; this FIFO cap only bounds the payload map when store churn
/// outpaces it.
const PAYLOAD_CACHE_ENTRIES: usize = 4096;

/// Bound on the inter-shard share outbox. A worker with no coordinator
/// attached never queues; with one attached, a stalled peer link sheds
/// the oldest shares first (they are the most likely to have been
/// rendered by the peer itself by now).
const SHARD_OUTBOX_ENTRIES: usize = 1024;

/// Per-game world state, built lazily on first join.
struct World {
    scene: Scene,
    spec: GameSpec,
    /// Similarity threshold for store lookups, meters.
    dist_thresh: f64,
    /// Near-set radius fed to criterion 3's hash, meters.
    near_radius: f64,
}

/// Per-room controller state.
struct RoomState {
    next_player: u32,
    players: u32,
    scale_pm: u16,
    drop_streak: u32,
    clean_streak: u32,
    /// Last scale that survived a full clean streak.
    last_stable_pm: u16,
    /// Recovery never climbs past this; lowered to `last_stable_pm`
    /// when a higher scale degrades, so the controller converges on the
    /// highest sustainable scale instead of ping-ponging across it.
    /// Sticky for the room's lifetime (rooms reset when they empty).
    ceiling_pm: u16,
}

/// The result of serving one pose.
pub struct FrameReply {
    /// The encoded far-BE frame.
    pub encoded: Arc<EncodedFrame>,
    /// Whether the shared store already had a similar frame.
    pub store_hit: bool,
    /// The room's current quality scale, per-mille.
    pub scale_pm: u16,
}

/// Aggregate service counters (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Poses served with a frame reply.
    pub frames_served: u64,
    /// Replies answered from the shared store.
    pub store_hits: u64,
    /// Replies that rendered + encoded on demand.
    pub store_misses: u64,
    /// Degrade / recover notices generated.
    pub scale_changes: u64,
    /// Freshly rendered frames queued for inter-shard sharing.
    pub shard_frames_shared: u64,
    /// Peer-rendered frames applied into the local store.
    pub shard_frames_applied: u64,
}

/// One freshly rendered frame queued for the shard coordinator to ship
/// to peer workers: everything a peer needs to admit the frame into its
/// own store and payload cache without re-rendering.
#[derive(Clone)]
pub struct ShardShare {
    /// Game the frame belongs to.
    pub game: GameId,
    /// Frame identity (grid point, position, leaf, near set).
    pub meta: FrameMeta,
    /// The encoded payload, shared with the local payload cache.
    pub encoded: Arc<EncodedFrame>,
    /// Scale the frame was rendered at, per-mille.
    pub scale_pm: u16,
}

/// Shared serving state; one per server, `Arc`-shared across workers.
pub struct ServiceCore {
    worlds: Mutex<HashMap<GameId, Arc<World>>>,
    store: Arc<dyn FrameStore>,
    payloads: Mutex<PayloadCache>,
    farm: Mutex<PrerenderFarm>,
    rooms: Mutex<HashMap<(GameId, u32), RoomState>>,
    stats: Mutex<ServiceStats>,
    shard_outbox: Mutex<ShardOutbox>,
    encoder: Encoder,
    telemetry: TelemetrySink,
    world_seed: u64,
}

/// Inter-shard share queue; disabled (and empty) until a coordinator
/// calls [`ServiceCore::enable_shard_sharing`].
struct ShardOutbox {
    enabled: bool,
    queue: VecDeque<ShardShare>,
}

struct PayloadCache {
    map: HashMap<(GameId, u64, u16), Arc<EncodedFrame>>,
    order: VecDeque<(GameId, u64, u16)>,
}

impl ServiceCore {
    /// A core with the given store budget and telemetry sink (pass a
    /// disabled sink for untraced runs). The store is a private
    /// [`LocalStore`] — today's single-process behaviour, byte for
    /// byte.
    pub fn new(store_bytes: u64, world_seed: u64, telemetry: TelemetrySink) -> ServiceCore {
        ServiceCore::with_store(
            Arc::new(LocalStore::new(StoreConfig {
                capacity_bytes: store_bytes,
                ..StoreConfig::default()
            })),
            world_seed,
            telemetry,
        )
    }

    /// A core serving from the given [`FrameStore`] backend — the
    /// construction-time seam that makes backends swappable (a private
    /// [`LocalStore`], one shard of a fleet store, a test double).
    pub fn with_store(
        store: Arc<dyn FrameStore>,
        world_seed: u64,
        telemetry: TelemetrySink,
    ) -> ServiceCore {
        ServiceCore {
            worlds: Mutex::new(HashMap::new()),
            store,
            payloads: Mutex::new(PayloadCache {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            farm: Mutex::new(PrerenderFarm::new()),
            rooms: Mutex::new(HashMap::new()),
            stats: Mutex::new(ServiceStats::default()),
            shard_outbox: Mutex::new(ShardOutbox {
                enabled: false,
                queue: VecDeque::new(),
            }),
            encoder: Encoder::new(Quality::CRF25),
            telemetry,
            world_seed,
        }
    }

    /// The frame store (occupancy gauges, hit-ratio reporting).
    pub fn store(&self) -> &dyn FrameStore {
        self.store.as_ref()
    }

    /// Starts queueing freshly rendered frames for a shard coordinator
    /// to ship to peer workers.
    pub fn enable_shard_sharing(&self) {
        self.shard_outbox.lock().enabled = true;
    }

    /// Drains the queued shard shares (coordinator-side; empty unless
    /// [`ServiceCore::enable_shard_sharing`] was called).
    pub fn drain_shard_shares(&self) -> Vec<ShardShare> {
        self.shard_outbox.lock().queue.drain(..).collect()
    }

    /// Admits a peer worker's rendered frame: identity into the store,
    /// payload into the cache, so the next local pose near it is a hit
    /// without a render. Returns whether the store admitted it.
    pub fn apply_shard_frame(
        &self,
        game: GameId,
        meta: FrameMeta,
        encoded: Arc<EncodedFrame>,
        scale_pm: u16,
    ) -> bool {
        let admitted = self.store.insert(game, meta, encoded.size_bytes() as u64);
        if admitted {
            let key = (game, meta.grid.key(), scale_pm);
            let mut p = self.payloads.lock();
            if p.map.insert(key, encoded).is_none() {
                p.order.push_back(key);
                while p.order.len() > PAYLOAD_CACHE_ENTRIES {
                    if let Some(old) = p.order.pop_front() {
                        p.map.remove(&old);
                    }
                }
            }
            self.stats.lock().shard_frames_applied += 1;
        }
        admitted
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> ServiceStats {
        *self.stats.lock()
    }

    /// The vsync budget advertised in `Welcome`.
    pub fn budget_ms(&self) -> f64 {
        VSYNC_BUDGET_MS
    }

    fn world(&self, game: GameId) -> Arc<World> {
        let mut worlds = self.worlds.lock();
        worlds
            .entry(game)
            .or_insert_with(|| {
                let spec = GameSpec::for_game(game);
                let scene = spec.build_scene(self.world_seed);
                let spacing = scene.grid().spacing();
                Arc::new(World {
                    scene,
                    spec,
                    dist_thresh: spacing * 0.75,
                    near_radius: spacing * 2.0,
                })
            })
            .clone()
    }

    /// The game's spec and scene, for trajectory-driven tooling that
    /// wants to share the server's lazily-built world.
    pub fn world_handles(&self, game: GameId) -> (GameSpec, Arc<Scene>) {
        // The load generator builds its own scene from the same seed;
        // this accessor exists for in-process harnesses.
        let w = self.world(game);
        (
            w.spec.clone(),
            Arc::new(w.spec.build_scene(self.world_seed)),
        )
    }

    /// Admits a player into `(game, room)` and returns its player id
    /// and the room's current scale.
    pub fn join(&self, game: GameId, room: u32) -> (u32, u16) {
        // Touch the world so first-pose latency doesn't pay scene
        // construction.
        let _ = self.world(game);
        let mut rooms = self.rooms.lock();
        let state = rooms.entry((game, room)).or_insert(RoomState {
            next_player: 0,
            players: 0,
            scale_pm: 1000,
            drop_streak: 0,
            clean_streak: 0,
            last_stable_pm: 1000,
            ceiling_pm: 1000,
        });
        let player = state.next_player;
        state.next_player += 1;
        state.players += 1;
        (player, state.scale_pm)
    }

    /// Affinity placement: the fullest same-game room still under
    /// [`AFFINITY_ROOM_CAP`] players, falling back to the requested
    /// room when none qualifies. Packing players of the same game into
    /// shared rooms is the serving-plane analogue of the fleet
    /// matchmaker's overlap scoring — more co-located players means
    /// more three-criteria store hits. Ties break toward the lowest
    /// room id, so placement is deterministic despite map iteration.
    pub fn place_affinity(&self, game: GameId, requested: u32) -> u32 {
        let rooms = self.rooms.lock();
        rooms
            .iter()
            .filter(|((g, _), state)| *g == game && state.players < AFFINITY_ROOM_CAP)
            .max_by_key(|((_, room), state)| (state.players, std::cmp::Reverse(*room)))
            .map(|((_, room), _)| *room)
            .unwrap_or(requested)
    }

    /// Removes a player from its room; empty rooms reset their
    /// controller on the next join.
    pub fn leave(&self, game: GameId, room: u32) {
        let mut rooms = self.rooms.lock();
        if let Some(state) = rooms.get_mut(&(game, room)) {
            state.players = state.players.saturating_sub(1);
            if state.players == 0 {
                rooms.remove(&(game, room));
            }
        }
    }

    /// Feeds the room's quality controller one delivery outcome.
    /// Returns the new scale if it changed (a `Degrade` notice should
    /// be sent to the room's connections).
    ///
    /// Recovery is ceiling-bounded: a full clean streak marks the
    /// current scale stable, and a degrade at a higher scale lowers the
    /// recovery ceiling to that last stable level. Without the ceiling
    /// the controller re-probes a known-bad scale every
    /// [`RECOVER_AFTER_CLEAN`] frames and oscillates degrade/recover
    /// forever on a link whose capacity sits between two steps.
    pub fn note_delivery(&self, game: GameId, room: u32, dropped: bool) -> Option<u16> {
        let mut rooms = self.rooms.lock();
        let state = rooms.get_mut(&(game, room))?;
        if dropped {
            state.drop_streak += 1;
            state.clean_streak = 0;
            if state.drop_streak >= DEGRADE_AFTER_DROPS {
                state.drop_streak = 0;
                // This scale drops frames; cap future recovery at the
                // last level that demonstrably did not.
                if state.last_stable_pm < state.scale_pm {
                    state.ceiling_pm = state.last_stable_pm;
                }
                let next = ((state.scale_pm as f64 * DEGRADE_STEP) as u16).max(MIN_SCALE_PM);
                if next != state.scale_pm {
                    state.scale_pm = next;
                    self.stats.lock().scale_changes += 1;
                    return Some(next);
                }
            }
        } else {
            state.clean_streak += 1;
            state.drop_streak = 0;
            if state.clean_streak >= RECOVER_AFTER_CLEAN {
                state.clean_streak = 0;
                state.last_stable_pm = state.scale_pm;
                let next = ((state.scale_pm as f64 * RECOVER_STEP) as u16)
                    .min(1000)
                    .min(state.ceiling_pm);
                if next > state.scale_pm {
                    state.scale_pm = next;
                    self.stats.lock().scale_changes += 1;
                    return Some(next);
                }
            }
        }
        None
    }

    /// Serves one pose: a store lookup, then (on miss) a procedural
    /// render + real encode, neighbour speculation queued to the farm.
    /// `worker` is the trace track the spans land on.
    pub fn frame_for(&self, game: GameId, room: u32, pos: Vec2, worker: u32) -> FrameReply {
        let world = self.world(game);
        let grid = world.scene.grid().snap(pos);
        let gpos = world.scene.grid().position(grid);
        let near_hash = world.scene.near_set_hash(gpos, world.near_radius);
        let leaf = leaf_of(grid);
        let scale_pm = {
            let rooms = self.rooms.lock();
            rooms.get(&(game, room)).map(|r| r.scale_pm).unwrap_or(1000)
        };

        let track = TrackId {
            pid: SERVE_PID,
            tid: worker,
        };
        let query = CacheQuery {
            grid,
            pos: gpos,
            leaf,
            near_hash,
            dist_thresh: world.dist_thresh,
        };

        let t0 = self.telemetry.now_ms();
        let store_hit = self.store.lookup(game, &query);
        self.telemetry.span(
            track,
            Stage::CacheLookup,
            "store-lookup",
            t0,
            self.telemetry.now_ms() - t0,
            0,
        );

        let key = (game, grid.key(), scale_pm);
        let cached = if store_hit {
            self.payloads.lock().map.get(&key).cloned()
        } else {
            None
        };

        let encoded = match cached {
            Some(e) => e,
            None => {
                let t1 = self.telemetry.now_ms();
                let luma = procedural_far_frame(grid, near_hash, scale_pm);
                self.telemetry.span(
                    track,
                    Stage::Render,
                    "far-render",
                    t1,
                    self.telemetry.now_ms() - t1,
                    0,
                );
                let t2 = self.telemetry.now_ms();
                let encoded = Arc::new(self.encoder.encode(&luma));
                self.telemetry.span(
                    track,
                    Stage::Encode,
                    "far-encode",
                    t2,
                    self.telemetry.now_ms() - t2,
                    0,
                );
                let meta = FrameMeta {
                    grid,
                    pos: gpos,
                    leaf,
                    near_hash,
                };
                let bytes = encoded.size_bytes() as u64;
                self.store.insert(game, meta, bytes);
                {
                    let mut p = self.payloads.lock();
                    if p.map.insert(key, encoded.clone()).is_none() {
                        p.order.push_back(key);
                        while p.order.len() > PAYLOAD_CACHE_ENTRIES {
                            if let Some(old) = p.order.pop_front() {
                                p.map.remove(&old);
                            }
                        }
                    }
                }
                self.farm
                    .lock()
                    .enqueue_neighbors(0, game, meta, bytes, world.dist_thresh);
                {
                    let mut outbox = self.shard_outbox.lock();
                    if outbox.enabled {
                        if outbox.queue.len() >= SHARD_OUTBOX_ENTRIES {
                            outbox.queue.pop_front();
                        }
                        outbox.queue.push_back(ShardShare {
                            game,
                            meta,
                            encoded: encoded.clone(),
                            scale_pm,
                        });
                        self.stats.lock().shard_frames_shared += 1;
                    }
                }
                encoded
            }
        };

        {
            let mut stats = self.stats.lock();
            stats.frames_served += 1;
            if store_hit {
                stats.store_hits += 1;
            } else {
                stats.store_misses += 1;
            }
        }
        FrameReply {
            encoded,
            store_hit,
            scale_pm,
        }
    }

    /// Periodic maintenance: sweeps the pre-render farm into the store.
    /// Workers call this between poll iterations; it is cheap when the
    /// farm is empty.
    pub fn maintain(&self, worker: u32) {
        let mut farm = self.farm.lock();
        if farm.pending() == 0 {
            return;
        }
        let t0 = self.telemetry.now_ms();
        farm.drain_into(&[self.store.as_ref()]);
        self.telemetry.span(
            TrackId {
                pid: SERVE_PID,
                tid: worker,
            },
            Stage::Farm,
            "farm-drain",
            t0,
            self.telemetry.now_ms() - t0,
            0,
        );
    }

    /// The telemetry sink the core records into.
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }
}

/// Uniform leaf tiling: 8×8 grid-point regions. The single-session
/// pipeline derives leaves from the calibrated cutoff quadtree; the
/// serving plane approximates that with a fixed tiling, which preserves
/// the store's criterion-2 semantics (same-leaf requirement) without
/// running calibration at accept time.
fn leaf_of(grid: GridPoint) -> LeafId {
    let lx = (grid.ix >> 3) as u32;
    let lz = (grid.iz >> 3) as u32;
    LeafId((lx & 0xFFFF) << 16 | (lz & 0xFFFF))
}

/// Deterministic smooth far-field luma for a grid point. Phase is
/// seeded by the grid key and the near-set hash so different points
/// produce different (but compressible) content, and the same point
/// always reproduces byte-identical frames.
fn procedural_far_frame(grid: GridPoint, near_hash: u64, scale_pm: u16) -> LumaFrame {
    let width = (BASE_WIDTH * scale_pm as u32 / 1000).max(16);
    let height = (width / 2).max(8);
    let seed = grid.key() ^ near_hash;
    let p1 = (seed & 0xFFFF) as f32 / 65536.0;
    let p2 = ((seed >> 16) & 0xFFFF) as f32 / 65536.0;
    LumaFrame::from_fn(width, height, |x, y| {
        let fx = x as f32 / width as f32;
        let fy = y as f32 / height as f32;
        (0.5 + 0.28 * ((fx * 7.0 + p1 * 6.0).sin() * (fy * 5.0 - p2 * 4.0).cos())
            + 0.12 * ((fx * 23.0 - p2 * 11.0).cos() * (fy * 17.0 + p1 * 9.0).sin()))
        .clamp(0.0, 1.0)
    })
}

/// Maps a codec quality to its wire code.
pub fn quality_to_wire(q: Quality) -> u8 {
    match q {
        Quality::CRF18 => 0,
        Quality::CRF25 => 1,
        Quality::CRF32 => 2,
    }
}

/// Maps a wire code back to a codec quality.
pub fn quality_from_wire(code: u8) -> Quality {
    match code {
        0 => Quality::CRF18,
        2 => Quality::CRF32,
        _ => Quality::CRF25,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> ServiceCore {
        ServiceCore::new(64 << 20, 42, TelemetrySink::disabled())
    }

    #[test]
    fn join_assigns_monotonic_players_and_leave_clears_room() {
        let c = core();
        let (p0, s0) = c.join(GameId::VikingVillage, 0);
        let (p1, _) = c.join(GameId::VikingVillage, 0);
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(s0, 1000);
        c.leave(GameId::VikingVillage, 0);
        c.leave(GameId::VikingVillage, 0);
        // Room reset: a new join starts at player 0 again.
        let (p, _) = c.join(GameId::VikingVillage, 0);
        assert_eq!(p, 0);
    }

    #[test]
    fn affinity_packs_the_fullest_room_under_the_cap() {
        let c = core();
        // Room 7 has two players, room 2 has one; a newcomer asking for
        // room 99 should pack into room 7 (fullest under the cap).
        c.join(GameId::Fps, 7);
        c.join(GameId::Fps, 7);
        c.join(GameId::Fps, 2);
        assert_eq!(c.place_affinity(GameId::Fps, 99), 7);
        // Fill room 7 to the cap; the next placement spills to room 2.
        c.join(GameId::Fps, 7);
        c.join(GameId::Fps, 7);
        assert_eq!(c.place_affinity(GameId::Fps, 99), 2);
        // Other games' rooms are invisible to placement.
        assert_eq!(c.place_affinity(GameId::VikingVillage, 5), 5);
    }

    #[test]
    fn repeated_pose_hits_the_store() {
        let c = core();
        c.join(GameId::Fps, 3);
        let pos = Vec2::new(10.0, 12.0);
        let first = c.frame_for(GameId::Fps, 3, pos, 0);
        assert!(!first.store_hit);
        let second = c.frame_for(GameId::Fps, 3, pos, 0);
        assert!(second.store_hit);
        assert_eq!(first.encoded.payload, second.encoded.payload);
        let stats = c.stats();
        assert_eq!(stats.frames_served, 2);
        assert_eq!(stats.store_hits, 1);
    }

    #[test]
    fn drops_degrade_and_clean_runs_recover() {
        let c = core();
        c.join(GameId::Fps, 0);
        let mut changed = None;
        for _ in 0..DEGRADE_AFTER_DROPS {
            changed = c.note_delivery(GameId::Fps, 0, true);
        }
        let degraded = changed.expect("drops must degrade the room");
        assert_eq!(degraded, 750);
        let mut recovered = None;
        for _ in 0..RECOVER_AFTER_CLEAN {
            recovered = c.note_delivery(GameId::Fps, 0, false);
        }
        let back = recovered.expect("clean deliveries must recover");
        assert!(back > degraded);
    }

    #[test]
    fn lossy_then_clean_link_converges_without_oscillation() {
        // Closed loop against a link whose capacity sits between two
        // controller steps: every frame shipped above 750‰ drops,
        // everything at or below 750‰ delivers clean. The unpatched
        // controller re-probes 862‰ after every clean streak and
        // degrade/recover ping-pongs forever; the ceiling-bounded
        // controller must settle at 750‰ and then go quiet.
        let c = core();
        c.join(GameId::Fps, 0);
        let mut scale: u16 = 1000;
        let mut last_change_at = 0usize;
        let total = 40_000usize;
        for i in 0..total {
            if let Some(next) = c.note_delivery(GameId::Fps, 0, scale > 750) {
                scale = next;
                last_change_at = i;
            }
        }
        assert_eq!(scale, 750, "must settle on the sustainable scale");
        assert!(
            last_change_at < total - 10_000,
            "controller still changing scale at iteration {last_change_at}: \
             degrade/recover oscillation"
        );
    }

    #[test]
    fn scale_floor_holds_under_sustained_drops() {
        let c = core();
        c.join(GameId::Fps, 0);
        for _ in 0..10_000 {
            c.note_delivery(GameId::Fps, 0, true);
        }
        let reply = c.frame_for(GameId::Fps, 0, Vec2::new(0.0, 0.0), 0);
        assert!(reply.scale_pm >= MIN_SCALE_PM);
    }

    #[test]
    fn degraded_scale_shrinks_the_frame() {
        let full = procedural_far_frame(GridPoint::new(4, 4), 9, 1000);
        let degraded = procedural_far_frame(GridPoint::new(4, 4), 9, 500);
        assert!(degraded.width() < full.width());
        assert!(degraded.width() >= 16);
    }

    #[test]
    fn frames_decode_with_the_real_codec() {
        let c = core();
        c.join(GameId::VikingVillage, 0);
        let reply = c.frame_for(GameId::VikingVillage, 0, Vec2::new(5.0, 5.0), 0);
        let decoder = Encoder::new(reply.encoded.quality);
        let decoded = decoder.decode(&reply.encoded).expect("decode");
        assert_eq!(decoded.width(), reply.encoded.width);
    }

    #[test]
    fn shard_shares_round_trip_between_cores() {
        let a = core();
        a.enable_shard_sharing();
        a.join(GameId::Fps, 0);
        let pos = Vec2::new(10.0, 12.0);
        let first = a.frame_for(GameId::Fps, 0, pos, 0);
        assert!(!first.store_hit);
        let shares = a.drain_shard_shares();
        assert_eq!(shares.len(), 1);
        assert_eq!(a.stats().shard_frames_shared, 1);
        assert!(a.drain_shard_shares().is_empty(), "drain empties the box");

        let b = core();
        for s in &shares {
            assert!(b.apply_shard_frame(s.game, s.meta, s.encoded.clone(), s.scale_pm));
        }
        assert_eq!(b.stats().shard_frames_applied, 1);
        b.join(GameId::Fps, 0);
        let reply = b.frame_for(GameId::Fps, 0, pos, 0);
        assert!(reply.store_hit, "peer frame must serve as a local hit");
        assert_eq!(reply.encoded.payload, first.encoded.payload);
    }

    #[test]
    fn sharing_is_off_by_default() {
        let c = core();
        c.join(GameId::Fps, 0);
        c.frame_for(GameId::Fps, 0, Vec2::new(1.0, 1.0), 0);
        assert!(c.drain_shard_shares().is_empty());
        assert_eq!(c.stats().shard_frames_shared, 0);
    }

    #[test]
    fn custom_store_backend_is_swappable() {
        let store = Arc::new(LocalStore::new(StoreConfig {
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let c = ServiceCore::with_store(store.clone(), 42, TelemetrySink::disabled());
        c.join(GameId::Fps, 0);
        c.frame_for(GameId::Fps, 0, Vec2::new(2.0, 3.0), 0);
        assert!(
            !store.is_empty(),
            "core writes through the injected backend"
        );
    }

    #[test]
    fn quality_wire_codes_round_trip() {
        for q in [Quality::CRF18, Quality::CRF25, Quality::CRF32] {
            assert_eq!(quality_from_wire(quality_to_wire(q)), q);
        }
    }
}
