//! Serving-plane saturation bench: a connection-count ladder over a
//! real in-process server.
//!
//! Each rung binds a fresh Unix-domain server, drives it with the
//! blocking load generator at that rung's connection count (as fast as
//! the server answers — no display pacing), and records the measured
//! session throughput, round-trip latency percentiles, and egress rate.
//! The *saturation* rung is the one with the highest sustained egress;
//! sessions/core is read off that rung. Results serialize to the
//! committed `BENCH_serve.json` via [`serve_bench_json`], including the
//! full mergeable latency histogram.

use crate::loadgen::{self, LoadConfig, LoadReport};
use crate::server::{Server, ServerConfig, ServerStats};
use crate::stream::{Endpoint, Listener};
use coterie_net::NetScenario;
use coterie_telemetry::TelemetrySink;
use coterie_world::GameId;
use std::path::PathBuf;

/// Bench knobs.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Short ladder and fewer frames (CI-sized).
    pub quick: bool,
    /// World/trajectory seed shared by server and clients.
    pub seed: u64,
    /// Game every session plays.
    pub game: GameId,
    /// Poses per client per rung.
    pub frames_per_client: u64,
    /// Server worker threads.
    pub workers: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            quick: false,
            seed: 42,
            game: GameId::VikingVillage,
            frames_per_client: 200,
            workers: 1,
        }
    }
}

impl ServeBenchConfig {
    /// The CI-sized configuration.
    pub fn quick() -> Self {
        ServeBenchConfig {
            quick: true,
            frames_per_client: 60,
            ..ServeBenchConfig::default()
        }
    }

    fn ladder(&self) -> &'static [usize] {
        if self.quick {
            &[1, 2, 4]
        } else {
            &[1, 2, 4, 8]
        }
    }
}

/// One ladder rung: client count plus what the run measured on both
/// sides of the socket.
#[derive(Debug, Clone)]
pub struct Rung {
    /// Concurrent client sessions.
    pub clients: usize,
    /// Client-side measurements.
    pub load: LoadReport,
    /// Server-side final stats.
    pub server: ServerStats,
}

/// A full ladder run.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Configuration the ladder ran with.
    pub config: ServeBenchConfig,
    /// Per-rung results, ascending client count.
    pub rungs: Vec<Rung>,
}

impl ServeBench {
    /// The rung with the highest sustained egress rate (the saturation
    /// point the headline numbers are read from).
    pub fn saturation(&self) -> &Rung {
        self.rungs
            .iter()
            .max_by(|a, b| {
                a.load
                    .egress_bytes_per_s()
                    .total_cmp(&b.load.egress_bytes_per_s())
            })
            .expect("ladder has at least one rung")
    }

    /// Sessions sustained per worker core at saturation.
    pub fn sessions_per_core(&self) -> f64 {
        self.saturation().clients as f64 / self.config.workers.max(1) as f64
    }
}

/// A socket path in the temp dir that no concurrent bench collides
/// with.
fn bench_socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("coterie-serve-{}-{tag}.sock", std::process::id()))
}

/// Runs the connection ladder and returns the measurements.
pub fn serve_bench(config: &ServeBenchConfig) -> ServeBench {
    let mut rungs = Vec::new();
    for &clients in config.ladder() {
        let path = bench_socket_path(&format!("bench{clients}"));
        let listener = Listener::bind_uds(&path).expect("bind bench socket");
        let server = Server::start(
            listener,
            ServerConfig {
                workers: config.workers,
                world_seed: config.seed,
                ..ServerConfig::default()
            },
            TelemetrySink::disabled(),
        )
        .expect("start bench server");

        let load = loadgen::run(&LoadConfig {
            endpoint: Endpoint::Uds(path.clone()),
            clients,
            frames_per_client: config.frames_per_client,
            game: config.game,
            rooms: clients.div_ceil(2).max(1) as u32,
            net: NetScenario::None,
            seed: config.seed,
            realtime: false,
            reconnect_at: None,
        });
        let server_stats = server.stop();
        let _ = std::fs::remove_file(&path);
        rungs.push(Rung {
            clients,
            load,
            server: server_stats,
        });
    }
    ServeBench {
        config: config.clone(),
        rungs,
    }
}

/// Renders a ladder run as the committed `BENCH_serve.json` document:
/// per-rung rows plus the saturation headline (sessions/core, latency
/// percentiles, egress rate) and the full sparse latency histogram.
pub fn serve_bench_json(bench: &ServeBench) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"config\": {{ \"workers\": {}, \"frames_per_client\": {}, \"transport\": \"uds\", \
         \"quick\": {} }},\n",
        bench.config.workers, bench.config.frames_per_client, bench.config.quick
    ));
    out.push_str("  \"rungs\": [\n");
    for (i, rung) in bench.rungs.iter().enumerate() {
        let sep = if i + 1 == bench.rungs.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"clients\": {}, \"frames\": {}, \"store_hit_ratio\": {:.6}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"egress_bytes_per_s\": {:.1}, \"frames_dropped\": {}, \
             \"protocol_errors\": {} }}{sep}\n",
            rung.clients,
            rung.load.frames_received,
            rung.server.store_hit_ratio,
            rung.load.latency.quantile(0.50),
            rung.load.latency.quantile(0.95),
            rung.load.latency.quantile(0.99),
            rung.load.egress_bytes_per_s(),
            rung.server.frames_dropped,
            rung.load.protocol_errors + rung.server.protocol_errors,
        ));
    }
    out.push_str("  ],\n");
    let sat = bench.saturation();
    out.push_str(&format!(
        "  \"saturation\": {{\n    \"clients\": {},\n    \"sessions_per_core\": {:.2},\n    \
         \"frame_latency_ms\": {{ \"p50\": {:.4}, \"p95\": {:.4}, \"p99\": {:.4} }},\n    \
         \"egress_bytes_per_s\": {:.1},\n    \"latency_hist\": {}\n  }}\n",
        sat.clients,
        bench.sessions_per_core(),
        sat.load.latency.quantile(0.50),
        sat.load.latency.quantile(0.95),
        sat.load.latency.quantile(0.99),
        sat.load.egress_bytes_per_s(),
        sat.load.latency.to_sparse_json(),
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rung_bench_round_trips() {
        let config = ServeBenchConfig {
            quick: true,
            frames_per_client: 12,
            ..ServeBenchConfig::default()
        };
        // One rung only to keep the test fast: reuse serve_bench's
        // machinery via a hand-rolled run.
        let path = bench_socket_path("test");
        let listener = Listener::bind_uds(&path).expect("bind");
        let server = Server::start(
            listener,
            ServerConfig {
                world_seed: config.seed,
                ..ServerConfig::default()
            },
            TelemetrySink::disabled(),
        )
        .expect("start");
        let load = loadgen::run(&LoadConfig {
            endpoint: Endpoint::Uds(path.clone()),
            clients: 2,
            frames_per_client: config.frames_per_client,
            game: config.game,
            rooms: 1,
            net: NetScenario::None,
            seed: config.seed,
            realtime: false,
            reconnect_at: None,
        });
        let stats = server.stop();
        let _ = std::fs::remove_file(&path);

        assert_eq!(load.sessions_completed, 2, "{}", load.summary_line());
        assert_eq!(load.protocol_errors, 0);
        assert_eq!(load.decode_failures, 0);
        assert_eq!(load.frames_received, 2 * config.frames_per_client);
        assert_eq!(stats.poses, 2 * config.frames_per_client);
        assert_eq!(stats.protocol_errors, 0);

        let bench = ServeBench {
            config,
            rungs: vec![Rung {
                clients: 2,
                load,
                server: stats,
            }],
        };
        let json = serve_bench_json(&bench);
        let doc = coterie_telemetry::parse_json(&json).expect("valid JSON");
        let sat = doc.get("saturation").expect("saturation object");
        assert!(sat.get("sessions_per_core").is_some());
        assert!(sat.get("latency_hist").is_some());
    }
}
