//! The epoll event loop: thread-per-core acceptors, per-connection
//! state machines, write backpressure, graceful shutdown.
//!
//! # Architecture
//!
//! One non-blocking listener is shared by every worker thread. Each
//! worker owns a private epoll instance and registers the listener with
//! `EPOLLEXCLUSIVE`, so the kernel wakes exactly one worker per
//! connection burst — thread-per-core accept without a thundering herd
//! and without an accept lock. The accepting worker owns the connection
//! for its whole life: no cross-worker handoff, no shared connection
//! table, no locks on the read/write path. All cross-connection state
//! (the frame store, rooms, the farm) lives in [`ServiceCore`] behind
//! its own fine-grained locks.
//!
//! Readiness is level-triggered. `EPOLLOUT` is armed only while a
//! connection's egress queue is non-empty, so an idle socket costs no
//! wakeups. Shutdown sets a flag; workers notice within one poll
//! timeout (25 ms), queue a `Goodbye` on every connection, drain
//! egress queues, and close — bounded by a 2 s drain deadline so a
//! dead peer cannot wedge shutdown.

use crate::conn::{ConnState, Connection, ReadOutcome};
use crate::service::{quality_from_wire, quality_to_wire, FrameReply, ServiceCore};
use crate::stream::Listener;
use crate::sys::{Epoll, EpollEvent, EPOLLEXCLUSIVE, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use coterie_codec::EncodedFrame;
use coterie_core::cache::FrameMeta;
use coterie_net::wire::{
    ByeReason, ErrorCode, ResumeRejectReason, ShardEntry, WireMessage, MIN_PROTO_VERSION,
    PROTO_VERSION, TOKEN_BYTES,
};
use coterie_net::ResumeToken;
use coterie_serve::PlacementPolicy;
use coterie_telemetry::{TelemetrySink, TrackId, SERVE_PID};
use coterie_world::{GameId, GridPoint, LeafId, Vec2};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Epoll token reserved for the shared listener.
const TOKEN_LISTENER: u64 = u64::MAX;

/// Poll timeout; bounds shutdown-notice latency.
const POLL_TIMEOUT_MS: i32 = 25;

/// How long shutdown waits for egress queues to drain before closing
/// connections regardless.
const DRAIN_DEADLINE: Duration = Duration::from_secs(2);

/// Interval between counter/gauge samples.
const COUNTER_INTERVAL: Duration = Duration::from_millis(50);

/// First protocol version that carries reconnect tokens / `Resume`.
const RESUME_PROTO_MIN: u16 = 3;

/// Grace the parked-session GC waits past the resume TTL before
/// releasing a seat. A `Resume` landing inside the grace window earns
/// the structured `Expired` reject; without it an expired token would
/// already have been collected and answer `Unknown`, which tells the
/// client nothing about whether retrying later could ever work.
const PARKED_GC_GRACE: Duration = Duration::from_secs(5);

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker (acceptor + event loop) threads.
    pub workers: usize,
    /// Per-connection egress byte budget for droppable frames.
    pub egress_limit_bytes: usize,
    /// Shared frame-store byte budget.
    pub store_bytes: u64,
    /// Seed the per-game worlds are built from (must match the load
    /// generator's seed for trajectory-consistent traffic).
    pub world_seed: u64,
    /// How a `Hello`'s requested room is honored.
    /// [`PlacementPolicy::FirstFit`] (the default) joins the requested
    /// room exactly — today's behaviour, byte for byte.
    /// [`PlacementPolicy::Affinity`] packs the client into the fullest
    /// same-game room under [`crate::service::AFFINITY_ROOM_CAP`].
    pub policy: PlacementPolicy,
    /// How long a dropped v3 connection's session stays parked (seat
    /// held, scale preserved) awaiting a `Resume`, ms.
    pub resume_ttl_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            egress_limit_bytes: 256 * 1024,
            store_bytes: 64 << 20,
            world_seed: 42,
            policy: PlacementPolicy::FirstFit,
            resume_ttl_ms: 30_000,
        }
    }
}

/// Monotonic counters shared by all workers.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    closed: AtomicU64,
    live: AtomicU64,
    poses: AtomicU64,
    frames_sent: AtomicU64,
    frames_dropped: AtomicU64,
    bytes_sent: AtomicU64,
    protocol_errors: AtomicU64,
    degrades_sent: AtomicU64,
    peak_queue_bytes: AtomicU64,
    versions_rejected: AtomicU64,
    shard_frames_in: AtomicU64,
    sessions_parked: AtomicU64,
    sessions_resumed: AtomicU64,
    resume_rejects: AtomicU64,
}

impl Counters {
    fn note_peak(&self, bytes: u64) {
        self.peak_queue_bytes.fetch_max(bytes, Ordering::Relaxed);
    }
}

/// A point-in-time stats snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections closed.
    pub closed: u64,
    /// Connections currently open.
    pub live: u64,
    /// Poses received.
    pub poses: u64,
    /// Frames queued for delivery.
    pub frames_sent: u64,
    /// Frames dropped by egress backpressure.
    pub frames_dropped: u64,
    /// Bytes written to sockets.
    pub bytes_sent: u64,
    /// Connections dropped for protocol violations.
    pub protocol_errors: u64,
    /// Degrade notices sent.
    pub degrades_sent: u64,
    /// Largest egress queue ever observed on one connection, bytes.
    pub peak_queue_bytes: u64,
    /// Hellos turned away for an unsupported protocol version.
    pub versions_rejected: u64,
    /// Peer-worker frames received on the inter-shard plane.
    pub shard_frames_in: u64,
    /// Dropped sessions parked for resume (seat held).
    pub sessions_parked: u64,
    /// Parked sessions successfully re-attached by `Resume`.
    pub sessions_resumed: u64,
    /// `Resume` attempts rejected (expired, unknown or forged tokens).
    pub resume_rejects: u64,
    /// Frame-store occupancy, bytes.
    pub store_bytes: u64,
    /// Frame-store hit ratio so far.
    pub store_hit_ratio: f64,
}

/// A session whose socket died while Active: the seat stays held and
/// the quality scale preserved until a `Resume` re-attaches it or the
/// TTL (plus GC grace) releases it.
struct ParkedSession {
    game: GameId,
    room: u32,
    player: u32,
    scale_pm: u16,
    parked_at: Instant,
}

struct Shared {
    service: Arc<ServiceCore>,
    listener: Listener,
    config: ServerConfig,
    shutdown: AtomicBool,
    counters: Counters,
    /// Token-signing secret, derived from the world seed so every
    /// worker of a deployment mints mutually verifiable tokens.
    secret: u64,
    /// Server-epoch anchor for token issue timestamps.
    epoch: Instant,
    /// Sessions awaiting `Resume`, keyed by their token bytes.
    parked: Mutex<HashMap<[u8; TOKEN_BYTES], ParkedSession>>,
}

/// A running server; dropping it without [`ServerHandle::stop`] aborts
/// the workers on the next poll tick.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts worker threads serving `listener`.
    pub fn start(
        listener: Listener,
        config: ServerConfig,
        telemetry: TelemetrySink,
    ) -> io::Result<Server> {
        let service = Arc::new(ServiceCore::new(
            config.store_bytes,
            config.world_seed,
            telemetry,
        ));
        Server::start_with_service(listener, config, service)
    }

    /// [`Server::start`] with an injected service core — the seam a
    /// multi-worker deployment uses to hand every server its own
    /// store backend and shard wiring before the event loop starts.
    pub fn start_with_service(
        listener: Listener,
        config: ServerConfig,
        service: Arc<ServiceCore>,
    ) -> io::Result<Server> {
        let shared = Arc::new(Shared {
            service,
            listener,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            // splitmix64 of the seed: workers sharing a seed mint
            // mutually verifiable tokens without sharing the seed
            // itself on the wire.
            secret: splitmix64(config.world_seed ^ 0x00C0_7E5E_C2E7_u64),
            epoch: Instant::now(),
            parked: Mutex::new(HashMap::new()),
            config: config.clone(),
        });
        let workers = config.workers.max(1);
        let mut threads = Vec::with_capacity(workers);
        for worker in 0..workers {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("coterie-serve-{worker}"))
                    .spawn(move || worker_loop(&shared, worker as u32))?,
            );
        }
        Ok(Server { shared, threads })
    }

    /// The bound TCP address, when serving TCP (useful with port 0).
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.shared.listener.local_addr_tcp()
    }

    /// A live stats snapshot.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        let store = self.shared.service.store();
        ServerStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            closed: c.closed.load(Ordering::Relaxed),
            live: c.live.load(Ordering::Relaxed),
            poses: c.poses.load(Ordering::Relaxed),
            frames_sent: c.frames_sent.load(Ordering::Relaxed),
            frames_dropped: c.frames_dropped.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            degrades_sent: c.degrades_sent.load(Ordering::Relaxed),
            peak_queue_bytes: c.peak_queue_bytes.load(Ordering::Relaxed),
            versions_rejected: c.versions_rejected.load(Ordering::Relaxed),
            shard_frames_in: c.shard_frames_in.load(Ordering::Relaxed),
            sessions_parked: c.sessions_parked.load(Ordering::Relaxed),
            sessions_resumed: c.sessions_resumed.load(Ordering::Relaxed),
            resume_rejects: c.resume_rejects.load(Ordering::Relaxed),
            store_bytes: store.bytes(),
            store_hit_ratio: store.stats().hit_ratio(),
        }
    }

    /// The worker count the server was started with.
    pub fn workers(&self) -> usize {
        self.config().workers.max(1)
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    /// The service core (store/room introspection for harnesses).
    pub fn service(&self) -> &Arc<ServiceCore> {
        &self.shared.service
    }

    /// Signals shutdown, drains connections, joins the workers, and
    /// returns the final stats.
    pub fn stop(mut self) -> ServerStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: u32) {
    let Ok(epoll) = Epoll::new() else { return };
    if epoll
        .add(
            shared.listener.raw_fd(),
            EPOLLIN | EPOLLEXCLUSIVE,
            TOKEN_LISTENER,
        )
        .is_err()
    {
        return;
    }

    let mut events = [EpollEvent::zeroed(); 64];
    let mut conns: HashMap<u64, Connection> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut draining = false;
    let mut drain_started = Instant::now();
    let mut last_counter_sample = Instant::now();
    let sink = shared.service.telemetry().clone();

    loop {
        let n = epoll.wait(&mut events, POLL_TIMEOUT_MS).unwrap_or(0);
        for ev in &events[..n] {
            let token = ev.token();
            if token == TOKEN_LISTENER {
                if !draining {
                    accept_burst(shared, &epoll, &mut conns, &mut next_token);
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let ready = ev.ready();
            if ready & EPOLLIN != 0 || ready & EPOLLRDHUP != 0 {
                handle_readable(shared, conn, worker);
            }
            if ready & EPOLLOUT != 0 {
                flush_conn(shared, conn);
            }
            sync_conn(&epoll, &mut conns, token, shared);
        }

        // Shutdown notice: queue goodbyes once, then drain.
        if shared.shutdown.load(Ordering::SeqCst) && !draining {
            draining = true;
            drain_started = Instant::now();
            let tokens: Vec<u64> = conns.keys().copied().collect();
            for token in tokens {
                if let Some(conn) = conns.get_mut(&token) {
                    begin_goodbye(shared, conn, ByeReason::Shutdown);
                    flush_conn(shared, conn);
                    sync_conn(&epoll, &mut conns, token, shared);
                }
            }
        }
        if draining {
            if conns.is_empty() {
                break;
            }
            if drain_started.elapsed() > DRAIN_DEADLINE {
                let tokens: Vec<u64> = conns.keys().copied().collect();
                for token in tokens {
                    close_conn(shared, &epoll, &mut conns, token);
                }
                break;
            }
        }

        shared.service.maintain(worker);
        if worker == 0 {
            gc_parked(shared);
        }

        if worker == 0 && last_counter_sample.elapsed() >= COUNTER_INTERVAL {
            last_counter_sample = Instant::now();
            sample_counters(shared, &sink, &conns, worker);
        }
    }
}

fn sample_counters(
    shared: &Shared,
    sink: &TelemetrySink,
    conns: &HashMap<u64, Connection>,
    worker: u32,
) {
    if !sink.is_enabled() {
        return;
    }
    let t = sink.now_ms();
    let track = TrackId {
        pid: SERVE_PID,
        tid: worker,
    };
    let queued: usize = conns.values().map(|c| c.queued_bytes()).sum();
    sink.counter(
        track,
        "connections",
        t,
        shared.counters.live.load(Ordering::Relaxed) as f64,
    );
    sink.counter(track, "egress-queue-bytes", t, queued as f64);
    sink.counter(
        track,
        "store-bytes",
        t,
        shared.service.store().bytes() as f64,
    );
}

fn accept_burst(
    shared: &Shared,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Connection>,
    next_token: &mut u64,
) {
    loop {
        match shared.listener.accept() {
            Ok(stream) => {
                let token = *next_token;
                *next_token += 1;
                let fd = stream.raw_fd();
                let conn = Connection::new(stream, shared.config.egress_limit_bytes);
                if epoll.add(fd, EPOLLIN | EPOLLRDHUP, token).is_ok() {
                    conns.insert(token, conn);
                    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    shared.counters.live.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
            Err(_) => break,
        }
    }
}

/// Reconciles a connection's epoll interest with its queue state and
/// reaps it once closed.
fn sync_conn(epoll: &Epoll, conns: &mut HashMap<u64, Connection>, token: u64, shared: &Shared) {
    let Some(conn) = conns.get(&token) else {
        return;
    };
    let done_draining = conn.state() == ConnState::Draining && conn.egress_idle();
    if conn.state() == ConnState::Closed || done_draining {
        close_conn(shared, epoll, conns, token);
        return;
    }
    let mut interest = EPOLLIN | EPOLLRDHUP;
    if !conn.egress_idle() {
        interest |= EPOLLOUT;
    }
    let _ = epoll.modify(conn.stream().raw_fd(), interest, token);
}

fn close_conn(shared: &Shared, epoll: &Epoll, conns: &mut HashMap<u64, Connection>, token: u64) {
    if let Some(mut conn) = conns.remove(&token) {
        let _ = epoll.delete(conn.stream().raw_fd());
        if conn.state() != ConnState::Closed {
            // Force-close of a still-active connection (drain
            // deadline): a dying socket, so parking applies.
            park_or_leave(shared, &mut conn);
            conn.set_state(ConnState::Closed);
        }
        shared.counters.note_peak(conn.peak_queue_bytes as u64);
        shared.counters.live.fetch_sub(1, Ordering::Relaxed);
        shared.counters.closed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Detaches an `Active` connection from its room. A v3 client that was
/// issued a token parks its session (seat held, scale preserved) for
/// the resume window; anything older leaves outright. No-op for
/// non-active states.
fn park_or_leave(shared: &Shared, conn: &mut Connection) {
    let ConnState::Active { game, room, player } = conn.state() else {
        return;
    };
    match conn.token.take() {
        Some(token) if conn.proto >= RESUME_PROTO_MIN => {
            shared.parked.lock().insert(
                token,
                ParkedSession {
                    game,
                    room,
                    player,
                    scale_pm: conn.last_notified_scale_pm,
                    parked_at: Instant::now(),
                },
            );
            shared
                .counters
                .sessions_parked
                .fetch_add(1, Ordering::Relaxed);
        }
        _ => shared.service.leave(game, room),
    }
}

/// Releases seats whose resume window (TTL plus [`PARKED_GC_GRACE`])
/// has fully lapsed. The grace keeps just-expired entries around so a
/// late `Resume` is told `Expired`, not `Unknown`.
fn gc_parked(shared: &Shared) {
    let deadline = Duration::from_millis(shared.config.resume_ttl_ms) + PARKED_GC_GRACE;
    let mut parked = shared.parked.lock();
    if parked.is_empty() {
        return;
    }
    let dead: Vec<[u8; TOKEN_BYTES]> = parked
        .iter()
        .filter(|(_, p)| p.parked_at.elapsed() > deadline)
        .map(|(k, _)| *k)
        .collect();
    for key in dead {
        if let Some(p) = parked.remove(&key) {
            shared.service.leave(p.game, p.room);
        }
    }
}

fn flush_conn(shared: &Shared, conn: &mut Connection) {
    let before = conn.bytes_written;
    match conn.flush() {
        Ok(_) => {
            let delta = conn.bytes_written - before;
            if delta > 0 {
                shared
                    .counters
                    .bytes_sent
                    .fetch_add(delta, Ordering::Relaxed);
            }
        }
        Err(_) => {
            // Write error: the socket is dead mid-session, the resume
            // case parking exists for.
            park_or_leave(shared, conn);
            conn.set_state(ConnState::Closed);
        }
    }
}

fn begin_goodbye(shared: &Shared, conn: &mut Connection, reason: ByeReason) {
    if matches!(conn.state(), ConnState::Draining | ConnState::Closed) {
        return;
    }
    if let ConnState::Active { game, room, .. } = conn.state() {
        shared.service.leave(game, room);
    }
    if conn.enqueue_control(&WireMessage::Goodbye { reason }) {
        conn.set_state(ConnState::Draining);
    } else {
        conn.set_state(ConnState::Closed);
    }
}

fn handle_readable(shared: &Shared, conn: &mut Connection, worker: u32) {
    let (msgs, eof) = match conn.read_ready() {
        ReadOutcome::Progress(msgs) => (msgs, false),
        ReadOutcome::Eof(msgs) => (msgs, true),
        ReadOutcome::Protocol(_) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            let _ = conn.enqueue_control(&WireMessage::Error {
                code: ErrorCode::Malformed,
            });
            begin_goodbye(shared, conn, ByeReason::Normal);
            return;
        }
    };
    for msg in msgs {
        handle_message(shared, conn, msg, worker);
        if conn.state() == ConnState::Closed {
            break;
        }
    }
    if eof && conn.state() != ConnState::Closed {
        // Peer is gone; whatever is queued can never matter. An EOF
        // without a clean `Bye` is exactly the dropped-connection case
        // resume tokens exist for, so park rather than leave.
        park_or_leave(shared, conn);
        conn.set_state(ConnState::Closed);
    }
}

fn handle_message(shared: &Shared, conn: &mut Connection, msg: WireMessage, worker: u32) {
    match (conn.state(), msg) {
        (
            ConnState::Handshake,
            WireMessage::Hello {
                proto, game, room, ..
            },
        ) => {
            // Version negotiation: any client inside the supported
            // window joins (v1 clients never see a v2-only message in a
            // plain session, so they decode every reply). Outside it,
            // answer with the structured window instead of dropping —
            // the client learns exactly what to downgrade to.
            if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&proto) {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .versions_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let _ = conn.enqueue_control(&WireMessage::VersionReject {
                    min: MIN_PROTO_VERSION,
                    max: PROTO_VERSION,
                });
                begin_goodbye(shared, conn, ByeReason::Normal);
                return;
            }
            // Placement: first-fit honors the requested room exactly
            // (the pre-matchmaker behaviour, byte for byte); affinity
            // packs same-game rooms for cross-player frame reuse.
            let room = match shared.config.policy {
                PlacementPolicy::FirstFit => room,
                PlacementPolicy::Affinity => shared.service.place_affinity(game, room),
            };
            let (player, scale_pm) = shared.service.join(game, room);
            conn.last_notified_scale_pm = scale_pm;
            conn.proto = proto;
            conn.set_state(ConnState::Active { game, room, player });
            // v3 clients get a signed reconnect token; older clients
            // get the tokenless Welcome whose bytes they already know.
            let token = (proto >= RESUME_PROTO_MIN).then(|| {
                ResumeToken {
                    game,
                    room,
                    player,
                    issued_ms: shared.epoch.elapsed().as_millis() as u64,
                }
                .sign(shared.secret)
            });
            conn.token = token;
            let ok = conn.enqueue_control(&WireMessage::Welcome {
                room,
                player,
                budget_ms: shared.service.budget_ms(),
                token,
            });
            if !ok {
                conn.set_state(ConnState::Closed);
            }
        }
        (ConnState::Handshake, WireMessage::Resume { proto, token }) => {
            if !(RESUME_PROTO_MIN..=PROTO_VERSION).contains(&proto) {
                shared
                    .counters
                    .versions_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let _ = conn.enqueue_control(&WireMessage::VersionReject {
                    min: MIN_PROTO_VERSION,
                    max: PROTO_VERSION,
                });
                begin_goodbye(shared, conn, ByeReason::Normal);
                return;
            }
            let reject = |reason| {
                shared
                    .counters
                    .resume_rejects
                    .fetch_add(1, Ordering::Relaxed);
                WireMessage::ResumeReject { reason }
            };
            if ResumeToken::verify(&token, shared.secret).is_none() {
                let _ = conn.enqueue_control(&reject(ResumeRejectReason::Malformed));
                begin_goodbye(shared, conn, ByeReason::Normal);
                return;
            }
            let parked = shared.parked.lock().remove(&token);
            match parked {
                None => {
                    let _ = conn.enqueue_control(&reject(ResumeRejectReason::Unknown));
                    begin_goodbye(shared, conn, ByeReason::Normal);
                }
                Some(p)
                    if p.parked_at.elapsed()
                        > Duration::from_millis(shared.config.resume_ttl_ms) =>
                {
                    // TTL lapsed: release the held seat and say so.
                    shared.service.leave(p.game, p.room);
                    let _ = conn.enqueue_control(&reject(ResumeRejectReason::Expired));
                    begin_goodbye(shared, conn, ByeReason::Normal);
                }
                Some(p) => {
                    // Re-attach: same identity, same seat (never
                    // released), and the parked scale restored so the
                    // next pose only notifies on a *real* change —
                    // epoch ordering and quality level both survive
                    // the socket's death.
                    conn.proto = proto;
                    conn.token = Some(token);
                    conn.last_notified_scale_pm = p.scale_pm;
                    conn.set_state(ConnState::Active {
                        game: p.game,
                        room: p.room,
                        player: p.player,
                    });
                    shared
                        .counters
                        .sessions_resumed
                        .fetch_add(1, Ordering::Relaxed);
                    let ok = conn.enqueue_control(&WireMessage::Welcome {
                        room: p.room,
                        player: p.player,
                        budget_ms: shared.service.budget_ms(),
                        token: Some(token),
                    });
                    if !ok {
                        conn.set_state(ConnState::Closed);
                    }
                }
            }
        }
        (ConnState::Active { game, room, .. }, WireMessage::Pose { seq, x, z, .. }) => {
            shared.counters.poses.fetch_add(1, Ordering::Relaxed);
            serve_pose(shared, conn, game, room, seq, Vec2::new(x, z), worker);
        }
        (ConnState::Handshake, WireMessage::ShardHello { proto, shard, .. }) => {
            // A fellow worker's exchange link. Same version window as
            // clients; a peer outside it gets the structured reject.
            if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&proto) {
                shared
                    .counters
                    .versions_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let _ = conn.enqueue_control(&WireMessage::VersionReject {
                    min: MIN_PROTO_VERSION,
                    max: PROTO_VERSION,
                });
                begin_goodbye(shared, conn, ByeReason::Normal);
                return;
            }
            conn.set_state(ConnState::ShardPeer { shard });
        }
        (
            ConnState::ShardPeer { .. },
            WireMessage::ShardFrame {
                entry,
                quality,
                scale_pm,
                payload,
                width,
                height,
                ..
            },
        ) => {
            shared
                .counters
                .shard_frames_in
                .fetch_add(1, Ordering::Relaxed);
            apply_shard_frame(shared, entry, width, height, quality, scale_pm, payload);
        }
        (ConnState::ShardPeer { .. }, WireMessage::ShardAdvert { entries, .. }) => {
            // Metadata-only adverts: admit the identities so nearby
            // local poses at least skip the store miss bookkeeping.
            for e in entries {
                let _ = shared
                    .service
                    .store()
                    .insert(e.game, shard_entry_meta(&e), e.bytes);
            }
        }
        (ConnState::ShardPeer { .. }, WireMessage::ShardUsage { .. }) => {
            // Socket-plane workers each own their budget; usage digests
            // only matter to the in-process fabric.
        }
        (ConnState::ShardPeer { .. }, WireMessage::Bye) => {
            begin_goodbye(shared, conn, ByeReason::Normal);
        }
        (ConnState::Active { .. }, WireMessage::Bye) | (ConnState::Handshake, WireMessage::Bye) => {
            begin_goodbye(shared, conn, ByeReason::Normal);
        }
        (ConnState::Draining, _) | (ConnState::Closed, _) => {
            // Late traffic from a peer we already said goodbye to.
        }
        (_, WireMessage::Error { .. }) | (_, WireMessage::Goodbye { .. }) => {
            // Peer-side reports need no reply.
        }
        _ => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            let _ = conn.enqueue_control(&WireMessage::Error {
                code: ErrorCode::BadState,
            });
            begin_goodbye(shared, conn, ByeReason::Normal);
        }
    }
}

/// splitmix64: derives the token-signing secret from the world seed
/// without exposing the seed itself in token MACs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Rebuilds a peer entry's identity as a local store key.
fn shard_entry_meta(e: &ShardEntry) -> FrameMeta {
    FrameMeta {
        grid: GridPoint::new(e.grid_ix, e.grid_iz),
        pos: Vec2::new(e.pos_x, e.pos_z),
        leaf: LeafId(e.leaf),
        near_hash: e.near_hash,
    }
}

/// Admits a peer worker's fully shipped frame (identity + payload) into
/// the local service.
fn apply_shard_frame(
    shared: &Shared,
    entry: ShardEntry,
    width: u32,
    height: u32,
    quality: u8,
    scale_pm: u16,
    payload: Vec<u8>,
) {
    let encoded = Arc::new(EncodedFrame {
        width,
        height,
        quality: quality_from_wire(quality),
        payload: payload.into(),
    });
    let _ =
        shared
            .service
            .apply_shard_frame(entry.game, shard_entry_meta(&entry), encoded, scale_pm);
}

fn serve_pose(
    shared: &Shared,
    conn: &mut Connection,
    game: GameId,
    room: u32,
    seq: u64,
    pos: Vec2,
    worker: u32,
) {
    let FrameReply {
        encoded,
        store_hit,
        scale_pm,
    } = shared.service.frame_for(game, room, pos, worker);

    // Scale changed since this client last heard about it (another
    // connection may have triggered the degrade): notify lazily.
    if scale_pm != conn.last_notified_scale_pm {
        conn.last_notified_scale_pm = scale_pm;
        if conn.enqueue_control(&WireMessage::Degrade { scale_pm }) {
            shared
                .counters
                .degrades_sent
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    let frame = WireMessage::Frame {
        seq,
        width: encoded.width,
        height: encoded.height,
        quality: quality_to_wire(encoded.quality),
        store_hit,
        scale_pm,
        payload: encoded.payload.to_vec(),
    };
    let delivered = conn.enqueue_frame(&frame);
    if delivered {
        shared.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
    } else {
        shared
            .counters
            .frames_dropped
            .fetch_add(1, Ordering::Relaxed);
    }
    shared.counters.note_peak(conn.queued_bytes() as u64);

    if let Some(new_scale) = shared.service.note_delivery(game, room, !delivered) {
        if new_scale != conn.last_notified_scale_pm {
            conn.last_notified_scale_pm = new_scale;
            if conn.enqueue_control(&WireMessage::Degrade {
                scale_pm: new_scale,
            }) {
                shared
                    .counters
                    .degrades_sent
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    flush_conn(shared, conn);
}
