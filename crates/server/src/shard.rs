//! The shard coordinator: the inter-worker exchange plane of a
//! multi-process deployment.
//!
//! Each worker process runs one [`ShardCoordinator`] next to its
//! [`Server`](crate::server::Server). The coordinator owns blocking
//! client connections to every peer worker's listener (the same
//! listener the game clients use — peers introduce themselves with
//! [`WireMessage::ShardHello`] and the event loop parks them in
//! [`ConnState::ShardPeer`](crate::conn::ConnState)). On a short cadence
//! it drains the service core's share outbox — every frame this worker
//! rendered on a store miss — and ships each one to every peer as a
//! [`WireMessage::ShardFrame`]: identity plus encoded payload, so the
//! peer admits it into its own store and payload cache and the next
//! pose near that position anywhere in the fleet is a hit without a
//! render.
//!
//! Peer links are soft state: a send failure drops the link and the
//! next flush tick reconnects. Shares that found no live peer are
//! simply lost — the peer will render on miss exactly as it would have
//! without a coordinator, so the exchange plane can only ever *save*
//! GPU work, never corrupt state.

use crate::service::{quality_to_wire, ServiceCore, ShardShare};
use crate::stream::Endpoint;
use crate::stream::Stream;
use coterie_net::wire::{ShardEntry, WireMessage, PROTO_VERSION};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the coordinator drains the share outbox and pushes to
/// peers. Short enough that a peer's replay of the same trajectory a
/// beat later already hits.
const FLUSH_INTERVAL: Duration = Duration::from_millis(10);

/// Placement of one worker in the fleet.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// This worker's shard id.
    pub shard: u16,
    /// Total worker count the fleet was provisioned with.
    pub shards: u16,
    /// Exchange endpoints of the peer workers (everyone but this one).
    pub peers: Vec<Endpoint>,
}

/// Coordinator counters (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCoordStats {
    /// Frame messages shipped (each peer delivery counted once).
    pub frames_out: u64,
    /// Wire bytes shipped.
    pub bytes_out: u64,
    /// Sends that failed and dropped a peer link (reconnected on the
    /// next flush tick).
    pub link_failures: u64,
}

struct CoordShared {
    stop: AtomicBool,
    frames_out: AtomicU64,
    bytes_out: AtomicU64,
    link_failures: AtomicU64,
}

/// A running exchange thread; [`ShardCoordinator::stop`] (or drop)
/// flushes the tail and joins it.
pub struct ShardCoordinator {
    shared: Arc<CoordShared>,
    handle: Option<JoinHandle<()>>,
}

impl ShardCoordinator {
    /// Enables share queueing on `service` and starts the exchange
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if the coordinator thread cannot be spawned.
    pub fn start(service: Arc<ServiceCore>, plan: ShardPlan) -> ShardCoordinator {
        service.enable_shard_sharing();
        let shared = Arc::new(CoordShared {
            stop: AtomicBool::new(false),
            frames_out: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            link_failures: AtomicU64::new(0),
        });
        let thread_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("coterie-shard-{}", plan.shard))
            .spawn(move || coordinator_loop(&service, &plan, &thread_shared))
            .expect("spawn shard coordinator");
        ShardCoordinator {
            shared,
            handle: Some(handle),
        }
    }

    /// A live counter snapshot.
    pub fn stats(&self) -> ShardCoordStats {
        ShardCoordStats {
            frames_out: self.shared.frames_out.load(Ordering::Relaxed),
            bytes_out: self.shared.bytes_out.load(Ordering::Relaxed),
            link_failures: self.shared.link_failures.load(Ordering::Relaxed),
        }
    }

    /// Signals the thread, waits for its final flush, and returns the
    /// totals.
    pub fn stop(mut self) -> ShardCoordStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.stats()
    }
}

impl Drop for ShardCoordinator {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct PeerLink {
    endpoint: Endpoint,
    stream: Option<Stream>,
}

fn coordinator_loop(service: &ServiceCore, plan: &ShardPlan, shared: &CoordShared) {
    let mut links: Vec<PeerLink> = plan
        .peers
        .iter()
        .map(|endpoint| PeerLink {
            endpoint: endpoint.clone(),
            stream: None,
        })
        .collect();
    let hello = WireMessage::ShardHello {
        proto: PROTO_VERSION,
        shard: plan.shard,
        shards: plan.shards,
        epoch: 0,
    }
    .encode_frame();
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        flush_once(service, &mut links, &hello, shared, plan.shard);
        if stopping {
            break;
        }
        std::thread::sleep(FLUSH_INTERVAL);
    }
    for link in &mut links {
        if let Some(stream) = &mut link.stream {
            let _ = stream.write_all(&WireMessage::Bye.encode_frame());
        }
    }
}

/// One flush tick: reconnect dead links, drain the outbox, fan each
/// share out to every live peer.
fn flush_once(
    service: &ServiceCore,
    links: &mut [PeerLink],
    hello: &[u8],
    shared: &CoordShared,
    shard: u16,
) {
    for link in links.iter_mut() {
        ensure_connected(link, hello);
    }
    let shares = service.drain_shard_shares();
    if shares.is_empty() {
        return;
    }
    let frames: Vec<Vec<u8>> = shares.iter().map(|s| encode_share(shard, s)).collect();
    for link in links.iter_mut() {
        let Some(stream) = &mut link.stream else {
            continue;
        };
        for frame in &frames {
            if stream.write_all(frame).is_err() {
                shared.link_failures.fetch_add(1, Ordering::Relaxed);
                link.stream = None;
                break;
            }
            shared.frames_out.fetch_add(1, Ordering::Relaxed);
            shared
                .bytes_out
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
        }
    }
}

fn ensure_connected(link: &mut PeerLink, hello: &[u8]) {
    if link.stream.is_some() {
        return;
    }
    if let Ok(mut stream) = link.endpoint.connect() {
        if stream.write_all(hello).is_ok() {
            link.stream = Some(stream);
        }
    }
}

/// Converts a drained share into its on-the-wire frame.
fn encode_share(shard: u16, s: &ShardShare) -> Vec<u8> {
    WireMessage::ShardFrame {
        shard,
        entry: ShardEntry {
            game: s.game,
            grid_ix: s.meta.grid.ix,
            grid_iz: s.meta.grid.iz,
            pos_x: s.meta.pos.x,
            pos_z: s.meta.pos.z,
            leaf: s.meta.leaf.0,
            near_hash: s.meta.near_hash,
            bytes: s.encoded.size_bytes() as u64,
            stamp: 0,
            value: 0.0,
        },
        width: s.encoded.width,
        height: s.encoded.height,
        quality: quality_to_wire(s.encoded.quality),
        scale_pm: s.scale_pm,
        payload: s.encoded.payload.to_vec(),
    }
    .encode_frame()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_net::wire::FrameAssembler;
    use coterie_telemetry::TelemetrySink;
    use coterie_world::{GameId, Vec2};

    #[test]
    fn encoded_share_round_trips_through_the_wire() {
        let core = ServiceCore::new(16 << 20, 42, TelemetrySink::disabled());
        core.enable_shard_sharing();
        core.join(GameId::Fps, 0);
        let reply = core.frame_for(GameId::Fps, 0, Vec2::new(3.0, 4.0), 0);
        let shares = core.drain_shard_shares();
        assert_eq!(shares.len(), 1);

        let bytes = encode_share(1, &shares[0]);
        let mut asm = FrameAssembler::new();
        asm.push(&bytes);
        let msg = asm.next_message().expect("decode").expect("complete");
        match msg {
            WireMessage::ShardFrame {
                shard,
                entry,
                payload,
                scale_pm,
                ..
            } => {
                assert_eq!(shard, 1);
                assert_eq!(entry.game, GameId::Fps);
                assert_eq!(scale_pm, 1000);
                assert_eq!(payload, reply.encoded.payload.to_vec());
            }
            other => panic!("unexpected message {other:?}"),
        }
    }
}
