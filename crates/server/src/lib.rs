//! # coterie-server
//!
//! The socket serving plane: the paper's edge/cloud server realized as
//! a process, not a simulation step.
//!
//! The rest of the workspace reproduces Coterie's *algorithms* — frame
//! similarity, the shared store, adaptive degrade — inside a
//! discrete-event simulator. This crate puts the serving side of those
//! algorithms behind a real wire: a length-prefixed session protocol
//! ([`coterie_net::wire`]) over TCP or Unix-domain sockets, served by a
//! hand-rolled non-blocking event loop (epoll readiness, thread-per-core
//! acceptors sharing one listener via `EPOLLEXCLUSIVE`, per-connection
//! state machines, byte-bounded egress queues with frame-drop
//! backpressure, graceful drain on shutdown).
//!
//! Layers, bottom-up:
//!
//! - [`sys`] — the minimal epoll FFI (the only `unsafe` in the crate).
//! - [`stream`] — TCP/UDS transport behind one enum pair.
//! - [`conn`] — per-connection read assembly, session state, and the
//!   bounded egress queue (the backpressure policy lives here).
//! - [`service`] — the protocol-independent serving core: per-game
//!   worlds, the [`coterie_serve`] shared frame store and prerender
//!   farm, the real codec, and the drop-driven quality controller.
//! - [`server`] — the event loop tying it all together.
//! - [`shard`] — the inter-worker exchange plane: a coordinator thread
//!   per worker process shipping freshly rendered frames to peers so a
//!   multi-process fleet shares one logical store.
//! - [`loadgen`] — a blocking-socket client fleet replaying
//!   trajectory-driven sessions with FI-scenario pacing.
//! - [`bench`] — the connection ladder producing `BENCH_serve.json`.
//!
//! Everything a server does on the hot path is spanned into the
//! [`coterie_telemetry`] sink under the `serve` process lane, so a
//! traced run drops straight into the same Chrome-trace tooling as the
//! simulator fleet.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod conn;
pub mod loadgen;
pub mod server;
pub mod service;
pub mod shard;
pub mod stream;
pub mod sys;

pub use bench::{serve_bench, serve_bench_json, ServeBench, ServeBenchConfig};
pub use conn::{ConnState, Connection, ReadOutcome, CONTROL_OVERDRAFT_BYTES};
pub use loadgen::{LoadConfig, LoadReport};
pub use server::{Server, ServerConfig, ServerStats};
pub use service::{FrameReply, ServiceCore, ServiceStats, ShardShare};
pub use shard::{ShardCoordStats, ShardCoordinator, ShardPlan};
pub use stream::{Endpoint, Listener, Stream};
