//! Transport abstraction: TCP and Unix-domain stream sockets behind one
//! pair of enums, so the event loop and the load generator are
//! transport-agnostic. TCP is the deployment transport; UDS removes the
//! loopback network stack from local benches, isolating protocol and
//! event-loop cost.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

/// A connected stream socket.
#[derive(Debug)]
pub enum Stream {
    /// TCP (deployment).
    Tcp(TcpStream),
    /// Unix-domain (local benches, CI smoke).
    Unix(UnixStream),
}

impl Stream {
    /// The raw fd for epoll registration.
    pub fn raw_fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }

    /// Switches blocking mode.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Sets a read timeout (blocking clients use this to bound waits).
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound, non-blocking listener shared by the worker threads.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener (the bound path is removed on drop by the
    /// server that owns it).
    Unix(UnixListener),
}

impl Listener {
    /// Binds a non-blocking TCP listener.
    pub fn bind_tcp(addr: &str) -> io::Result<Listener> {
        let l = TcpListener::bind(addr)?;
        l.set_nonblocking(true)?;
        Ok(Listener::Tcp(l))
    }

    /// Binds a non-blocking Unix-domain listener, replacing any stale
    /// socket file at `path`.
    pub fn bind_uds(path: &Path) -> io::Result<Listener> {
        let _ = std::fs::remove_file(path);
        let l = UnixListener::bind(path)?;
        l.set_nonblocking(true)?;
        Ok(Listener::Unix(l))
    }

    /// The raw fd for epoll registration.
    pub fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }

    /// Accepts one pending connection, already set non-blocking.
    /// `WouldBlock` means the backlog is drained.
    pub fn accept(&self) -> io::Result<Stream> {
        let stream = match self {
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
        };
        stream.set_nonblocking(true)?;
        Ok(stream)
    }

    /// The TCP listener's bound address (for `bind_tcp("…:0")`).
    pub fn local_addr_tcp(&self) -> Option<std::net::SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }
}

/// Where to reach a server — the client-side counterpart of
/// [`Listener`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// `host:port`.
    Tcp(String),
    /// Socket-file path.
    Uds(PathBuf),
}

impl Endpoint {
    /// Opens a *blocking* stream to the endpoint (load-gen clients use
    /// plain blocking I/O; only the server side is evented).
    pub fn connect(&self) -> io::Result<Stream> {
        match self {
            Endpoint::Tcp(addr) => Ok(Stream::Tcp(TcpStream::connect(addr)?)),
            Endpoint::Uds(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Uds(path) => write!(f, "uds://{}", path.display()),
        }
    }
}
