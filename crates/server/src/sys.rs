//! Minimal epoll bindings.
//!
//! The workspace vendors no `libc`/`mio` crate, so this module declares
//! the four syscall wrappers the event loop needs directly against the
//! C library `std` already links on Linux. All `unsafe` in the crate
//! lives here, behind the safe [`Epoll`] handle.
//!
//! ABI note: glibc declares `struct epoll_event` with
//! `__attribute__((packed))` on x86-64 (the kernel ABI has no padding
//! between the 32-bit event mask and the 64-bit data word). The struct
//! below mirrors that, and packed fields are only ever read by value —
//! never by reference — which is all the language guarantees for
//! packed layouts.

#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::RawFd;

/// Readable interest (level-triggered).
pub const EPOLLIN: u32 = 0x001;
/// Writable interest.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, no need to request).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Wake only one of the epoll instances sharing a listener — the
/// thundering-herd guard for thread-per-core acceptors.
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// Kernel ABI layout of `struct epoll_event` (packed on x86-64, see
/// module docs).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLL*` flags).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event (for wait buffers).
    pub fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }

    /// The ready mask, read by value (packed field).
    pub fn ready(&self) -> u32 {
        self.events
    }

    /// The registered token, read by value (packed field).
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// A safe owner of one epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // the documented error signal.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it out
        // before returning. DEL ignores the event pointer entirely.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Registers `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes an existing registration's interest mask.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Removes a registration (best-effort; closing the fd also
    /// removes it).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` for ready events, filling `events`.
    /// Returns how many were filled. EINTR retries internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer pointer and capacity describe a live,
            // writable slice for the duration of the call.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this handle and closed exactly
        // once.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_reports_readable_pair() {
        let ep = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::zeroed(); 8];
        // Nothing written yet: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        a.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].ready() & EPOLLIN, 0);

        ep.delete(b.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn modify_switches_interest_to_writable() {
        let ep = Epoll::new().unwrap();
        let (_a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 1).unwrap();
        ep.modify(b.as_raw_fd(), EPOLLIN | EPOLLOUT, 1).unwrap();
        let mut events = [EpollEvent::zeroed(); 8];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1, "an idle socket is immediately writable");
        assert_ne!(events[0].ready() & EPOLLOUT, 0);
    }
}
