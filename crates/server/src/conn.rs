//! Per-connection state: read assembly, session state machine, and the
//! bounded egress queue.
//!
//! # Backpressure policy
//!
//! Each connection owns one byte-budgeted egress queue. Frame
//! deliveries are *droppable*: if queueing a frame would push the queue
//! past its byte limit, the frame is dropped and counted instead — a
//! slow reader loses frames, it never grows server memory. Control
//! messages (welcome, degrade notices, goodbyes) are *not* droppable;
//! they are tiny, so they are allowed a 4 KiB overdraft above the
//! limit, which keeps the queue bounded at `limit + 4096` in the worst
//! case while guaranteeing session-control delivery order.
//!
//! Dropped frames feed the room's quality controller: persistent drops
//! on a connection mean its share of the egress budget is too small for
//! the current scale, which is exactly the paper's degrade trigger
//! (ship smaller frames until the link recovers).

use crate::stream::Stream;
use coterie_net::wire::{FrameAssembler, WireError, WireMessage, TOKEN_BYTES};
use coterie_world::GameId;
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// Headroom above the frame byte-limit reserved for small control
/// messages, bytes.
pub const CONTROL_OVERDRAFT_BYTES: usize = 4096;

/// Where a connection is in the session protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Waiting for the client's `Hello`.
    Handshake,
    /// Joined a room; poses flow in, frames flow out.
    Active {
        /// Game being served.
        game: GameId,
        /// Room joined.
        room: u32,
        /// Player id within the room.
        player: u32,
    },
    /// A peer worker's inter-shard exchange link (announced itself with
    /// `ShardHello`): shard-family messages flow in, nothing flows out.
    ShardPeer {
        /// The peer's shard id.
        shard: u16,
    },
    /// Goodbye queued; close once the egress queue flushes.
    Draining,
    /// Finished — the event loop should deregister and drop it.
    Closed,
}

/// What a read pass produced.
#[derive(Debug, PartialEq)]
pub enum ReadOutcome {
    /// Messages extracted (possibly zero) and the peer is still open.
    Progress(Vec<WireMessage>),
    /// The peer closed its write half (EOF after any final messages).
    Eof(Vec<WireMessage>),
    /// The stream violated the protocol; drop the connection.
    Protocol(WireError),
}

/// One accepted connection.
#[derive(Debug)]
pub struct Connection {
    stream: Stream,
    assembler: FrameAssembler,
    state: ConnState,
    queue: VecDeque<Vec<u8>>,
    queued_bytes: usize,
    /// Bytes of `queue.front()` already written to the socket.
    front_written: usize,
    frame_limit_bytes: usize,
    /// Scale the client was last told about (per-mille); a change
    /// queues a `Degrade` notice on the next interaction.
    pub last_notified_scale_pm: u16,
    /// Protocol version the client announced in `Hello`/`Resume`
    /// (0 until the handshake lands). Gates v3-only behaviour: only
    /// proto >= 3 connections are issued reconnect tokens or parked on
    /// disconnect.
    pub proto: u16,
    /// The reconnect token issued in this connection's `Welcome`
    /// (v3 clients only); the key its session parks under if the
    /// socket dies.
    pub token: Option<[u8; TOKEN_BYTES]>,
    /// Frames dropped at the egress queue (backpressure).
    pub frames_dropped: u64,
    /// Frames successfully queued.
    pub frames_queued: u64,
    /// Poses received.
    pub poses_received: u64,
    /// Payload bytes written to the socket.
    pub bytes_written: u64,
    /// High-water mark of `queued_bytes`.
    pub peak_queue_bytes: usize,
}

impl Connection {
    /// Wraps an accepted (already non-blocking) stream.
    pub fn new(stream: Stream, frame_limit_bytes: usize) -> Connection {
        Connection {
            stream,
            assembler: FrameAssembler::new(),
            state: ConnState::Handshake,
            queue: VecDeque::new(),
            queued_bytes: 0,
            front_written: 0,
            frame_limit_bytes,
            last_notified_scale_pm: 1000,
            proto: 0,
            token: None,
            frames_dropped: 0,
            frames_queued: 0,
            poses_received: 0,
            bytes_written: 0,
            peak_queue_bytes: 0,
        }
    }

    /// The protocol state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Moves the protocol state.
    pub fn set_state(&mut self, state: ConnState) {
        self.state = state;
    }

    /// The wrapped stream (for raw-fd registration).
    pub fn stream(&self) -> &Stream {
        &self.stream
    }

    /// Bytes currently queued for egress.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Whether the egress queue is fully flushed.
    pub fn egress_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queues a droppable frame delivery. Returns `false` (and counts
    /// the drop) when the queue's byte budget cannot take it.
    pub fn enqueue_frame(&mut self, msg: &WireMessage) -> bool {
        let bytes = msg.encode_frame();
        if self.queued_bytes + bytes.len() > self.frame_limit_bytes {
            self.frames_dropped += 1;
            return false;
        }
        self.push_bytes(bytes);
        self.frames_queued += 1;
        true
    }

    /// Queues a control message. Never dropped; may overdraw the frame
    /// limit by at most [`CONTROL_OVERDRAFT_BYTES`]. Returns `false`
    /// only if even the overdraft is exhausted (a protocol-violating
    /// peer) — callers should then close the connection.
    pub fn enqueue_control(&mut self, msg: &WireMessage) -> bool {
        let bytes = msg.encode_frame();
        if self.queued_bytes + bytes.len() > self.frame_limit_bytes + CONTROL_OVERDRAFT_BYTES {
            return false;
        }
        self.push_bytes(bytes);
        true
    }

    fn push_bytes(&mut self, bytes: Vec<u8>) {
        self.queued_bytes += bytes.len();
        self.peak_queue_bytes = self.peak_queue_bytes.max(self.queued_bytes);
        self.queue.push_back(bytes);
    }

    /// Drains as much of the egress queue as the socket accepts.
    /// Returns `Ok(true)` if the queue is now empty.
    pub fn flush(&mut self) -> io::Result<bool> {
        while let Some(front) = self.queue.front() {
            let remaining = &front[self.front_written..];
            match self.stream.write(remaining) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.front_written += n;
                    self.queued_bytes -= n;
                    self.bytes_written += n as u64;
                    if self.front_written == front.len() {
                        self.queue.pop_front();
                        self.front_written = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Reads whatever the socket has and extracts complete messages.
    pub fn read_ready(&mut self) -> ReadOutcome {
        let mut buf = [0u8; 16 * 1024];
        let mut msgs = Vec::new();
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return ReadOutcome::Eof(msgs),
                Ok(n) => {
                    self.assembler.push(&buf[..n]);
                    loop {
                        match self.assembler.next_message() {
                            Ok(Some(m)) => msgs.push(m),
                            Ok(None) => break,
                            Err(e) => return ReadOutcome::Protocol(e),
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return ReadOutcome::Progress(msgs);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Eof(msgs),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::UnixStream;

    fn pair() -> (Connection, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        (Connection::new(Stream::Unix(a), 1024), b)
    }

    fn frame_msg(payload_len: usize) -> WireMessage {
        WireMessage::Frame {
            seq: 1,
            width: 8,
            height: 8,
            quality: 1,
            store_hit: false,
            scale_pm: 1000,
            payload: vec![0xAB; payload_len],
        }
    }

    #[test]
    fn frame_overflow_drops_but_control_overdrafts() {
        let (mut conn, _peer) = pair();
        assert!(conn.enqueue_frame(&frame_msg(600)));
        // Second frame would exceed the 1024-byte budget: dropped.
        assert!(!conn.enqueue_frame(&frame_msg(600)));
        assert_eq!(conn.frames_dropped, 1);
        // Control still goes through on the overdraft.
        assert!(conn.enqueue_control(&WireMessage::Degrade { scale_pm: 750 }));
        assert!(conn.queued_bytes() <= 1024 + CONTROL_OVERDRAFT_BYTES);
    }

    #[test]
    fn queue_stays_bounded_against_a_dead_reader() {
        let (mut conn, _peer) = pair();
        for _ in 0..100 {
            conn.enqueue_frame(&frame_msg(600));
        }
        assert!(conn.peak_queue_bytes <= 1024);
        assert_eq!(conn.frames_queued, 1);
        assert_eq!(conn.frames_dropped, 99);
    }

    #[test]
    fn flush_writes_through_and_reader_reassembles() {
        use std::io::Read as _;
        let (mut conn, mut peer) = pair();
        let msg = frame_msg(128);
        assert!(conn.enqueue_frame(&msg));
        assert!(conn.flush().unwrap());
        assert!(conn.egress_idle());

        let mut asm = FrameAssembler::new();
        let mut buf = [0u8; 4096];
        let n = peer.read(&mut buf).unwrap();
        asm.push(&buf[..n]);
        assert_eq!(asm.next_message().unwrap().unwrap(), msg);
    }

    #[test]
    fn read_ready_surfaces_messages_and_eof() {
        use std::io::Write as _;
        let (mut conn, mut peer) = pair();
        peer.write_all(&WireMessage::Bye.encode_frame()).unwrap();
        match conn.read_ready() {
            ReadOutcome::Progress(msgs) => assert_eq!(msgs, vec![WireMessage::Bye]),
            other => panic!("unexpected outcome {other:?}"),
        }
        drop(peer);
        match conn.read_ready() {
            ReadOutcome::Eof(msgs) => assert!(msgs.is_empty()),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
