//! Serving-plane CLI: run a server, drive it with load, or do both.
//!
//! ```text
//! coterie-server serve   [--tcp HOST:PORT | --uds PATH] [--workers N] [--seed N]
//!                        [--policy first-fit|affinity] [--resume-ttl-ms N]
//! coterie-server loadgen [--tcp HOST:PORT | --uds PATH] [--clients N]
//!                        [--frames N] [--rooms N] [--net SCENARIO] [--seed N]
//!                        [--realtime] [--reconnect-at N]
//! coterie-server smoke   [--clients N] [--frames N]
//! coterie-server shard-smoke [--clients N] [--frames N]
//! coterie-server reconnect-smoke [--clients N] [--frames N]
//! coterie-server bench   [--quick] [--frames N] [--seed N]
//! ```
//!
//! `serve` runs until the process is killed. `loadgen` connects to a
//! running server and prints a summary line. `smoke` starts an
//! in-process UDS server, runs a small load against it, stops the
//! server, and prints a greppable `serve-smoke ok:` line — the CI
//! health check. `shard-smoke` does the same with *two* servers wired
//! into a shard fleet over UDS, proving frames rendered on one worker
//! serve store hits on the other. `reconnect-smoke` starts a UDS
//! server and has every client drop its socket mid-session and resume
//! by token, proving session continuity survives churn. `bench` runs
//! the connection ladder and writes `BENCH_serve.json`.

use coterie_net::NetScenario;
use coterie_serve::PlacementPolicy;
use coterie_server::{
    bench, loadgen, Endpoint, Listener, LoadConfig, Server, ServerConfig, ShardCoordinator,
    ShardPlan,
};
use coterie_telemetry::TelemetrySink;
use coterie_world::GameId;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: coterie-server <serve|loadgen|smoke|shard-smoke|reconnect-smoke|bench> [options]\n\
         serve   [--tcp HOST:PORT | --uds PATH] [--workers N] [--seed N]\n\
                 [--policy first-fit|affinity] [--resume-ttl-ms N]\n\
         loadgen [--tcp HOST:PORT | --uds PATH] [--clients N] [--frames N]\n\
                 [--rooms N] [--net SCENARIO] [--seed N] [--realtime]\n\
                 [--reconnect-at N]\n\
         smoke   [--clients N] [--frames N]\n\
         shard-smoke [--clients N] [--frames N]\n\
         reconnect-smoke [--clients N] [--frames N]\n\
         bench   [--quick] [--frames N] [--seed N]"
    );
    std::process::exit(2);
}

struct Args {
    tcp: Option<String>,
    uds: Option<PathBuf>,
    workers: usize,
    clients: usize,
    frames: u64,
    rooms: u32,
    net: NetScenario,
    seed: u64,
    realtime: bool,
    quick: bool,
    policy: PlacementPolicy,
    resume_ttl_ms: u64,
    reconnect_at: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            tcp: None,
            uds: None,
            workers: 1,
            clients: 4,
            frames: 100,
            rooms: 2,
            net: NetScenario::None,
            seed: 42,
            realtime: false,
            quick: false,
            policy: PlacementPolicy::FirstFit,
            resume_ttl_ms: ServerConfig::default().resume_ttl_ms,
            reconnect_at: None,
        }
    }
}

fn parse_args(raw: &[String]) -> Args {
    let mut args = Args::default();
    let mut iter = raw.iter();
    let value = |flag: &str, v: Option<&String>| -> String {
        v.cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tcp" => args.tcp = Some(value("--tcp", iter.next())),
            "--uds" => args.uds = Some(PathBuf::from(value("--uds", iter.next()))),
            "--workers" => args.workers = parse_num("--workers", &value("--workers", iter.next())),
            "--clients" => args.clients = parse_num("--clients", &value("--clients", iter.next())),
            "--frames" => {
                args.frames = parse_num("--frames", &value("--frames", iter.next())) as u64;
            }
            "--rooms" => args.rooms = parse_num("--rooms", &value("--rooms", iter.next())) as u32,
            "--seed" => args.seed = parse_num("--seed", &value("--seed", iter.next())) as u64,
            "--net" => {
                let v = value("--net", iter.next());
                args.net = NetScenario::parse(&v).unwrap_or_else(|| {
                    let names: Vec<&str> = NetScenario::ALL.iter().map(NetScenario::name).collect();
                    eprintln!("invalid --net value '{v}' (one of: {})", names.join(" "));
                    std::process::exit(2);
                });
            }
            "--realtime" => args.realtime = true,
            "--quick" => args.quick = true,
            "--policy" => {
                let v = value("--policy", iter.next());
                args.policy = PlacementPolicy::parse(&v).unwrap_or_else(|| {
                    let names: Vec<&str> = PlacementPolicy::ALL
                        .iter()
                        .map(PlacementPolicy::name)
                        .collect();
                    eprintln!("invalid --policy value '{v}' (one of: {})", names.join(" "));
                    std::process::exit(2);
                });
            }
            "--resume-ttl-ms" => {
                args.resume_ttl_ms =
                    parse_num("--resume-ttl-ms", &value("--resume-ttl-ms", iter.next())) as u64;
            }
            "--reconnect-at" => {
                args.reconnect_at =
                    Some(parse_num("--reconnect-at", &value("--reconnect-at", iter.next())) as u64);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
        }
    }
    args
}

fn parse_num(flag: &str, v: &str) -> usize {
    v.parse().unwrap_or_else(|_| {
        eprintln!("invalid {flag} value '{v}'");
        std::process::exit(2);
    })
}

fn endpoint_of(args: &Args) -> Endpoint {
    match (&args.tcp, &args.uds) {
        (Some(addr), None) => Endpoint::Tcp(addr.clone()),
        (None, Some(path)) => Endpoint::Uds(path.clone()),
        (None, None) => Endpoint::Uds(std::env::temp_dir().join("coterie-serve.sock")),
        (Some(_), Some(_)) => {
            eprintln!("--tcp and --uds are mutually exclusive");
            std::process::exit(2);
        }
    }
}

fn cmd_serve(args: &Args) {
    let endpoint = endpoint_of(args);
    let listener = match &endpoint {
        Endpoint::Tcp(addr) => Listener::bind_tcp(addr),
        Endpoint::Uds(path) => Listener::bind_uds(path),
    }
    .unwrap_or_else(|e| {
        eprintln!("bind {endpoint}: {e}");
        std::process::exit(1);
    });
    let server = Server::start(
        listener,
        ServerConfig {
            workers: args.workers,
            world_seed: args.seed,
            policy: args.policy,
            resume_ttl_ms: args.resume_ttl_ms,
            ..ServerConfig::default()
        },
        TelemetrySink::disabled(),
    )
    .unwrap_or_else(|e| {
        eprintln!("start server: {e}");
        std::process::exit(1);
    });
    if let Some(addr) = server.local_addr() {
        println!("serving on tcp://{addr} ({} workers)", server.workers());
    } else {
        println!("serving on {endpoint} ({} workers)", server.workers());
    }
    // Run until killed; print stats every 10 s so an operator can watch.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let s = server.stats();
        println!(
            "live {} | accepted {} | poses {} | frames {} (dropped {}) | {} B out",
            s.live, s.accepted, s.poses, s.frames_sent, s.frames_dropped, s.bytes_sent
        );
    }
}

fn load_config(args: &Args) -> LoadConfig {
    LoadConfig {
        endpoint: endpoint_of(args),
        clients: args.clients,
        frames_per_client: args.frames,
        game: GameId::VikingVillage,
        rooms: args.rooms.max(1),
        net: args.net,
        seed: args.seed,
        realtime: args.realtime,
        reconnect_at: args.reconnect_at,
    }
}

fn cmd_loadgen(args: &Args) {
    let report = loadgen::run(&load_config(args));
    println!("{}", report.summary_line());
    if report.sessions_completed != report.sessions || report.protocol_errors > 0 {
        std::process::exit(1);
    }
}

fn cmd_smoke(args: &Args) {
    let path = std::env::temp_dir().join(format!("coterie-smoke-{}.sock", std::process::id()));
    let listener = Listener::bind_uds(&path).unwrap_or_else(|e| {
        eprintln!("bind {}: {e}", path.display());
        std::process::exit(1);
    });
    let server = Server::start(
        listener,
        ServerConfig {
            world_seed: args.seed,
            ..ServerConfig::default()
        },
        TelemetrySink::disabled(),
    )
    .unwrap_or_else(|e| {
        eprintln!("start server: {e}");
        std::process::exit(1);
    });
    let mut config = load_config(args);
    config.endpoint = Endpoint::Uds(path.clone());
    let report = loadgen::run(&config);
    let stats = server.stop();
    let _ = std::fs::remove_file(&path);

    let ok = report.sessions_completed == report.sessions
        && report.protocol_errors == 0
        && report.decode_failures == 0
        && stats.protocol_errors == 0
        && report.frames_received == report.poses_sent;
    if ok {
        println!(
            "serve-smoke ok: {} sessions, {} frames over uds, {} store hits, \
             p99 {:.2} ms, clean shutdown",
            report.sessions,
            report.frames_received,
            report.store_hits,
            report.latency.quantile(0.99),
        );
    } else {
        println!("serve-smoke FAILED: {}", report.summary_line());
        println!("server stats: {stats:?}");
        std::process::exit(1);
    }
}

/// Two UDS servers wired into a 2-shard fleet: load runs against shard
/// 0, the coordinators replicate its rendered frames, and the same
/// trajectories replayed against shard 1 must hit the store without
/// rendering.
fn cmd_shard_smoke(args: &Args) {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let paths: Vec<PathBuf> = (0..2)
        .map(|w| tmp.join(format!("coterie-shard-smoke-{pid}-{w}.sock")))
        .collect();
    let servers: Vec<Server> = paths
        .iter()
        .map(|path| {
            let listener = Listener::bind_uds(path).unwrap_or_else(|e| {
                eprintln!("bind {}: {e}", path.display());
                std::process::exit(1);
            });
            Server::start(
                listener,
                ServerConfig {
                    world_seed: args.seed,
                    ..ServerConfig::default()
                },
                TelemetrySink::disabled(),
            )
            .unwrap_or_else(|e| {
                eprintln!("start server: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    let coords: Vec<ShardCoordinator> = (0..2)
        .map(|w| {
            ShardCoordinator::start(
                servers[w].service().clone(),
                ShardPlan {
                    shard: w as u16,
                    shards: 2,
                    peers: vec![Endpoint::Uds(paths[1 - w].clone())],
                },
            )
        })
        .collect();

    let mut config = load_config(args);
    config.endpoint = Endpoint::Uds(paths[0].clone());
    let report_a = loadgen::run(&config);

    // Wait for the exchange to land shard 0's renders on shard 1.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while servers[1].service().stats().shard_frames_applied == 0
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let applied = servers[1].service().stats().shard_frames_applied;

    let mut config_b = load_config(args);
    config_b.endpoint = Endpoint::Uds(paths[1].clone());
    let report_b = loadgen::run(&config_b);

    let coord_stats: Vec<_> = coords.into_iter().map(ShardCoordinator::stop).collect();
    let stats: Vec<_> = servers.into_iter().map(Server::stop).collect();
    for path in &paths {
        let _ = std::fs::remove_file(path);
    }

    let clean = |r: &loadgen::LoadReport| {
        r.sessions_completed == r.sessions && r.protocol_errors == 0 && r.decode_failures == 0
    };
    let ok = clean(&report_a)
        && clean(&report_b)
        && applied > 0
        && report_b.store_hits > report_a.store_hits
        // Only the shard that rendered misses has shares to ship; a
        // fully-absorbed peer legitimately sends nothing back.
        && coord_stats[0].frames_out > 0
        && stats.iter().all(|s| s.protocol_errors == 0);
    if ok {
        println!(
            "shard-smoke ok: 2 shards, {} frames replicated, {} cross-shard hits \
             (vs {} local), clean shutdown",
            applied, report_b.store_hits, report_a.store_hits,
        );
    } else {
        println!("shard-smoke FAILED");
        println!("shard 0 load: {}", report_a.summary_line());
        println!("shard 1 load: {}", report_b.summary_line());
        println!("applied {applied}, coordinators {coord_stats:?}, servers {stats:?}");
        std::process::exit(1);
    }
}

/// One UDS server; every client drops its socket mid-session (no
/// `Bye`) and resumes with the token from its `Welcome`. Passing means
/// all sessions resumed, none were rejected, and quality state
/// survived the drop.
fn cmd_reconnect_smoke(args: &Args) {
    let path = std::env::temp_dir().join(format!("coterie-reconnect-{}.sock", std::process::id()));
    let listener = Listener::bind_uds(&path).unwrap_or_else(|e| {
        eprintln!("bind {}: {e}", path.display());
        std::process::exit(1);
    });
    let server = Server::start(
        listener,
        ServerConfig {
            world_seed: args.seed,
            resume_ttl_ms: args.resume_ttl_ms,
            ..ServerConfig::default()
        },
        TelemetrySink::disabled(),
    )
    .unwrap_or_else(|e| {
        eprintln!("start server: {e}");
        std::process::exit(1);
    });
    let mut config = load_config(args);
    config.endpoint = Endpoint::Uds(path.clone());
    config.reconnect_at = Some(args.reconnect_at.unwrap_or(args.frames / 2).max(1));
    let report = loadgen::run(&config);
    let stats = server.stop();
    let _ = std::fs::remove_file(&path);

    let ok = report.sessions_completed == report.sessions
        && report.sessions_resumed == report.sessions as u64
        && report.resume_rejects == 0
        && report.resume_scale_mismatches == 0
        && report.protocol_errors == 0
        && stats.sessions_resumed == report.sessions as u64;
    if ok {
        println!(
            "reconnect-smoke ok: {} sessions dropped and resumed mid-run, \
             {} frames, 0 rejects, quality state preserved",
            report.sessions, report.frames_received,
        );
    } else {
        println!("reconnect-smoke FAILED: {}", report.summary_line());
        println!("server stats: {stats:?}");
        std::process::exit(1);
    }
}

fn cmd_bench(args: &Args) {
    let mut config = if args.quick {
        bench::ServeBenchConfig::quick()
    } else {
        bench::ServeBenchConfig::default()
    };
    config.seed = args.seed;
    if args.frames != Args::default().frames {
        config.frames_per_client = args.frames;
    }
    let result = bench::serve_bench(&config);
    let json = bench::serve_bench_json(&result);
    std::fs::write("BENCH_serve.json", &json).unwrap_or_else(|e| {
        eprintln!("writing BENCH_serve.json: {e}");
        std::process::exit(1);
    });
    print!("wrote BENCH_serve.json\n{json}");
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        usage();
    };
    let args = parse_args(rest);
    match cmd.as_str() {
        "serve" => cmd_serve(&args),
        "loadgen" => cmd_loadgen(&args),
        "smoke" => cmd_smoke(&args),
        "shard-smoke" => cmd_shard_smoke(&args),
        "reconnect-smoke" => cmd_reconnect_smoke(&args),
        "bench" => cmd_bench(&args),
        _ => usage(),
    }
}
